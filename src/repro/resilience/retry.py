"""Retry policies — *when* DAGMan resubmits a failed attempt.

Real DAGMan's ``RETRY`` line answers only "how many times"; production
submit hosts layer delay scripts and ``DEFER`` semantics on top so a
thundering herd of retries does not re-hit a broken resource instantly.
These policy objects give :class:`~repro.dagman.scheduler.DagmanScheduler`
that second axis:

* **how long to wait** before the re-queue (``delay_s``) — a delayed
  retry parks the node in the ``HELD`` state and releases it through
  the environment's ``call_later`` (virtual seconds on the simulators,
  a timer thread on the local backend);
* **whether evictions are charged** against the ``RETRY`` budget
  (``charge_evictions``) — the paper's OSG preemptions are the
  platform's fault, not the job's, so a policy can requeue them for
  free, exactly like condor's distinction between job failure and
  vacate;
* an optional hard ``budget`` on total requeues per job (charged or
  not) as the runaway guard free evictions would otherwise lack.

``retry_policy=None`` (the scheduler default) reproduces the historic
behaviour bit for bit: immediate requeue, evictions charged.
"""

from __future__ import annotations

import random

__all__ = [
    "RetryPolicy",
    "ImmediateRetry",
    "FixedDelayRetry",
    "ExponentialBackoff",
]


class RetryPolicy:
    """Base policy: immediate requeue, evictions charged, no budget."""

    def __init__(
        self,
        *,
        charge_evictions: bool = True,
        budget: int | None = None,
    ) -> None:
        if budget is not None and budget < 0:
            raise ValueError("budget must be >= 0 (or None)")
        #: When False, an EVICTED attempt re-queues without consuming a
        #: ``RETRY``; FAILED/TIMEOUT attempts always consume one.
        self.charge_evictions = charge_evictions
        #: Hard cap on total requeues per job, charged or not.
        self.budget = budget

    def delay_s(self, attempt: int) -> float:
        """Seconds to hold the node before re-queueing after the given
        (1-based) failed attempt. Zero means immediate."""
        return 0.0


class ImmediateRetry(RetryPolicy):
    """Today's default, as an explicit object."""


class FixedDelayRetry(RetryPolicy):
    """Constant delay between attempts."""

    def __init__(
        self,
        delay: float,
        *,
        charge_evictions: bool = True,
        budget: int | None = None,
    ) -> None:
        super().__init__(charge_evictions=charge_evictions, budget=budget)
        if delay < 0:
            raise ValueError("delay must be >= 0")
        self.delay = delay

    def delay_s(self, attempt: int) -> float:
        return self.delay


class ExponentialBackoff(RetryPolicy):
    """``base * factor**(attempt-1)``, capped, with deterministic jitter.

    Jitter draws come from the policy's own ``random.Random(seed)``, so
    a run is reproducible for a given seed and adding the policy never
    perturbs the platform's named RNG streams.
    """

    def __init__(
        self,
        base_s: float = 30.0,
        *,
        factor: float = 2.0,
        max_delay_s: float = 3600.0,
        jitter: float = 0.1,
        seed: int = 0,
        charge_evictions: bool = True,
        budget: int | None = None,
    ) -> None:
        super().__init__(charge_evictions=charge_evictions, budget=budget)
        if base_s < 0:
            raise ValueError("base_s must be >= 0")
        if factor < 1.0:
            raise ValueError("factor must be >= 1")
        if max_delay_s < base_s:
            raise ValueError("max_delay_s must be >= base_s")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.base_s = base_s
        self.factor = factor
        self.max_delay_s = max_delay_s
        self.jitter = jitter
        self._rng = random.Random(seed)

    def delay_s(self, attempt: int) -> float:
        if attempt < 1:
            raise ValueError("attempt numbers start at 1")
        delay = min(
            self.base_s * self.factor ** (attempt - 1), self.max_delay_s
        )
        if self.jitter:
            # Symmetric jitter keeps the expectation at ``delay``.
            delay *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return delay
