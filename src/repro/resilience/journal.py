"""Crash-consistent workflow state: the write-ahead journal.

Everything the resilience layer knows — retry budgets, blacklists,
rescue rounds — lived in process memory until this module: ``kill -9``
the manager and the workflow restarts from scratch, re-running every
completed job. Real DAGMan survives its own death because every durable
decision reaches disk first; this module gives :class:`DagmanScheduler`
the same property.

Design, in one paragraph: a :class:`Journal` subscribes to the run's
event bus and appends the *durable subset* of the lifecycle stream
(:data:`DURABLE_KINDS` — submits, terminal attempts, retry charges,
HELD parks, hard failures, blacklist trips, rescue-round boundaries,
workflow start/end) to an append-only JSONL WAL, one CRC32-framed
record per line, in the exact schema of :mod:`repro.observe.log` plus a
``seq`` continuity counter. Periodically the journal compacts: the
reduced state (:class:`JournalState`) is atomically written to
``snapshot.json``, the segment file rotates, and older segments are
deleted — so recovery replay is bounded by the snapshot cadence, not
the run length. :func:`recover` reads the snapshot, replays the
surviving segments, **truncates a torn tail at the last valid record**
(bad CRC, bad JSON, seq gap, or a line missing its newline), and
returns a :class:`RecoveredState` that can mark the DAG's done set,
rebuild the scheduler's counters (:meth:`RecoveredState.scheduler_restore`),
restore the blacklist, rebuild the merged attempt trace, write a
DAGMan-interop rescue ``.dag``, and reconcile local worker processes
orphaned by the crash (:func:`reconcile_local`).

Exactly-once semantics, precisely: a job whose successful terminal
record reached the journal is **never executed again** — resume marks
it DONE via rescue-DAG semantics. A job in flight at the crash (submit
journaled, terminal lost) re-executes *as the same attempt number*, so
retry budgets and attempt-keyed outcomes line up with the uninterrupted
run; that is at-least-once for the torn window, which is the best any
write-ahead log can promise, and the hypothesis kill-anywhere property
in ``tests/test_journal.py`` pins both halves.

Durability policy: appends are buffered and flushed + fsynced in
batches (``fsync="batch"``, every ``fsync_every`` records, plus at
every snapshot and close; crash injection flushes its torn prefix
explicitly). A crash between batch points can lose the buffered tail —
but only the tail, and only whole or torn-suffix records, so recovery
still sees a consistent prefix; the lost window re-executes, which the
at-least-once contract above already covers. ``fsync="always"`` buys
power-loss durability per record at real I/O cost; either way the CRC
framing keeps the journal *consistent* — a torn tail truncates, it
never corrupts recovered state.

Import discipline: like :mod:`repro.resilience.recovery`, this module
must not import ``repro.dagman.scheduler`` at module top — the
simulators import ``repro.resilience``, and the scheduler's observe
imports reach the simulators.
"""

from __future__ import annotations

import json
import os
import signal
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, TextIO

from repro.dagman.dag import Dag
from repro.dagman.events import WorkflowTrace
from repro.observe.bus import EventBus
from repro.observe.events import EventKind, RunEvent
from repro.observe.log import event_from_json, serialize_event
from repro.util.iolib import atomic_write, ensure_dir

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dagman.scheduler import SchedulerRestore
    from repro.resilience.blacklist import Blacklist, BlacklistPolicy
    from repro.resilience.faults import CrashFault

__all__ = [
    "DURABLE_KINDS",
    "JournalError",
    "JournalState",
    "Journal",
    "RecoveredState",
    "ReconcileReport",
    "recover",
    "reconcile_local",
    "encode_record",
    "decode_record",
]

SNAPSHOT_FILE = "snapshot.json"
SEGMENT_GLOB = "wal-*.jsonl"
#: Append-only sidecar holding every terminal record (the merged
#: trace), one compact JSON line each. Snapshots append only the
#: records accumulated since the previous snapshot and store a line
#: count in ``snapshot.json`` — so compaction cost is O(new records),
#: not O(run length), and the file doubles as a directly greppable
#: history of the whole run.
RECORDS_FILE = "records.jsonl"
JOURNAL_VERSION = 1

#: Event kinds that change what recovery must reconstruct. Everything
#: else on the bus (match/setup/exec phases, samples, cache traffic) is
#: observability, not state — journaling it would triple the write
#: volume for nothing.
DURABLE_KINDS = frozenset(
    {
        EventKind.WORKFLOW_START,
        EventKind.WORKFLOW_END,
        EventKind.SUBMIT,
        EventKind.FINISH,
        EventKind.EVICT,
        EventKind.RETRY,
        EventKind.HELD,
        EventKind.BLACKLIST,
        EventKind.RESCUE,
        # Tenant workflow completions: the WaaS layer's SLO accounting
        # must count pre-crash completions exactly once after a resume
        # (see WorkflowService.restore_completions).
        EventKind.SERVICE_WORKFLOW_DONE,
    }
)

#: Journal-internal record kinds (the ``/`` keeps them out of the
#: ``EventKind`` namespace): segment headers, worker-pid notes, and
#: the causal-trace id (so a resumed run extends the same trace).
_META_OPEN = "journal/open"
_META_WORKERS = "journal/workers"
_META_TRACE = "journal/trace"


class JournalError(RuntimeError):
    """The journal directory is unusable as asked (not empty on a fresh
    open, closed writer, manager still alive on reconcile, ...)."""


def _durable(event: RunEvent) -> bool:
    if event.kind in DURABLE_KINDS:
        return True
    # Hard failures must survive: without them a resumed run would
    # happily resubmit a job DAGMan already declared dead. The other
    # state transitions (ready/submitted/done/...) are derivable from
    # submit/terminal records, so they stay off the WAL.
    return (
        event.kind is EventKind.STATE_CHANGE
        and event.detail.get("to") == "failed"
    )


# -- record framing ------------------------------------------------------


def _frame_record(seq: int, body_str: str) -> str:
    """Frame one pre-serialized body (compact JSON object) as a line."""
    canonical = '{"seq":%d,%s' % (seq, body_str[1:])
    # zlib.crc32 is already unsigned on Python 3; %08x formats it direct
    return '{"crc":"%08x",%s\n' % (
        zlib.crc32(canonical.encode("utf-8")), canonical[1:]
    )


def encode_record(seq: int, body: Mapping[str, object]) -> str:
    """Frame one WAL record: compact JSON + CRC32, one line.

    The CRC is computed over the compact serialization (no whitespace,
    keys in insertion order) of the body with ``seq`` as the first
    key, then spliced in ahead of it — so the line is plain JSONL any
    tool can read, yet :func:`decode_record` can re-serialize and
    verify it byte-for-byte. Sorting keys is unnecessary: the decoder
    re-serializes from the parsed line, whose key order is by
    construction the order this function wrote.
    """
    return _frame_record(seq, json.dumps(body, separators=(",", ":")))


def decode_record(line: str) -> dict | None:
    """Parse and verify one WAL line; ``None`` means torn/corrupt."""
    try:
        data = json.loads(line)
    except ValueError:
        return None
    if not isinstance(data, dict):
        return None
    crc = data.pop("crc", None)
    if not isinstance(crc, str):
        return None
    canonical = json.dumps(data, separators=(",", ":"))
    expected = format(zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF, "08x")
    if crc != expected:
        return None
    if not isinstance(data.get("seq"), int):
        return None
    return data


# -- the reduced state ---------------------------------------------------


@dataclass
class JournalState:
    """The pure reducer over the durable event stream.

    The live :class:`Journal` folds every appended record into one of
    these (that is what a snapshot serializes) and :func:`recover`
    folds the replayed records into one — same code path, so the
    snapshot-plus-suffix invariant is structural, not aspirational.
    """

    #: jobs whose successful terminal record is journaled — never rerun
    done: set[str] = field(default_factory=set)
    #: jobs DAGMan hard-failed this round (retries exhausted)
    failed: set[str] = field(default_factory=set)
    #: per-job attempt high-water mark this round (from submit records)
    attempts: dict[str, int] = field(default_factory=dict)
    #: per-job RETRY budget remaining, from journaled retry charges
    retries_left: dict[str, int] = field(default_factory=dict)
    #: per-job consecutive-failure counts (retry-policy budget input)
    failed_attempts: dict[str, int] = field(default_factory=dict)
    #: submit journaled, terminal not: in flight at the crash
    in_flight: dict[str, int] = field(default_factory=dict)
    #: terminal failure journaled, retry-or-fail decision not: the
    #: scheduler re-decides these at resume (job -> terminal record)
    undecided: dict[str, dict] = field(default_factory=dict)
    #: every journaled terminal record, across rounds — the merged
    #: trace. Kept as compact JSON *strings*, not dicts: strings are
    #: invisible to the cyclic GC, so a large run's retained state does
    #: not inflate every gen-2 collection the way tens of thousands of
    #: small dicts would (measured as the dominant journal overhead).
    records: list[str] = field(default_factory=list)
    #: ``blacklist.add`` records since the last snapshot
    blacklist_blocks: list[dict] = field(default_factory=list)
    rescue_round: int = 0
    resubmitting: bool | None = None
    workflow_done: bool | None = None
    clock: float = 0.0
    manager_pid: int | None = None
    worker_pids: list[int] = field(default_factory=list)
    #: W3C-style trace id recorded by the span tracer — a resumed run
    #: reuses it so pre-crash and post-resume spans share one trace.
    trace_id: str | None = None
    #: journaled tenant workflow completions (SLO accounting), each
    #: ``{tenant, workflow, succeeded, turnaround_s, queue_wait_s}``
    service_done: list[dict] = field(default_factory=list)

    def apply(
        self, data: Mapping[str, object], raw: str | None = None
    ) -> None:
        """Fold one decoded record into the state.

        ``raw`` is the record body's compact JSON text when the caller
        already has it (the live writer just framed it; recovery can
        rebuild it) — it is stored verbatim for terminal records so the
        hot path never serializes twice. ``seq``/``crc`` framing keys
        must not be part of it.
        """
        t = data.get("t")
        if isinstance(t, (int, float)) and t > self.clock:
            self.clock = float(t)
        kind = data.get("event")
        job = data.get("job_name")
        if kind == "job.submit" and isinstance(job, str):
            attempt_raw = data.get("attempt")
            attempt = attempt_raw if isinstance(attempt_raw, int) else 0
            if attempt > self.attempts.get(job, 0):
                self.attempts[job] = attempt
            self.in_flight[job] = attempt
            self.undecided.pop(job, None)
        elif (
            kind == "job.finish" or kind == "job.evict"
        ) and isinstance(job, str):
            self.in_flight.pop(job, None)
            self.records.append(
                raw
                if raw is not None
                else json.dumps(
                    {k: v for k, v in data.items() if k not in ("seq", "crc")},
                    separators=(",", ":"),
                )
            )
            if data.get("status") == "succeeded":
                self.done.add(job)
                self.failed_attempts.pop(job, None)
                self.undecided.pop(job, None)
            else:
                self.failed_attempts[job] = (
                    self.failed_attempts.get(job, 0) + 1
                )
                self.undecided[job] = dict(data)
        elif kind == "job.retry" and isinstance(job, str):
            left = data.get("retries_left")
            if isinstance(left, int):
                self.retries_left[job] = left
            self.undecided.pop(job, None)
        elif kind == "job.state_change":
            if data.get("to") == "failed" and isinstance(job, str):
                self.failed.add(job)
                self.undecided.pop(job, None)
        elif kind == "blacklist.add":
            self.blacklist_blocks.append(
                {
                    "scope": data.get("scope", "machine"),
                    "name": data.get("name"),
                    "until": data.get("until"),
                }
            )
        elif kind == "rescue.round":
            round_raw = data.get("round")
            self.rescue_round = (
                round_raw
                if isinstance(round_raw, int)
                else self.rescue_round + 1
            )
            self.resubmitting = bool(data.get("resubmitting"))
            # Round-scoped counters reset: the next round's scheduler
            # starts attempts fresh over the not-yet-done set, exactly
            # like a hand-resubmitted rescue DAG.
            self.attempts.clear()
            self.retries_left.clear()
            self.failed_attempts.clear()
            self.in_flight.clear()
            self.undecided.clear()
            if self.resubmitting:
                self.failed.clear()
        elif kind == "workflow.start":
            self.in_flight.clear()
            self.workflow_done = None
            self.resubmitting = None
        elif kind == "workflow.end":
            self.workflow_done = bool(data.get("success"))
        elif kind == "service.workflow_done":
            self.service_done.append(
                {
                    key: data.get(key)
                    for key in (
                        "tenant",
                        "workflow",
                        "succeeded",
                        "turnaround_s",
                        "queue_wait_s",
                    )
                    if key in data
                }
            )
        elif kind == _META_TRACE:
            trace_id = data.get("trace_id")
            if isinstance(trace_id, str):
                self.trace_id = trace_id
        elif kind == _META_OPEN:
            pid = data.get("pid")
            if isinstance(pid, int):
                self.manager_pid = pid
            # A new manager means the old manager's workers are orphans
            # at best; they were reconciled before this record was cut.
            self.worker_pids = []
        elif kind == _META_WORKERS:
            pids = data.get("pids")
            if isinstance(pids, list):
                self.worker_pids = [p for p in pids if isinstance(p, int)]

    # -- persistence ----------------------------------------------------

    def to_json(self, *, include_records: bool = True) -> dict:
        """JSON-able state. ``include_records=False`` omits the (large,
        append-only) terminal-record list — snapshots store those in the
        ``records.jsonl`` sidecar instead and keep only a line count.

        ``done`` is sorted (sets hash-order nondeterministically across
        processes); the dict fields keep insertion order, which a
        deterministic run reproduces exactly — sorting the O(jobs) maps
        on every compaction was measurable at workflow scale.
        """
        out = {
            "done": sorted(self.done),
            "failed": sorted(self.failed),
            "attempts": dict(self.attempts),
            "retries_left": dict(self.retries_left),
            "failed_attempts": dict(self.failed_attempts),
            "in_flight": dict(self.in_flight),
            "undecided": dict(self.undecided),
            "blacklist_blocks": list(self.blacklist_blocks),
            "rescue_round": self.rescue_round,
            "resubmitting": self.resubmitting,
            "workflow_done": self.workflow_done,
            "clock": self.clock,
            "manager_pid": self.manager_pid,
            "worker_pids": list(self.worker_pids),
            "trace_id": self.trace_id,
            "service_done": [dict(d) for d in self.service_done],
        }
        if include_records:
            out["records"] = list(self.records)
        return out

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "JournalState":
        def _int_map(key: str) -> dict[str, int]:
            raw = data.get(key)
            if not isinstance(raw, Mapping):
                return {}
            return {str(k): int(v) for k, v in raw.items()}  # type: ignore[arg-type]

        state = cls()
        done = data.get("done")
        state.done = set(done) if isinstance(done, list) else set()
        failed = data.get("failed")
        state.failed = set(failed) if isinstance(failed, list) else set()
        state.attempts = _int_map("attempts")
        state.retries_left = _int_map("retries_left")
        state.failed_attempts = _int_map("failed_attempts")
        state.in_flight = _int_map("in_flight")
        undecided = data.get("undecided")
        if isinstance(undecided, Mapping):
            state.undecided = {
                str(k): dict(v) for k, v in undecided.items()
            }
        records = data.get("records")
        if isinstance(records, list):
            state.records = [
                r
                if isinstance(r, str)
                else json.dumps(r, separators=(",", ":"))
                for r in records
            ]
        blocks = data.get("blacklist_blocks")
        if isinstance(blocks, list):
            state.blacklist_blocks = [dict(b) for b in blocks]
        rescue_round = data.get("rescue_round")
        state.rescue_round = (
            rescue_round if isinstance(rescue_round, int) else 0
        )
        resubmitting = data.get("resubmitting")
        state.resubmitting = (
            resubmitting if isinstance(resubmitting, bool) else None
        )
        workflow_done = data.get("workflow_done")
        state.workflow_done = (
            workflow_done if isinstance(workflow_done, bool) else None
        )
        clock = data.get("clock")
        state.clock = float(clock) if isinstance(clock, (int, float)) else 0.0
        pid = data.get("manager_pid")
        state.manager_pid = pid if isinstance(pid, int) else None
        pids = data.get("worker_pids")
        if isinstance(pids, list):
            state.worker_pids = [p for p in pids if isinstance(p, int)]
        trace_id = data.get("trace_id")
        state.trace_id = trace_id if isinstance(trace_id, str) else None
        service_done = data.get("service_done")
        if isinstance(service_done, list):
            state.service_done = [
                dict(d) for d in service_done if isinstance(d, Mapping)
            ]
        return state

    def copy(self) -> "JournalState":
        return JournalState.from_json(self.to_json())


# -- the writer ----------------------------------------------------------


class Journal:
    """Append-only, CRC-framed, fsynced WAL writer (a bus subscriber).

    Subscribe it to the run's bus (pass ``bus=``) or feed it events by
    calling it directly. Compaction (snapshot + segment rotation) is
    log-structured: it fires once the WAL suffix reaches
    ``max(snapshot_every, state size)`` records, so replay stays
    bounded while total snapshot cost stays linear in run length;
    ``fsync`` is ``"always"`` /
    ``"batch"`` (every ``fsync_every`` records, plus snapshot/close) /
    ``"never"``. ``crash`` arms a
    :class:`~repro.resilience.faults.CrashFault` — the injection point
    for kill-anywhere testing. ``resume`` continues an existing journal
    (seq and segment numbering carry on) instead of requiring an empty
    directory.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        bus: EventBus | None = None,
        snapshot_every: int = 1000,
        fsync: str = "batch",
        fsync_every: int = 4096,
        crash: "CrashFault | None" = None,
        resume: "RecoveredState | None" = None,
    ) -> None:
        if fsync not in ("always", "batch", "never"):
            raise ValueError("fsync must be 'always', 'batch', or 'never'")
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        if fsync_every < 1:
            raise ValueError("fsync_every must be >= 1")
        self.path = ensure_dir(path)
        self.snapshot_every = snapshot_every
        self.fsync_mode = fsync
        self.fsync_every = fsync_every
        self.crash = crash
        self.bus = bus
        self._blacklist: "Blacklist | None" = None
        self._blacklist_json: dict | None = None
        self._dead = False
        if resume is None:
            leftovers = sorted(
                p.name
                for p in self.path.iterdir()
                if p.name in (SNAPSHOT_FILE, RECORDS_FILE)
                or p.match(SEGMENT_GLOB)
            )
            if leftovers:
                raise JournalError(
                    f"journal directory {self.path} already holds "
                    f"{', '.join(leftovers[:3])}"
                    f"{', ...' if len(leftovers) > 3 else ''} — resume it "
                    "(repro-run --resume) or point --journal elsewhere"
                )
            self._state = JournalState()
            self._seq = 0
            self._segment = 0
        else:
            self._state = resume.state.copy()
            self._blacklist_json = resume.blacklist
            self._seq = resume.last_seq + 1
            self._segment = resume.last_segment + 1
        self._since_snapshot = 0
        self._since_fsync = 0
        # The records sidecar restarts from this process's in-memory
        # state: a resume rewrites it wholesale (once, O(history)), so
        # any lines a crashed snapshot appended past the durable
        # snapshot.json are dropped rather than left to shadow the
        # replayed WAL.
        self._records_fh: TextIO | None = open(
            self.path / RECORDS_FILE, "w", encoding="utf-8"
        )
        if self._state.records:
            self._records_fh.write(
                "\n".join(self._state.records) + "\n"
            )
            self._records_fh.flush()
        self._records_persisted = len(self._state.records)
        self._fh = self._open_segment()
        # Two kind-filtered subscriptions: the bus's membership test
        # routes durable kinds straight into the append path with no
        # per-event re-checking, and STATE_CHANGE (the one kind whose
        # durability hangs on a detail field) through a minimal filter.
        # Everything else (setup/exec phases, samples) never reaches us.
        self._unsubscribes: list[Callable[[], None]] = (
            [
                bus.subscribe(self._on_durable, kinds=DURABLE_KINDS),
                bus.subscribe(
                    self._on_state_change,
                    kinds=(EventKind.STATE_CHANGE,),
                ),
            ]
            if bus is not None
            else []
        )

    @property
    def closed(self) -> bool:
        """True once the journal stopped accepting records (closed, or
        killed by an armed crash fault)."""
        return self._fh is None or self._dead

    # -- append path ----------------------------------------------------

    def __call__(self, event: RunEvent) -> None:
        """Feed one event by hand (the bus path uses the pre-filtered
        handlers below): journaled iff it is a durable decision."""
        if _durable(event):
            self._on_durable(event)

    def _on_durable(self, event: RunEvent) -> None:
        if self._dead:
            return
        # serialize_event shares a one-slot memo with the EventLogWriter
        # on the same bus: one flatten + serialize per event, however
        # many persistence subscribers are attached.
        self._append_serialized(*serialize_event(event))

    def _on_state_change(self, event: RunEvent) -> None:
        # Only hard failures are durable; the ready/submitted/done
        # transitions outnumber the WAL's records and stay off it.
        if event.detail.get("to") == "failed":
            self._on_durable(event)

    def record_workers(self, pids: Iterable[int]) -> None:
        """Note the local backend's worker PIDs for post-crash reaping."""
        if self._dead:
            return
        self._append({"event": _META_WORKERS, "pids": sorted(pids)})

    def record_trace_id(self, trace_id: str) -> None:
        """Persist the causal-trace id so a resumed run extends the
        same trace (idempotent: a resume that re-records the recovered
        id writes nothing)."""
        if self._dead or self._state.trace_id == trace_id:
            return
        self._append({"event": _META_TRACE, "trace_id": trace_id})

    def attach_blacklist(self, blacklist: "Blacklist") -> None:
        """Snapshot this blacklist's full state (policy + streaks +
        blocks) with every compaction — the cross-process persistence
        ``run_with_recovery`` rescue rounds rely on."""
        self._blacklist = blacklist

    def snapshot(self) -> Path:
        """Compact: write ``snapshot.json`` atomically, rotate the
        segment, delete segments the snapshot subsumes."""
        if self._fh is None or self._dead:
            raise JournalError("journal is closed")
        blacklist_json = self._blacklist_json
        if self._blacklist is not None:
            blacklist_json = self._blacklist.to_json()
            # Blocks recorded since the last snapshot are now subsumed
            # by the serialized blacklist itself.
            self._state.blacklist_blocks = []
        # Records go to the append-only sidecar *before* snapshot.json
        # lands: a crash in between leaves extra sidecar lines that the
        # still-old snapshot's count simply ignores (and the next open
        # rewrites), never a snapshot that references missing records.
        records = self._state.records
        records_fh = self._records_fh
        if records_fh is not None:
            if len(records) > self._records_persisted:
                records_fh.write(
                    "\n".join(records[self._records_persisted:]) + "\n"
                )
                self._records_persisted = len(records)
            records_fh.flush()
            if self.fsync_mode != "never":
                os.fsync(records_fh.fileno())
        body = {
            "version": JOURNAL_VERSION,
            "seq": self._seq - 1,
            "segment": self._segment,
            "state": self._state.to_json(include_records=False),
            "records_in_file": self._records_persisted,
            "blacklist": blacklist_json,
        }
        snap_path = atomic_write(
            self.path / SNAPSHOT_FILE, json.dumps(body)
        )
        old_segment = self._segment
        # No segment fsync here: the snapshot that just landed subsumes
        # the outgoing segment entirely (it is deleted two lines down),
        # so syncing its tail buys no durability the snapshot doesn't
        # already provide. close() flushes it to the OS for the window
        # between rename and unlink.
        self._fh.close()
        self._segment += 1
        self._since_snapshot = 0  # before reopening: _append re-checks
        self._since_fsync = 0  # the old segment's pending count is moot
        self._fh = self._open_segment()
        for seg in self.path.glob(SEGMENT_GLOB):
            if _segment_index(seg) <= old_segment:
                seg.unlink(missing_ok=True)
        if self.bus is not None:
            self.bus.emit(
                RunEvent(
                    EventKind.JOURNAL_SNAPSHOT,
                    self._state.clock,
                    detail={
                        "seq": self._seq - 1,
                        "segment": self._segment,
                        "records": len(self._state.records),
                    },
                )
            )
        return snap_path

    def close(self) -> None:
        """Final snapshot (bounds the next resume's replay) + fsync."""
        for unsubscribe in self._unsubscribes:
            unsubscribe()
        self._unsubscribes = []
        if self._fh is None:
            return
        if not self._dead:
            self.snapshot()
            self._fsync_segment()
        if self._records_fh is not None:
            self._records_fh.close()
            self._records_fh = None
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- internals ------------------------------------------------------

    def _open_segment(self) -> TextIO:
        seg_path = self.path / f"wal-{self._segment:08d}.jsonl"
        fh = open(seg_path, "a", encoding="utf-8")
        self._fh = fh
        self._append({
            "event": _META_OPEN,
            "version": JOURNAL_VERSION,
            "pid": os.getpid(),
        })
        return fh

    def _append(self, body: dict) -> None:
        self._append_serialized(
            body, json.dumps(body, separators=(",", ":"))
        )

    def _append_serialized(self, body: dict, body_str: str) -> None:
        # One serialization per record: the compact body text becomes
        # both the framed WAL line and (for terminal records) the
        # retained state entry, verbatim.
        fh = self._fh
        if fh is None or self._dead:
            raise JournalError("journal is closed")
        line = _frame_record(self._seq, body_str)
        crash = self.crash
        if crash is not None and crash.note_record():
            # Simulate the torn write: a prefix of the record reaches
            # the file (never newline-terminated, so recovery sees it
            # as torn, not valid), then the manager dies.
            self._dead = True
            torn = line[: max(1, int(len(line) * crash.torn_fraction))]
            fh.write(torn.rstrip("\n"))
            fh.flush()
            crash.fire()  # SIGKILL or CrashInjected — never returns None
        fh.write(line)
        self._seq += 1
        self._since_snapshot += 1
        # Flushes ride the fsync cadence (see the module docstring's
        # durability policy): the buffered tail is the at-least-once
        # window, and a buffer boundary can only tear the final record.
        if self.fsync_mode == "always":
            fh.flush()
            os.fsync(fh.fileno())
        elif self.fsync_mode == "batch":
            self._since_fsync += 1
            if self._since_fsync >= self.fsync_every:
                fh.flush()
                os.fsync(fh.fileno())
                self._since_fsync = 0
        self._state.apply(body, raw=body_str)
        # Log-structured trigger: compact only once the WAL suffix is
        # at least as long as the state a snapshot would have to
        # serialize (``snapshot_every`` is the floor). A fixed cadence
        # would re-serialize the ever-growing record list every K
        # appends — O(n^2) over a large run; this keeps the total
        # snapshot cost linear while still bounding replay to
        # O(state size) records.
        if self._since_snapshot >= max(
            self.snapshot_every, len(self._state.records)
        ):
            self.snapshot()

    def _fsync_segment(self) -> None:
        if self._fh is not None and self.fsync_mode != "never":
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._since_fsync = 0


def _segment_index(path: Path) -> int:
    try:
        return int(path.stem.split("-", 1)[1])
    except (IndexError, ValueError):
        return -1


# -- recovery ------------------------------------------------------------


@dataclass
class RecoveredState:
    """What :func:`recover` reconstructs from a journal directory."""

    path: Path
    state: JournalState
    #: the snapshot's serialized blacklist (``Blacklist.to_json``), if any
    blacklist: dict | None
    last_seq: int
    last_segment: int
    #: True when a torn tail was found (and, with ``repair``, truncated)
    torn_tail: bool
    #: WAL records replayed on top of the snapshot
    replayed: int

    @property
    def done(self) -> frozenset[str]:
        """Jobs that must never execute again."""
        return frozenset(self.state.done)

    @property
    def clock(self) -> float:
        """Highest journaled event time — the resume clock offset."""
        return self.state.clock

    @property
    def trace_id(self) -> str | None:
        """The journaled causal-trace id (resume reuses it so the
        post-crash spans extend the pre-crash trace)."""
        return self.state.trace_id

    @property
    def service_completions(self) -> list[dict]:
        """Journaled tenant workflow completions — feed to
        :meth:`repro.service.WorkflowService.restore_completions` so
        post-resume SLO reports count each pre-crash workflow once."""
        return [dict(d) for d in self.state.service_done]

    @property
    def complete(self) -> bool:
        """True when the journaled workflow already ran to its end
        (success, or failure with no resubmit pending) — nothing to
        resume."""
        if self.state.workflow_done is True:
            return True
        return (
            self.state.workflow_done is False
            and self.state.resubmitting is False
        )

    def scheduler_restore(self) -> "SchedulerRestore":
        """Counters for :class:`DagmanScheduler`'s ``restore=``.

        Jobs in flight at the crash get their attempt counter rolled
        back one, so the resumed submission re-runs *the same attempt
        number* — budgets and attempt-keyed outcomes match the
        uninterrupted run.
        """
        from repro.dagman.scheduler import SchedulerRestore

        state = self.state
        attempts = dict(state.attempts)
        for job, attempt in state.in_flight.items():
            attempts[job] = max(0, attempt - 1)
        undecided = {}
        for job, record_data in state.undecided.items():
            record = event_from_json(dict(record_data)).record
            if record is not None:
                undecided[job] = record
        return SchedulerRestore(
            attempts=attempts,
            retries_left=dict(state.retries_left),
            failed_attempts=dict(state.failed_attempts),
            failed=frozenset(state.failed),
            undecided=undecided,
        )

    def resume_dag(self, dag: Dag) -> Dag:
        """A copy of ``dag`` with the journaled done set marked DONE —
        rescue-DAG semantics, built in memory so payloads and runtimes
        survive (a ``.dag`` file cannot carry them)."""
        rescue = Dag(name=dag.name)
        for job in dag.jobs.values():
            rescue.add_job(job)
        for parent, child in dag.edges():
            rescue.add_edge(parent, child)
        rescue.done = set(dag.done) | {
            n for n in self.state.done if n in dag.jobs
        }
        return rescue

    def write_rescue(self, dag: Dag, path: str | Path) -> Path:
        """Emit a DAGMan-style rescue ``.dag`` (DONE marks) for interop
        — the journal's state, in the format real tooling reads."""
        rescue = self.resume_dag(dag)
        rescue.name = f"{dag.name}.rescue"
        return rescue.write_dagfile(path)

    def trace(self) -> WorkflowTrace:
        """The journaled attempts as a :class:`WorkflowTrace` — prepend
        to the resumed run's trace for whole-history statistics."""
        trace = WorkflowTrace()
        for raw in self.state.records:
            record = event_from_json(json.loads(raw)).record
            if record is not None:
                trace.add(record)
        return trace

    def restore_blacklist(
        self,
        *,
        policy: "BlacklistPolicy | None" = None,
        bus: EventBus | None = None,
    ) -> "Blacklist | None":
        """Rebuild the blacklist: snapshot state plus WAL-suffix blocks.

        ``policy`` seeds a blacklist when blocks were journaled before
        any snapshot carried the full serialization. Returns ``None``
        when the journal never saw a blacklist at all.
        """
        if self.blacklist is None and not self.state.blacklist_blocks:
            return None
        from repro.resilience.blacklist import Blacklist

        if self.blacklist is not None:
            restored = Blacklist.from_json(self.blacklist, bus=bus)
        elif policy is not None:
            restored = Blacklist(policy, bus=bus)
        else:
            restored = Blacklist(bus=bus)
        for block in self.state.blacklist_blocks:
            name = block.get("name")
            if isinstance(name, str):
                until = block.get("until")
                restored.restore_block(
                    str(block.get("scope", "machine")),
                    name,
                    until=until if isinstance(until, (int, float)) else None,
                )
        return restored


def recover(path: str | Path, *, repair: bool = True) -> RecoveredState:
    """Reconstruct state from a journal directory.

    Reads ``snapshot.json`` when present (a corrupt snapshot falls back
    to full WAL replay), then replays every segment in order, verifying
    CRC and ``seq`` continuity per record. The first invalid record —
    torn tail, bad checksum, sequence gap, or trailing bytes without a
    newline — ends the replay; with ``repair`` the offending segment is
    truncated to its last valid byte and any later segments (causally
    after the tear) are deleted, leaving the directory consistent for
    the resumed writer.
    """
    path = Path(path)
    if not path.is_dir():
        raise JournalError(f"no journal directory at {path}")
    state = JournalState()
    blacklist: dict | None = None
    last_seq = -1
    snap_path = path / SNAPSHOT_FILE
    if snap_path.exists():
        try:
            snap = json.loads(snap_path.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            snap = None
        if (
            isinstance(snap, dict)
            and snap.get("version") == JOURNAL_VERSION
            and isinstance(snap.get("state"), dict)
            and isinstance(snap.get("seq"), int)
        ):
            state = JournalState.from_json(snap["state"])
            wanted = snap.get("records_in_file")
            usable = True
            if "records" not in snap["state"] and isinstance(wanted, int):
                # Terminal records live in the sidecar; the snapshot
                # only vouches for its first ``wanted`` lines (later
                # ones belong to a snapshot that never landed).
                try:
                    lines = (
                        (path / RECORDS_FILE)
                        .read_text(encoding="utf-8")
                        .splitlines()
                    )
                except OSError:
                    lines = []
                if len(lines) < wanted:
                    usable = False  # sidecar can't back the snapshot
                else:
                    state.records = lines[:wanted]
            if usable:
                last_seq = snap["seq"]
                raw_blacklist = snap.get("blacklist")
                if isinstance(raw_blacklist, dict):
                    blacklist = raw_blacklist
            else:
                state = JournalState()

    segments = sorted(path.glob(SEGMENT_GLOB), key=_segment_index)
    last_segment = max(
        (_segment_index(s) for s in segments), default=-1
    )
    torn = False
    replayed = 0
    for position, seg in enumerate(segments):
        raw = seg.read_bytes()
        idx = 0
        valid_end = 0
        while True:
            nl = raw.find(b"\n", idx)
            if nl == -1:
                if idx < len(raw):
                    torn = True  # trailing bytes, no newline
                break
            try:
                line = raw[idx:nl].decode("utf-8")
            except UnicodeDecodeError:
                torn = True
                break
            data = decode_record(line)
            if data is None:
                torn = True
                break
            seq = data["seq"]
            if seq <= last_seq:
                idx = valid_end = nl + 1  # already in the snapshot
                continue
            if seq != last_seq + 1:
                torn = True  # a gap: records after it are unanchored
                break
            state.apply(data)
            last_seq = seq
            replayed += 1
            idx = valid_end = nl + 1
        if torn:
            if repair:
                if valid_end < len(raw):
                    with open(seg, "r+b") as fh:
                        fh.truncate(valid_end)
                for later in segments[position + 1 :]:
                    later.unlink(missing_ok=True)
            break
    return RecoveredState(
        path=path,
        state=state,
        blacklist=blacklist,
        last_seq=last_seq,
        last_segment=last_segment,
        torn_tail=torn,
        replayed=replayed,
    )


# -- local-backend reconciliation ----------------------------------------


@dataclass
class ReconcileReport:
    """What happened to the crashed manager's processes on resume."""

    manager_pid: int | None
    manager_alive: bool
    #: orphaned worker PIDs that were still alive and got SIGKILLed
    reaped: list[int]
    #: jobs whose attempt was in flight at the crash — resubmitted
    requeued: list[str]


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    except OSError:  # pragma: no cover - platform oddities
        return False
    return True


def reconcile_local(
    recovered: RecoveredState,
    *,
    kill: Callable[[int, int], None] | None = None,
    alive: Callable[[int], bool] | None = None,
) -> ReconcileReport:
    """Reap-or-requeue for the local backend after a manager crash.

    The journal records the manager PID (segment headers) and the pool
    worker PIDs (``record_workers``). On resume: if the old manager is
    *still alive*, raise — resuming would double-run the workflow. If
    it is dead, SIGKILL any worker that outlived it (their results have
    nowhere to land; a worker mid-payload holds files the resumed run
    will rewrite), and report the in-flight jobs the resumed scheduler
    will requeue. ``kill``/``alive`` are injectable for tests.
    """
    kill_fn = kill if kill is not None else os.kill
    alive_fn = alive if alive is not None else _pid_alive
    state = recovered.state
    manager = state.manager_pid
    manager_alive = (
        manager is not None
        and manager != os.getpid()
        and alive_fn(manager)
    )
    if manager_alive:
        raise JournalError(
            f"journal {recovered.path} belongs to a live manager "
            f"(pid {manager}); resuming now would run the workflow twice"
        )
    reaped: list[int] = []
    for pid in state.worker_pids:
        if pid == os.getpid() or not alive_fn(pid):
            continue
        try:
            kill_fn(pid, signal.SIGKILL)
        except OSError:  # pragma: no cover - raced its own exit
            continue
        reaped.append(pid)
    return ReconcileReport(
        manager_pid=manager,
        manager_alive=False,
        reaped=reaped,
        requeued=sorted(state.in_flight),
    )
