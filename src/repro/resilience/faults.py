"""Composable fault injection — chaos testing for every backend.

:mod:`repro.sim.failures` models the *calibrated* OSG regime (one
Bernoulli start failure + one exponential eviction hazard, wired into
the grid simulator only). This module generalises it into a **fault
plan**: a declarative list of fault specs that an injector evaluates
per attempt, on *any* platform — the three simulators consult the
injector at arrival/exec time, and the local backend wraps real
payloads (:class:`ChaosPayload`) so the same plan breaks real runs.

The taxonomy covers the paper's observed failure modes and the ones
the resilience layer must survive:

* :class:`StartFailure` — Bernoulli dead-on-arrival (misconfigured
  nodes, §VI-A), optionally scoped to sites;
* :class:`Eviction` — extra exponential preemption hazard on top of
  the platform's own;
* :class:`Slowdown` — straggler: the payload runs ``factor``× longer;
* :class:`Hang` — the payload never finishes (only a timeout or an
  eviction can end the attempt);
* :class:`SiteOutage` — every arrival at ``site`` during the window
  dies on arrival (a downed cluster / network partition);
* :class:`BadNode` — named machines always fail jobs on arrival (the
  paper's "misconfigured nodes", deterministically);
* :class:`AttemptFault` — scripted: fail/evict/hang/slow specific
  submissions of one job, counted 1-based **across rescue rounds** —
  the deterministic primitive the cross-backend tests are built on.

Decisions are drawn from one ``random.Random`` owned by the injector —
derive it from a named stream (``RngStreams(seed).stream("faults")``)
and existing draws never shift, per the determinism contract.

Import discipline: this module depends on ``repro.dagman`` and
``repro.observe.bus``/``.events`` only — the simulators import *it*,
never the other way around.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.dagman.dag import DagJob
from repro.dagman.events import JobStatus
from repro.observe.bus import EventBus
from repro.observe.events import EventKind, RunEvent

__all__ = [
    "StartFailure",
    "Eviction",
    "Slowdown",
    "Hang",
    "SiteOutage",
    "BadNode",
    "AttemptFault",
    "CrashFault",
    "CrashInjected",
    "FaultPlan",
    "FaultDecision",
    "FaultInjector",
    "FaultInjected",
    "ChaosPayload",
    "resolve_exec",
]


# -- fault specs --------------------------------------------------------


@dataclass(frozen=True)
class StartFailure:
    """Bernoulli dead-on-arrival, optionally scoped to ``sites``."""

    prob: float
    sites: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError("prob must be in [0, 1]")


@dataclass(frozen=True)
class Eviction:
    """Extra exponential eviction hazard (per second of execution)."""

    rate_per_s: float
    sites: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.rate_per_s < 0:
            raise ValueError("rate_per_s must be >= 0")


@dataclass(frozen=True)
class Slowdown:
    """With probability ``prob``, the payload runs ``factor``× longer."""

    prob: float
    factor: float
    sites: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError("prob must be in [0, 1]")
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1 (a slowdown)")


@dataclass(frozen=True)
class Hang:
    """With probability ``prob``, the payload never finishes."""

    prob: float
    sites: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError("prob must be in [0, 1]")


@dataclass(frozen=True)
class SiteOutage:
    """Arrivals at ``site`` die on arrival during [start_s, end_s)."""

    site: str
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ValueError("outage window must have end_s > start_s")


@dataclass(frozen=True)
class BadNode:
    """Named machines that always fail jobs on arrival."""

    machines: tuple[str, ...]


@dataclass(frozen=True)
class AttemptFault:
    """Scripted fault on specific submissions of one job.

    ``occurrences`` are 1-based and counted per job name across the
    whole injector lifetime — rescue rounds restart DAGMan's attempt
    numbering, this counter does not, so "fail the first submission of
    job X" means exactly that even under ``run_with_recovery``.
    """

    job: str
    occurrences: tuple[int, ...] = (1,)
    mode: str = "fail"  # fail | evict | hang | slow

    def __post_init__(self) -> None:
        if self.mode not in ("fail", "evict", "hang", "slow"):
            raise ValueError(f"unknown fault mode: {self.mode!r}")


FaultSpec = (
    StartFailure | Eviction | Slowdown | Hang | SiteOutage | BadNode
    | AttemptFault
)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of fault specs."""

    faults: tuple[FaultSpec, ...] = ()

    @classmethod
    def from_failure_model(
        cls, model: Any, *, sites: tuple[str, ...] | None = None
    ) -> "FaultPlan":
        """Bridge a :class:`repro.sim.failures.FailureModel` (duck-typed
        to avoid importing ``repro.sim`` from here) into a plan."""
        faults: list[FaultSpec] = []
        if model.start_failure_prob:
            faults.append(StartFailure(model.start_failure_prob, sites=sites))
        if model.eviction_rate_per_s:
            faults.append(Eviction(model.eviction_rate_per_s, sites=sites))
        return cls(tuple(faults))


# -- per-attempt decision ----------------------------------------------


@dataclass(frozen=True)
class FaultDecision:
    """What the injector decided for one attempt (evaluated once, at
    arrival)."""

    dead_on_arrival: str | None = None  # error message when DOA
    slowdown_factor: float = 1.0
    hang: bool = False
    evict_after: float | None = None  # seconds into execution
    injected: tuple[str, ...] = ()  # names of the faults that fired


#: The no-op decision (shared; FaultDecision is frozen).
NO_FAULTS = FaultDecision()


class FaultInjector:
    """Evaluates a :class:`FaultPlan` per attempt, deterministically.

    One injector serves one run (or one ``run_with_recovery`` sequence):
    it owns the RNG and the per-job submission counters the scripted
    :class:`AttemptFault` specs key on. Pass the same instance to the
    platform and (via :meth:`wrap_local`) to local payload binding.
    """

    def __init__(
        self,
        plan: FaultPlan,
        *,
        rng: random.Random | None = None,
        bus: EventBus | None = None,
    ) -> None:
        self.plan = plan
        self.rng = rng or random.Random(0)
        self.bus = bus
        self._seen: dict[str, int] = {}
        self.fired: int = 0

    def _applies(self, sites: tuple[str, ...] | None, site: str) -> bool:
        return sites is None or site in sites

    def decide(
        self,
        job: DagJob,
        *,
        site: str,
        machine: str,
        attempt: int,
        now: float,
    ) -> FaultDecision:
        """One decision per arrival. Emits a ``fault.injected`` event
        for every spec that fired."""
        occurrence = self._seen.get(job.name, 0) + 1
        self._seen[job.name] = occurrence

        doa: str | None = None
        slowdown = 1.0
        hang = False
        evict_after: float | None = None
        injected: list[str] = []

        for spec in self.plan.faults:
            if isinstance(spec, SiteOutage):
                if spec.site == site and spec.start_s <= now < spec.end_s:
                    doa = doa or (
                        f"site {site!r} outage "
                        f"[{spec.start_s:g}, {spec.end_s:g})"
                    )
                    injected.append("site_outage")
            elif isinstance(spec, BadNode):
                if machine in spec.machines:
                    doa = doa or f"bad node {machine!r}"
                    injected.append("bad_node")
            elif isinstance(spec, StartFailure):
                # Always draw, so one spec firing never shifts the
                # draws the next spec sees.
                fired = self.rng.random() < spec.prob
                if fired and self._applies(spec.sites, site):
                    doa = doa or "injected start failure"
                    injected.append("start_failure")
            elif isinstance(spec, Eviction):
                if spec.rate_per_s > 0:
                    sample = self.rng.expovariate(spec.rate_per_s)
                    if self._applies(spec.sites, site):
                        evict_after = (
                            sample
                            if evict_after is None
                            else min(evict_after, sample)
                        )
                        injected.append("eviction")
            elif isinstance(spec, Slowdown):
                fired = self.rng.random() < spec.prob
                if fired and self._applies(spec.sites, site):
                    slowdown *= spec.factor
                    injected.append("slowdown")
            elif isinstance(spec, Hang):
                fired = self.rng.random() < spec.prob
                if fired and self._applies(spec.sites, site):
                    hang = True
                    injected.append("hang")
            elif isinstance(spec, AttemptFault):
                if spec.job == job.name and occurrence in spec.occurrences:
                    injected.append(f"attempt_{spec.mode}")
                    if spec.mode == "fail":
                        doa = doa or (
                            f"scripted failure (submission {occurrence})"
                        )
                    elif spec.mode == "evict":
                        evict_after = 0.0
                    elif spec.mode == "hang":
                        hang = True
                    elif spec.mode == "slow":
                        slowdown *= 4.0

        decision = FaultDecision(
            dead_on_arrival=doa,
            slowdown_factor=slowdown,
            hang=hang,
            evict_after=evict_after,
            injected=tuple(injected),
        )
        if injected:
            self.fired += len(injected)
            self._emit(decision, job, site=site, machine=machine,
                       attempt=attempt, now=now)
        return decision

    def wrap_local(
        self, job: DagJob, *, attempt: int, now: float,
        hang_sleep_s: float = 5.0,
    ) -> Callable[[], Any] | None:
        """Decide for a local attempt and wrap its payload accordingly.

        Returns the (possibly wrapped) payload, or ``None`` when the
        job has none. ``hang_sleep_s`` stands in for "forever" on the
        real clock — long enough that only the watchdog ends the
        attempt, short enough that a stuck worker thread eventually
        unblocks interpreter shutdown.
        """
        if job.payload is None:
            return None
        decision = self.decide(
            job, site="local", machine="local", attempt=attempt, now=now
        )
        if decision is NO_FAULTS or not decision.injected:
            return job.payload
        return ChaosPayload(
            job.payload,
            dead_on_arrival=decision.dead_on_arrival,
            hang_s=hang_sleep_s if decision.hang else None,
            # Local payloads have real durations we cannot scale without
            # running them; approximate a slowdown with a pre-sleep.
            delay_s=(
                (decision.slowdown_factor - 1.0)
                if decision.slowdown_factor > 1.0
                else 0.0
            ),
        )

    def _emit(self, decision: FaultDecision, job: DagJob, *, site: str,
              machine: str, attempt: int, now: float) -> None:
        if self.bus is None:
            return
        for name in decision.injected:
            self.bus.emit(
                RunEvent(
                    EventKind.FAULT,
                    now,
                    job_name=job.name,
                    transformation=job.transformation,
                    site=site,
                    machine=machine,
                    attempt=attempt,
                    detail={"fault": name},
                )
            )


class FaultInjected(RuntimeError):
    """Raised inside a worker by a :class:`ChaosPayload` DOA fault."""


class CrashInjected(RuntimeError):
    """Raised by a :class:`CrashFault` in ``raise`` mode — the
    in-process stand-in for the manager dying mid-journal-write."""


@dataclass
class CrashFault:
    """Kill the *manager* at the Nth write-ahead-journal record.

    Where every other fault in this module breaks a job, this one
    breaks the workflow manager itself — the failure mode
    :mod:`repro.resilience.journal` exists to survive. The journal
    consults the fault before each record append; when the Nth record
    (1-based, counted across this fault's lifetime) is reached, only a
    ``torn_fraction`` prefix of the record's bytes hits the file (a
    simulated torn write) and then :meth:`fire` either raises
    :class:`CrashInjected` (``mode="raise"``, for in-process property
    tests that sweep every crash point) or SIGKILLs the process
    (``mode="kill"``, for end-to-end subprocess tests and the
    ``repro-run --crash-at-record`` harness — a real unclean death, no
    atexit handlers, no flushes).
    """

    at_record: int
    mode: str = "raise"
    torn_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.at_record < 1:
            raise ValueError("at_record is 1-based and must be >= 1")
        if self.mode not in ("raise", "kill"):
            raise ValueError("mode must be 'raise' or 'kill'")
        if not 0.0 <= self.torn_fraction < 1.0:
            raise ValueError("torn_fraction must be in [0, 1)")
        self._seen = 0

    def note_record(self) -> bool:
        """Count one record about to be appended; True = crash now."""
        self._seen += 1
        return self._seen == self.at_record

    def fire(self) -> None:
        """Die. ``kill`` mode never returns; ``raise`` mode raises."""
        if self.mode == "kill":  # pragma: no cover - process suicide
            import os
            import signal

            os.kill(os.getpid(), signal.SIGKILL)
        raise CrashInjected(
            f"injected manager crash at journal record {self.at_record}"
        )


@dataclass
class ChaosPayload:
    """Picklable payload wrapper carrying a pre-drawn fault decision.

    The decision is made on the driver (where the injector's RNG
    lives); the wrapper is pure data plus the original payload, so the
    process-pool backend can ship it to workers like any
    :class:`~repro.execution.payloads.TaskCall`.
    """

    payload: Callable[[], Any]
    dead_on_arrival: str | None = None
    hang_s: float | None = None
    delay_s: float = 0.0
    sleeper: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __call__(self) -> Any:
        if self.dead_on_arrival is not None:
            raise FaultInjected(self.dead_on_arrival)
        if self.hang_s is not None:
            self.sleeper(self.hang_s)
            raise FaultInjected(f"hung for {self.hang_s:g}s")
        if self.delay_s > 0:
            self.sleeper(self.delay_s)
        return self.payload()


def resolve_exec(
    duration: float,
    *,
    evict_after: float | None = None,
    timeout_s: float | None = None,
) -> tuple[float, JobStatus, str | None]:
    """Race the payload against eviction and the per-job timeout.

    ``duration`` may be ``inf`` (a hung payload). Returns ``(delay,
    status, error)`` where ``delay`` is seconds until the attempt's
    terminal moment — ``inf`` means *nothing* ends it (a hang with
    neither timeout nor eviction: the attempt wedges, which is exactly
    the failure mode ``timeout_s`` exists to prevent). Ties go to the
    timeout (the watchdog kills at the deadline), then eviction.
    """
    timeout = math.inf if timeout_s is None else timeout_s
    evict = math.inf if evict_after is None else evict_after
    if duration <= timeout and duration <= evict and not math.isinf(duration):
        return duration, JobStatus.SUCCEEDED, None
    if timeout <= evict:
        if math.isinf(timeout):
            return math.inf, JobStatus.FAILED, "attempt never completes"
        return (
            timeout,
            JobStatus.TIMEOUT,
            f"killed after exceeding timeout of {timeout:g}s",
        )
    return evict, JobStatus.EVICTED, "preempted by resource owner"
