"""``repro.resilience`` — fault injection, retry policies, recovery.

The paper's central result is a *failure* story: OSG loses to a much
smaller campus cluster because of start failures, preemption, and the
retries they force. This package makes that story a first-class,
testable subsystem:

* :mod:`repro.resilience.faults` — composable fault plans (start
  failures, evictions, stragglers, hangs, site outages, bad nodes,
  scripted per-attempt faults) injected into all three simulators and,
  via payload wrappers, the real local backend — deterministic under
  the named-RNG-stream contract;
* :mod:`repro.resilience.retry` — pluggable
  :class:`~repro.resilience.retry.RetryPolicy` objects for DAGMan
  (immediate / fixed delay / exponential backoff with jitter), with
  eviction-vs-failure accounting and a requeue budget;
* :mod:`repro.resilience.blacklist` — the circuit breaker that stops
  matching jobs onto machines (or whole sites) that keep failing them
  on arrival;
* :mod:`repro.resilience.recovery` —
  :func:`~repro.resilience.recovery.run_with_recovery`, the automated
  rescue-DAG resubmit loop;
* :mod:`repro.resilience.journal` — the crash-consistent write-ahead
  journal: every durable scheduler decision hits an fsynced,
  CRC-framed WAL before it takes effect in memory, snapshots bound the
  replay, and :func:`~repro.resilience.journal.recover` resumes a
  ``kill -9``'d run without re-executing completed jobs.

Everything emits typed events (``job.timeout``, ``job.held``,
``fault.injected``, ``blacklist.add``, ``rescue.round``) on the
:mod:`repro.observe` bus, so recovery is visible live in
``repro-status`` and in ``events.jsonl``.
"""

from repro.resilience.blacklist import Blacklist, BlacklistPolicy
from repro.resilience.faults import (
    AttemptFault,
    BadNode,
    ChaosPayload,
    CrashFault,
    CrashInjected,
    Eviction,
    FaultDecision,
    FaultInjected,
    FaultInjector,
    FaultPlan,
    Hang,
    SiteOutage,
    Slowdown,
    StartFailure,
    resolve_exec,
)
from repro.resilience.journal import (
    Journal,
    JournalError,
    JournalState,
    ReconcileReport,
    RecoveredState,
    reconcile_local,
    recover,
)
from repro.resilience.recovery import (
    RecoveryResult,
    RecoveryRound,
    run_with_recovery,
)
from repro.resilience.retry import (
    ExponentialBackoff,
    FixedDelayRetry,
    ImmediateRetry,
    RetryPolicy,
)

__all__ = [
    "Blacklist",
    "BlacklistPolicy",
    "AttemptFault",
    "BadNode",
    "ChaosPayload",
    "CrashFault",
    "CrashInjected",
    "Journal",
    "JournalError",
    "JournalState",
    "ReconcileReport",
    "RecoveredState",
    "reconcile_local",
    "recover",
    "Eviction",
    "FaultDecision",
    "FaultInjected",
    "FaultInjector",
    "FaultPlan",
    "Hang",
    "SiteOutage",
    "Slowdown",
    "StartFailure",
    "resolve_exec",
    "RecoveryResult",
    "RecoveryRound",
    "run_with_recovery",
    "ExponentialBackoff",
    "FixedDelayRetry",
    "ImmediateRetry",
    "RetryPolicy",
]
