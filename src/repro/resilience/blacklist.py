"""The circuit breaker: stop feeding jobs to nodes that keep killing them.

The paper's §VI-A attributes OSG start failures to "misconfigured
nodes" — and a misconfigured node fails *every* job it receives, so
retrying onto it burns a ``RETRY`` per bounce. A :class:`Blacklist`
watches start failures per machine (and per site) and, past a
threshold, tells the platform to stop matching jobs there — condor's
``MaxJobRetirementTime``/startd-cron health checks, reduced to their
scheduling effect.

Cooldown semantics: with ``cooldown_s`` set, a blocked machine is
released after that long (half-open circuit — one more chance); without
it the block is permanent for the run. A success on a machine resets
its failure streak.

Clock-agnostic like the scheduler: every method takes ``now`` from the
caller, so one implementation serves virtual and wall clocks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.observe.bus import EventBus
from repro.observe.events import EventKind, RunEvent

__all__ = ["BlacklistPolicy", "Blacklist"]


@dataclass(frozen=True)
class BlacklistPolicy:
    """When the breaker trips.

    ``threshold`` consecutive start failures block a machine;
    ``site_threshold`` (when set) consecutive start failures across a
    whole site block the site — the coarse breaker for outages, where
    every node of the site fails arrivals and per-machine counting
    would trip one breaker per node.
    """

    threshold: int = 3
    cooldown_s: float | None = None
    site_threshold: int | None = None

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError("threshold must be >= 1")
        if self.cooldown_s is not None and self.cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive (or None)")
        if self.site_threshold is not None and self.site_threshold < 1:
            raise ValueError("site_threshold must be >= 1 (or None)")


class Blacklist:
    """Start-failure circuit breaker over machines and sites."""

    def __init__(
        self, policy: BlacklistPolicy = BlacklistPolicy(),
        *, bus: EventBus | None = None,
    ) -> None:
        self.policy = policy
        self.bus = bus
        self._machine_streak: dict[str, int] = {}
        self._site_streak: dict[str, int] = {}
        #: machine/site -> expiry time (inf = permanent)
        self._blocked_machines: dict[str, float] = {}
        self._blocked_sites: dict[str, float] = {}
        self.trips = 0

    # -- recording ------------------------------------------------------

    def record_start_failure(
        self, machine: str, site: str, *, now: float
    ) -> bool:
        """Count one start failure; returns True when it tripped a
        (machine or site) breaker."""
        tripped = False
        streak = self._machine_streak.get(machine, 0) + 1
        self._machine_streak[machine] = streak
        if (
            streak >= self.policy.threshold
            and machine not in self._blocked_machines
        ):
            self._block(self._blocked_machines, machine, "machine",
                        site=site, now=now, streak=streak)
            tripped = True
        if self.policy.site_threshold is not None:
            site_streak = self._site_streak.get(site, 0) + 1
            self._site_streak[site] = site_streak
            if (
                site_streak >= self.policy.site_threshold
                and site not in self._blocked_sites
            ):
                self._block(self._blocked_sites, site, "site",
                            site=site, now=now, streak=site_streak)
                tripped = True
        return tripped

    def record_success(self, machine: str, site: str) -> None:
        """A healthy completion resets the failure streaks."""
        self._machine_streak.pop(machine, None)
        self._site_streak.pop(site, None)

    # -- queries --------------------------------------------------------

    def is_blocked(self, machine: str, site: str, *, now: float) -> bool:
        return self._check(self._blocked_machines, machine, now) or (
            self._check(self._blocked_sites, site, now)
        )

    def blocked_machines(self, *, now: float) -> list[str]:
        return sorted(
            m for m in self._blocked_machines
            if self._check(self._blocked_machines, m, now)
        )

    def blocked_sites(self, *, now: float) -> list[str]:
        return sorted(
            s for s in self._blocked_sites
            if self._check(self._blocked_sites, s, now)
        )

    def next_expiry(self, *, now: float) -> float | None:
        """Earliest future time a block lifts (None when nothing will)."""
        expiries = [
            t
            for t in (
                list(self._blocked_machines.values())
                + list(self._blocked_sites.values())
            )
            if now < t < math.inf
        ]
        return min(expiries) if expiries else None

    # -- persistence ----------------------------------------------------

    def to_json(self) -> dict:
        """Serialize policy, streaks, and blocks for a journal snapshot.

        Infinite (permanent) block expiries become ``None`` so the
        payload is plain JSON; :meth:`from_json` restores them.
        """

        def _expiries(table: dict[str, float]) -> dict[str, float | None]:
            return {
                k: (None if math.isinf(t) else t)
                for k, t in sorted(table.items())
            }

        return {
            "policy": {
                "threshold": self.policy.threshold,
                "cooldown_s": self.policy.cooldown_s,
                "site_threshold": self.policy.site_threshold,
            },
            "machine_streak": dict(sorted(self._machine_streak.items())),
            "site_streak": dict(sorted(self._site_streak.items())),
            "blocked_machines": _expiries(self._blocked_machines),
            "blocked_sites": _expiries(self._blocked_sites),
            "trips": self.trips,
        }

    @classmethod
    def from_json(
        cls, data: dict, *, bus: EventBus | None = None
    ) -> "Blacklist":
        """Rebuild a blacklist from :meth:`to_json` output.

        This is the cross-process half of ``run_with_recovery``: without
        it a blacklisted machine gets a fresh streak after a manager
        restart and burns another ``threshold`` jobs re-discovering the
        same misconfigured node.
        """
        policy_data = data.get("policy", {})
        blacklist = cls(
            BlacklistPolicy(
                threshold=int(policy_data.get("threshold", 3)),
                cooldown_s=policy_data.get("cooldown_s"),
                site_threshold=policy_data.get("site_threshold"),
            ),
            bus=bus,
        )
        blacklist._machine_streak = {
            str(k): int(v)
            for k, v in data.get("machine_streak", {}).items()
        }
        blacklist._site_streak = {
            str(k): int(v) for k, v in data.get("site_streak", {}).items()
        }

        def _restore(raw: dict) -> dict[str, float]:
            return {
                str(k): (math.inf if t is None else float(t))
                for k, t in raw.items()
            }

        blacklist._blocked_machines = _restore(
            data.get("blocked_machines", {})
        )
        blacklist._blocked_sites = _restore(data.get("blocked_sites", {}))
        blacklist.trips = int(data.get("trips", 0))
        return blacklist

    def restore_block(
        self, scope: str, name: str, *, until: float | None
    ) -> None:
        """Re-apply one journaled ``blacklist.add`` record (WAL replay
        of blocks recorded after the last snapshot). Silent: no event
        emission, no trip accounting — the original block already did
        both."""
        table = (
            self._blocked_sites if scope == "site" else self._blocked_machines
        )
        table[name] = math.inf if until is None else float(until)

    # -- internals ------------------------------------------------------

    def _check(self, table: dict[str, float], key: str, now: float) -> bool:
        expiry = table.get(key)
        if expiry is None:
            return False
        if now >= expiry:
            # Half-open: the block lifts; the streak restarts from zero.
            del table[key]
            streaks = (
                self._machine_streak
                if table is self._blocked_machines
                else self._site_streak
            )
            streaks.pop(key, None)
            return False
        return True

    def _block(
        self, table: dict[str, float], key: str, scope: str,
        *, site: str, now: float, streak: int,
    ) -> None:
        cooldown = self.policy.cooldown_s
        expiry = math.inf if cooldown is None else now + cooldown
        table[key] = expiry
        self.trips += 1
        if self.bus is not None:
            self.bus.emit(
                RunEvent(
                    EventKind.BLACKLIST,
                    now,
                    site=site,
                    machine=key if scope == "machine" else None,
                    detail={
                        "scope": scope,
                        "name": key,
                        "streak": streak,
                        "until": None if math.isinf(expiry) else expiry,
                    },
                )
            )
