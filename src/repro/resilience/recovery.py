"""``run_with_recovery`` — the pegasus-dagman resubmit loop, automated.

The paper's operators recovered failed OSG runs by hand: inspect,
``pegasus-run`` the rescue DAG, repeat. This module closes that loop:
run the DAG, and while anything failed, write a ``*.rescue00K`` file,
carry the DONE marks forward, emit a ``rescue.round`` event, and
resubmit — up to ``max_rounds`` rounds, on the *same* environment
(one continuing clock/pool) or a fresh one per round.

The merged trace spans every round, so ``pegasus-statistics``'
planned-vs-attempted accounting stays consistent across recovery: jobs
done in round 1 are DONE marks (not attempts) in round 2, exactly as
with real rescue DAGs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.dagman.dag import Dag
from repro.dagman.events import WorkflowTrace
from repro.observe.bus import EventBus
from repro.observe.events import EventKind, RunEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dagman.scheduler import (
        DagmanResult,
        DagmanScheduler,
        ExecutionEnvironment,
    )
    from repro.resilience.journal import Journal, RecoveredState

__all__ = ["RecoveryRound", "RecoveryResult", "run_with_recovery"]


@dataclass
class RecoveryRound:
    """One DAGMan round inside a recovery run."""

    number: int  # 1-based
    result: DagmanResult
    rescue_path: Path | None  # written when the round left failures


@dataclass
class RecoveryResult:
    """Outcome of the whole resubmit loop."""

    success: bool
    rounds: list[RecoveryRound] = field(default_factory=list)
    trace: WorkflowTrace = field(default_factory=WorkflowTrace)

    @property
    def final(self) -> DagmanResult:
        return self.rounds[-1].result

    @property
    def failed_jobs(self) -> list[str]:
        """Jobs that still end FAILED after the last round."""
        return self.final.failed_jobs

    @property
    def unrunnable_jobs(self) -> list[str]:
        """The exact set DAGMan could never run (failed ancestors)."""
        return self.final.unrunnable_jobs

    @property
    def rescue_paths(self) -> list[Path]:
        return [r.rescue_path for r in self.rounds if r.rescue_path]


def run_with_recovery(
    dag: Dag,
    environment: ExecutionEnvironment
    | Callable[[int], ExecutionEnvironment],
    *,
    max_rounds: int = 3,
    rescue_dir: str | Path | None = None,
    bus: EventBus | None = None,
    on_round_start: Callable[[DagmanScheduler, int], None] | None = None,
    journal: "Journal | None" = None,
    resume: "RecoveredState | None" = None,
    **scheduler_kwargs: object,
) -> RecoveryResult:
    """Run ``dag``, rescuing and resubmitting until success or
    ``max_rounds`` rounds are spent.

    ``environment`` is either one environment reused every round (the
    common case — simulators keep one virtual timeline, the local pool
    keeps its workers warm) or a factory called with the 1-based round
    number. ``rescue_dir`` receives ``<dag>.rescue001`` … files after
    each failed round (omit to skip writing them). Extra keyword
    arguments (``max_jobs``, ``retry_policy``, …) go to every round's
    :class:`DagmanScheduler`; ``on_round_start`` fires after each
    round's initial submissions, before the environment is driven
    (start samplers there).

    Durability: pass ``journal`` (a live, bus-subscribed
    :class:`~repro.resilience.journal.Journal`) to compact it after
    every round — a crash then replays at most one round's WAL suffix.
    Pass ``resume`` (a :class:`~repro.resilience.journal.RecoveredState`)
    to continue a crashed run: the journaled done set becomes DONE
    marks, the first resumed round's scheduler restores the journaled
    attempt/retry counters, the rescue-round numbering carries on from
    the journal, and the merged trace is seeded with the journaled
    attempts. ``dag`` must be the same abstract DAG the crashed run
    was executing.
    """
    # Imported here, not at module top: the simulators import
    # repro.resilience (for fault injection), and the scheduler's
    # observe imports reach the simulators — a top-level scheduler
    # import here would close that loop into a cycle.
    from repro.dagman.scheduler import DagmanScheduler, NodeState

    if max_rounds < 1:
        raise ValueError("max_rounds must be >= 1")
    rescue_dir = Path(rescue_dir) if rescue_dir is not None else None

    outcome = RecoveryResult(success=False)
    current = dag
    start_round = 1
    restore = None
    if resume is not None:
        if resume.complete:
            raise ValueError(
                f"journal at {resume.path} records a completed workflow; "
                "there is nothing to resume"
            )
        # The journaled attempts open the merged trace, the journaled
        # done set becomes DONE marks, and the round numbering picks up
        # where the crashed manager left off.
        for attempt in resume.trace():
            outcome.trace.add(attempt)
        current = resume.resume_dag(dag)
        start_round = resume.state.rescue_round + 1
        restore = resume.scheduler_restore()
        if bus is not None and bus.active:
            # Announce the continuation on the live stream: the span
            # tracer links the resumed workflow back to the pre-crash
            # trace root, the status view shows where replay ended.
            bus.emit(
                RunEvent(
                    EventKind.JOURNAL_RESUME,
                    resume.clock,
                    detail={
                        "replayed": resume.replayed,
                        "done": len(resume.done),
                        "torn": resume.torn_tail,
                        "clock": resume.clock,
                        "round": start_round,
                        "trace_id": resume.trace_id,
                    },
                )
            )
    last_round_no = max(max_rounds, start_round)
    for round_no in range(start_round, last_round_no + 1):
        env = environment(round_no) if callable(environment) else environment
        scheduler = DagmanScheduler(
            current, env, bus=bus, restore=restore,
            **scheduler_kwargs,  # type: ignore[arg-type]
        )
        restore = None  # counters restore into the first resumed round only
        scheduler.start()
        if on_round_start is not None:
            on_round_start(scheduler, round_no)
        env.run_until_complete()
        result = scheduler.finish()
        for attempt in result.trace:
            outcome.trace.add(attempt)

        rescue_path: Path | None = None
        if not result.success and rescue_dir is not None:
            rescue_dir.mkdir(parents=True, exist_ok=True)
            rescue_path = scheduler.write_rescue(
                rescue_dir / f"{dag.name}.rescue{round_no:03d}"
            )
        outcome.rounds.append(RecoveryRound(round_no, result, rescue_path))

        if result.success:
            outcome.success = True
            if journal is not None and not journal.closed:
                journal.snapshot()
            return outcome

        done = {
            n for n, s in result.states.items() if s is NodeState.DONE
        }
        last_round = round_no == last_round_no
        if bus is not None:
            bus.emit(
                RunEvent(
                    EventKind.RESCUE,
                    env.now,
                    detail={
                        "round": round_no,
                        "done": len(done),
                        "failed": result.failed_jobs,
                        "unrunnable": len(result.unrunnable_jobs),
                        "rescue": str(rescue_path) if rescue_path else None,
                        "resubmitting": not last_round,
                    },
                )
            )
        # Compact after the round boundary: the rescue.round record is
        # in the WAL, so a crash in the next round replays only that
        # round's suffix on top of this snapshot.
        if journal is not None and not journal.closed:
            journal.snapshot()
        if last_round:
            return outcome

        # The in-memory rescue DAG: same jobs and edges (payloads,
        # runtimes and timeouts intact — the written .dag file cannot
        # carry those), DONE marks accumulated.
        rescue = Dag(name=dag.name)
        for job in dag.jobs.values():
            rescue.add_job(job)
        for parent, child in dag.edges():
            rescue.add_edge(parent, child)
        rescue.done = done
        current = rescue
    return outcome
