"""Multi-tenant load generation against the WaaS layer.

Builds a shared simulated platform, a :class:`WorkflowService` over
it, N tenants, and a Poisson-free (deterministic-interval) arrival
process: each tenant submits M workflows per minute of virtual time,
each workflow a blast2cap3-shaped DAG (split → parallel partitions →
merge) with lognormal job runtimes. Everything is driven by named RNG
streams, so a (spec, seed, backend) triple reproduces bit-identically
— the property the bench gates rely on.

``run_load`` is the engine behind the ``repro-service bench`` CLI and
``benchmarks/bench_service_load.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.dagman.dag import Dag, DagJob
from repro.observe.bus import EventBus
from repro.service.service import ServiceConfig, WorkflowService
from repro.service.tenants import TenantConfig, TenantQuota
from repro.sim.cluster import CampusCluster, CampusClusterConfig
from repro.sim.engine import Simulator
from repro.sim.grid import GridConfig, OpportunisticGrid
from repro.sim.rng import RngStreams, bounded_lognormal

__all__ = ["LoadSpec", "generate_workflow", "build_service", "run_load"]

#: The Sandhills-style requirements string a software-requiring
#: workflow attaches to its partition jobs.
SOFTWARE_REQUIREMENTS = "has_python and has_biopython and has_cap3"


@dataclass(frozen=True)
class LoadSpec:
    """One load scenario: N tenants × M workflows each.

    ``workflows_per_minute`` is the per-tenant arrival rate on the
    virtual clock; tenants are phase-shifted within the interval so
    arrivals interleave rather than stampede. ``tenant_weights``
    (cycled if shorter than ``tenants``) sets fair-share weights;
    ``require_software_prob`` is the chance a workflow's partition
    jobs carry Sandhills-style requirements (exercising grid
    matchmaking against the heterogeneous pool).
    """

    tenants: int = 8
    workflows_per_tenant: int = 4
    jobs_per_workflow: int = 50
    workflows_per_minute: float = 2.0
    tenant_weights: tuple[float, ...] = (1.0,)
    max_running_jobs: int | None = None
    max_active_workflows: int | None = None
    runtime_mean_s: float = 120.0
    runtime_sigma: float = 0.5
    runtime_max_s: float = 900.0
    retries: int = 2
    require_software_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.tenants < 1 or self.workflows_per_tenant < 1:
            raise ValueError("need at least one tenant and one workflow")
        if self.jobs_per_workflow < 1:
            raise ValueError("jobs_per_workflow must be >= 1")
        if self.workflows_per_minute <= 0:
            raise ValueError("workflows_per_minute must be positive")
        if not self.tenant_weights:
            raise ValueError("tenant_weights must be non-empty")

    def weight_of(self, index: int) -> float:
        return self.tenant_weights[index % len(self.tenant_weights)]

    def tenant_name(self, index: int) -> str:
        return f"tenant-{index:02d}"


def generate_workflow(
    name: str,
    jobs: int,
    rng_streams: RngStreams,
    *,
    runtime_mean_s: float = 120.0,
    runtime_sigma: float = 0.5,
    runtime_max_s: float = 900.0,
    retries: int = 2,
    requirements: str | None = None,
) -> Dag:
    """A blast2cap3-shaped DAG: split → parallel partitions → merge.

    ``jobs`` counts total nodes. Below 3 the shape degenerates to a
    chain. Runtimes are lognormal per job from the stream named after
    the workflow, so two workflows with the same name and seed are
    identical.
    """
    rng = rng_streams.stream(f"loadgen.{name}")

    def runtime() -> float:
        return bounded_lognormal(
            rng, runtime_mean_s, runtime_sigma, high=runtime_max_s
        )

    dag = Dag(name=name)
    if jobs <= 2:
        prev: str | None = None
        for i in range(jobs):
            job = f"{name}-j{i}"
            dag.add_job(
                DagJob(
                    name=job,
                    transformation="blast2cap3",
                    runtime=runtime(),
                    retries=retries,
                    requirements=requirements,
                )
            )
            if prev is not None:
                dag.add_edge(prev, job)
            prev = job
        return dag
    split = f"{name}-split"
    merge = f"{name}-merge"
    dag.add_job(
        DagJob(
            name=split,
            transformation="partition",
            runtime=runtime(),
            retries=retries,
        )
    )
    for i in range(jobs - 2):
        job = f"{name}-p{i:04d}"
        dag.add_job(
            DagJob(
                name=job,
                transformation="blast2cap3",
                runtime=runtime(),
                retries=retries,
                requirements=requirements,
            )
        )
        dag.add_edge(split, job)
    dag.add_job(
        DagJob(
            name=merge,
            transformation="merge",
            runtime=runtime(),
            retries=retries,
        )
    )
    for i in range(jobs - 2):
        dag.add_edge(f"{name}-p{i:04d}", merge)
    return dag


@dataclass
class _Backend:
    simulator: Simulator
    environment: object
    service: WorkflowService
    bus: EventBus = field(repr=False, default_factory=EventBus)


def build_service(
    spec: LoadSpec,
    *,
    backend: str = "cluster",
    seed: int = 0,
    bus: EventBus | None = None,
    matchmaker: str | None = None,
) -> _Backend:
    """Platform + service + tenants for one load run.

    ``backend`` is ``cluster`` (Sandhills model) or ``grid`` (OSG
    model); ``matchmaker`` overrides the grid's strategy (``indexed``
    is its default, ``linear`` is the oracle)."""
    simulator = Simulator()
    streams = RngStreams(seed=seed)
    bus = bus if bus is not None else EventBus()
    environment: CampusCluster | OpportunisticGrid
    if backend == "cluster":
        environment = CampusCluster(
            simulator, CampusClusterConfig(), streams=streams, bus=bus
        )
    elif backend == "grid":
        config = GridConfig()
        if matchmaker is not None:
            config = GridConfig(matchmaker=matchmaker)
        environment = OpportunisticGrid(
            simulator, config, streams=streams, bus=bus
        )
    else:
        raise ValueError(
            f"unknown backend {backend!r}; choose cluster or grid"
        )
    service = WorkflowService(
        environment,
        config=ServiceConfig(),
        bus=bus,
    )
    for i in range(spec.tenants):
        service.add_tenant(
            TenantConfig(
                name=spec.tenant_name(i),
                weight=spec.weight_of(i),
                quota=TenantQuota(
                    max_running_jobs=spec.max_running_jobs,
                    max_active_workflows=spec.max_active_workflows,
                ),
            )
        )
    return _Backend(
        simulator=simulator,
        environment=environment,
        service=service,
        bus=bus,
    )


def run_load(
    spec: LoadSpec,
    *,
    backend: str = "cluster",
    seed: int = 0,
    bus: EventBus | None = None,
    matchmaker: str | None = None,
) -> dict[str, object]:
    """Run one scenario to completion; returns the results document.

    Arrivals: tenant ``i`` submits workflow ``j`` at virtual time
    ``j * interval + i * interval / tenants`` where ``interval`` is
    ``60 / workflows_per_minute`` — a deterministic interleaved
    schedule at the requested per-tenant rate.
    """
    built = build_service(
        spec, backend=backend, seed=seed, bus=bus, matchmaker=matchmaker
    )
    service = built.service
    streams = RngStreams(seed=seed)
    shape_rng = streams.stream("loadgen.shapes")
    interval = 60.0 / spec.workflows_per_minute
    for i in range(spec.tenants):
        tenant = spec.tenant_name(i)
        phase = interval * i / spec.tenants
        for j in range(spec.workflows_per_tenant):
            wf_name = f"{tenant}-wf{j:03d}"
            requirements = (
                SOFTWARE_REQUIREMENTS
                if shape_rng.random() < spec.require_software_prob
                else None
            )
            at = j * interval + phase

            def arrive(
                tenant: str = tenant,
                wf_name: str = wf_name,
                requirements: str | None = requirements,
            ) -> None:
                dag = generate_workflow(
                    wf_name,
                    spec.jobs_per_workflow,
                    streams,
                    runtime_mean_s=spec.runtime_mean_s,
                    runtime_sigma=spec.runtime_sigma,
                    runtime_max_s=spec.runtime_max_s,
                    retries=spec.retries,
                    requirements=requirements,
                )
                service.submit(tenant, dag, name=wf_name)

            built.simulator.schedule(at, arrive)
    handles = service.run()
    makespan = built.simulator.now
    completed = sum(1 for h in handles if h.result is not None)
    succeeded = sum(
        1 for h in handles if h.result is not None and h.result.success
    )
    slo = service.slo_report()
    p95_turnaround = {
        t: row["turnaround_s"]["p95"]  # type: ignore[index]
        for t, row in slo.items()
    }
    result: dict[str, object] = {
        "backend": backend,
        "seed": seed,
        "spec": {
            "tenants": spec.tenants,
            "workflows_per_tenant": spec.workflows_per_tenant,
            "jobs_per_workflow": spec.jobs_per_workflow,
            "workflows_per_minute": spec.workflows_per_minute,
        },
        "makespan_s": makespan,
        "workflows_completed": completed,
        "workflows_succeeded": succeeded,
        "workflows_per_minute_sustained": (
            completed / (makespan / 60.0) if makespan > 0 else 0.0
        ),
        "jobs_released": service.jobs_released,
        "per_tenant_p95_turnaround_s": p95_turnaround,
        "slo": slo,
    }
    stats = getattr(built.environment, "matchmaker", None)
    if stats is not None:
        result["matchmaker"] = {
            "strategy": type(stats).__name__,
            "finds": stats.stats.finds,
            "ads_scanned": stats.stats.ads_scanned,
            "bucket_probes": stats.stats.bucket_probes,
            "linear_fallbacks": stats.stats.linear_fallbacks,
            "matchable_calls": stats.stats.matchable_calls,
            "matchable_scans": stats.stats.matchable_scans,
        }
    return result


def tenant_mapping(spec: LoadSpec) -> Mapping[str, float]:
    """tenant name → weight (what the convergence tests compare to)."""
    return {
        spec.tenant_name(i): spec.weight_of(i) for i in range(spec.tenants)
    }
