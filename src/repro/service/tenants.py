"""Tenant identity, quotas, and accounting.

A *tenant* is one user/group sharing the service's pool. Its
:class:`TenantConfig` carries the scheduling knobs (fair-share weight,
strict priority tier, quotas); its :class:`TenantAccount` carries the
live counters the service maintains — what was submitted, admitted,
rejected, completed, and how much machine time the tenant consumed —
the ``condor_userprio``-style ledger multi-tenant operators bill from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TenantQuota", "TenantConfig", "TenantAccount"]


@dataclass(frozen=True)
class TenantQuota:
    """Hard per-tenant ceilings (``None`` = unlimited).

    ``max_running_jobs`` caps how many of the tenant's jobs occupy the
    shared pool at once (fair-share decides *order*, the quota decides
    *amount*); ``max_active_workflows`` caps admitted-but-unfinished
    workflows — submissions beyond it are rejected at admission, the
    service's back-pressure valve.
    """

    max_running_jobs: int | None = None
    max_active_workflows: int | None = None

    def __post_init__(self) -> None:
        if self.max_running_jobs is not None and self.max_running_jobs < 1:
            raise ValueError("max_running_jobs must be >= 1 (or None)")
        if (
            self.max_active_workflows is not None
            and self.max_active_workflows < 1
        ):
            raise ValueError("max_active_workflows must be >= 1 (or None)")


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's scheduling contract.

    ``weight`` is the fair-share share: in steady state with everyone
    backlogged, a tenant holds ``weight / total_weight`` of the slots
    the service releases. ``priority`` is a strict tier on top —
    tenants in a higher tier are always served before lower tiers have
    any job released (production vs. opportunistic), with fair-share
    applying *within* a tier.
    """

    name: str
    weight: float = 1.0
    priority: int = 0
    quota: TenantQuota = field(default_factory=TenantQuota)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError("weight must be positive")


@dataclass
class TenantAccount:
    """Live usage ledger for one tenant (maintained by the service)."""

    #: workflows handed to ``submit`` (admitted or not)
    workflows_submitted: int = 0
    #: workflows past admission control
    workflows_admitted: int = 0
    #: workflows refused at admission (infeasible, quota)
    workflows_rejected: int = 0
    #: admitted workflows that reached a terminal state
    workflows_completed: int = 0
    #: of those, how many fully succeeded
    workflows_succeeded: int = 0
    #: job attempts the service released to the platform
    jobs_dispatched: int = 0
    #: job attempts that came back (any status)
    jobs_completed: int = 0
    #: platform-clock seconds the tenant's attempts occupied a slot
    #: doing work (setup-to-end per attempt — what a billing report
    #: charges; the opportunistic-wait window is idle, not billed)
    busy_seconds: float = 0.0
    #: jobs on the platform right now
    running_jobs: int = 0
    #: admitted, unfinished workflows right now
    active_workflows: int = 0

    def snapshot(self) -> dict[str, float]:
        """JSON-able copy (the accounting export)."""
        return {
            "workflows_submitted": self.workflows_submitted,
            "workflows_admitted": self.workflows_admitted,
            "workflows_rejected": self.workflows_rejected,
            "workflows_completed": self.workflows_completed,
            "workflows_succeeded": self.workflows_succeeded,
            "jobs_dispatched": self.jobs_dispatched,
            "jobs_completed": self.jobs_completed,
            "busy_seconds": round(self.busy_seconds, 6),
            "running_jobs": self.running_jobs,
            "active_workflows": self.active_workflows,
        }
