"""Multi-tenant Workflow-as-a-Service layer.

The paper runs one blast2cap3 workflow at a time; the ROADMAP
north-star is a service that runs thousands of them concurrently for
many users. This package is that front-end over the existing engine
stack: tenants submit DAGs to a :class:`WorkflowService`, admission
control proves them feasible against the modeled pools (the PR 6
preflight), and a weighted fair-share scheduler releases their jobs to
one shared :class:`~repro.dagman.scheduler.ExecutionEnvironment` under
per-tenant quotas, with per-tenant SLO distributions flowing through
the event bus into ``repro-report``.

Layering: ``service`` sits above ``dagman`` (one private
:class:`DagmanScheduler` per workflow) and above ``sim`` (one shared
platform); it never reaches into either's internals — jobs cross the
boundary through the same ``ExecutionEnvironment`` protocol DAGMan
already uses, via a per-workflow gate that parks submissions in the
service's fair-share queue.
"""

from repro.service.fairshare import StrideScheduler
from repro.service.loadgen import LoadSpec, generate_workflow, run_load
from repro.service.service import (
    ServiceConfig,
    WorkflowHandle,
    WorkflowService,
    WorkflowState,
)
from repro.service.tenants import TenantAccount, TenantConfig, TenantQuota

__all__ = [
    "LoadSpec",
    "ServiceConfig",
    "StrideScheduler",
    "TenantAccount",
    "TenantConfig",
    "TenantQuota",
    "WorkflowHandle",
    "WorkflowService",
    "WorkflowState",
    "generate_workflow",
    "run_load",
]
