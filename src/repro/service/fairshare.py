"""Deterministic weighted fair-share: stride scheduling.

Classic stride scheduling (Waldspurger & Weihl, OSDI '95): each tenant
holds a *pass* value advanced by ``stride = K / weight`` every time it
is served; the scheduler always serves the eligible tenant with the
smallest pass. Over any long window, services received converge to the
weight ratio, and the choice is a pure function of the service history
— no RNG, so simulated runs stay bit-reproducible (the same property
every other component in this repo preserves).

Two refinements the service needs:

* **strict priority tiers** — selection considers only the highest
  tier with an eligible tenant; fair-share applies within the tier;
* **no banked credit while idle** — a tenant rejoining after an idle
  period restarts at the current minimum pass (its pass is clamped
  up), so it cannot starve everyone else by cashing in time it spent
  with nothing to run. This is the standard lag-bounding fix; without
  it a long-idle tenant would monopolize the pool on return.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["StrideScheduler"]

#: Stride numerator. Any constant works (passes are compared, never
#: interpreted); a large one keeps per-serve increments well away from
#: float granularity even for large weights.
_STRIDE_K = 1 << 20


class StrideScheduler:
    """Weighted round-robin by pass values, with priority tiers."""

    def __init__(self) -> None:
        self._stride: dict[str, float] = {}
        self._priority: dict[str, int] = {}
        self._pass: dict[str, float] = {}
        self._served: dict[str, int] = {}
        # Global virtual time: the highest pass any served tenant held
        # at serve time. Monotone; rejoining tenants are clamped up to
        # it (one cheap serve, then they compete at the current time).
        self._vtime = 0.0

    def register(self, name: str, weight: float, priority: int = 0) -> None:
        """Add (or retune) a tenant. Re-registering keeps its pass."""
        if weight <= 0:
            raise ValueError("weight must be positive")
        self._stride[name] = _STRIDE_K / weight
        self._priority[name] = priority
        self._pass.setdefault(name, 0.0)
        self._served.setdefault(name, 0)

    def unregister(self, name: str) -> None:
        for table in (self._stride, self._priority, self._pass, self._served):
            table.pop(name, None)  # type: ignore[attr-defined]

    def select(self, eligible: Iterable[str]) -> str | None:
        """The tenant to serve next, among ``eligible`` names.

        Highest priority tier first; smallest pass within the tier;
        name as the final tie-break (total order → determinism).
        Unknown names are ignored. Does not advance any pass — pair
        with :meth:`charge` when the selected tenant is actually
        served.
        """
        best: tuple[int, float, str] | None = None
        for name in eligible:
            if name not in self._stride:
                continue
            key = (-self._priority[name], self._pass[name], name)
            if best is None or key < best:
                best = key
        return best[2] if best is not None else None

    def charge(self, name: str) -> None:
        """Record one unit of service: advance the tenant's pass.

        The pass is first clamped up to the global virtual time — the
        no-banked-credit rule (see module docstring) — so a tenant
        idle for a long stretch gets at most one cheap serve before it
        competes at the current time.
        """
        self._vtime = max(self._vtime, self._pass[name])
        self._pass[name] = self._vtime + self._stride[name]
        self._served[name] += 1

    @property
    def served(self) -> dict[str, int]:
        """Total serves per tenant (what the convergence tests check)."""
        return dict(self._served)
