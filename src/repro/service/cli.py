"""``repro-service``: drive the multi-tenant WaaS layer from the shell.

One subcommand today:

* ``repro-service bench`` — run a load-generator scenario (N tenants ×
  M workflows each, arriving at a per-tenant rate on the virtual
  clock) against a simulated platform and print the sustained
  throughput and per-tenant SLO table; ``--json`` saves the full
  results document (the same shape ``bench_service_load.py`` folds
  into ``BENCH_report.json``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.service.loadgen import LoadSpec, run_load

__all__ = ["main"]


def _spec_from_args(args: argparse.Namespace) -> LoadSpec:
    weights = tuple(float(w) for w in args.weights.split(",")) if args.weights else (1.0,)
    return LoadSpec(
        tenants=args.tenants,
        workflows_per_tenant=args.workflows,
        jobs_per_workflow=args.jobs,
        workflows_per_minute=args.rate,
        tenant_weights=weights,
        max_running_jobs=args.max_running_jobs,
        max_active_workflows=args.max_active_workflows,
        require_software_prob=args.require_software,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-service",
        description="Multi-tenant Workflow-as-a-Service front-end.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    bench = sub.add_parser(
        "bench", help="run a multi-tenant load scenario (simulated)"
    )
    bench.add_argument("--tenants", type=int, default=8)
    bench.add_argument("--workflows", type=int, default=4,
                       help="workflows per tenant")
    bench.add_argument("--jobs", type=int, default=50,
                       help="jobs per workflow")
    bench.add_argument("--rate", type=float, default=2.0,
                       help="per-tenant arrival rate, workflows/min "
                            "(virtual time)")
    bench.add_argument("--weights", default=None,
                       help="comma-separated fair-share weights, cycled "
                            "over tenants (default: equal)")
    bench.add_argument("--max-running-jobs", type=int, default=None,
                       help="per-tenant concurrent-job quota")
    bench.add_argument("--max-active-workflows", type=int, default=None,
                       help="per-tenant active-workflow quota")
    bench.add_argument("--require-software", type=float, default=0.0,
                       metavar="PROB",
                       help="fraction of workflows whose jobs carry "
                            "Sandhills-style software requirements")
    bench.add_argument("--backend", choices=("cluster", "grid"),
                       default="cluster")
    bench.add_argument("--matchmaker", choices=("indexed", "linear"),
                       default=None,
                       help="grid matchmaking strategy override")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--json", dest="json_out", default=None,
                       help="save the full results document here")
    bench.add_argument("--quiet", action="store_true")

    args = parser.parse_args(argv)
    try:
        spec = _spec_from_args(args)
    except ValueError as exc:
        print(f"repro-service: {exc}", file=sys.stderr)
        return 2
    result = run_load(
        spec,
        backend=args.backend,
        seed=args.seed,
        matchmaker=args.matchmaker,
    )
    if args.json_out:
        from repro.util.iolib import atomic_write

        atomic_write(
            Path(args.json_out), json.dumps(result, indent=2, sort_keys=True)
        )
    if not args.quiet:
        print(
            f"{args.tenants} tenant(s) x {args.workflows} workflow(s) x "
            f"{args.jobs} job(s) on {args.backend}: "
            f"{result['workflows_completed']} workflows in "
            f"{float(result['makespan_s']):,.0f} virtual seconds "  # type: ignore[arg-type]
            f"({float(result['workflows_per_minute_sustained']):.2f}/min sustained)"  # type: ignore[arg-type]
        )
        print()
        print("| tenant | weight | done | p95 turnaround (s) "
              "| p95 queue wait (s) | busy (s) |")
        print("|---|---:|---:|---:|---:|---:|")
        slo = result["slo"]
        assert isinstance(slo, dict)
        for tenant in sorted(slo):
            row = slo[tenant]
            account = row["account"]
            print(
                f"| {tenant} | {row['weight']:g} "
                f"| {account['workflows_completed']:.0f} "
                f"| {row['turnaround_s']['p95']:,.0f} "
                f"| {row['queue_wait_s']['p95']:,.0f} "
                f"| {account['busy_seconds']:,.0f} |"
            )
        matchmaker = result.get("matchmaker")
        if matchmaker:
            assert isinstance(matchmaker, dict)
            print()
            print(
                f"matchmaker {matchmaker['strategy']}: "
                f"{matchmaker['finds']} finds, "
                f"{matchmaker['ads_scanned']} ads scanned, "
                f"{matchmaker['bucket_probes']} bucket probes, "
                f"{matchmaker['linear_fallbacks']} linear fallbacks"
            )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
