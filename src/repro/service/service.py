"""The Workflow-as-a-Service front-end.

One :class:`WorkflowService` owns one shared
:class:`~repro.dagman.scheduler.ExecutionEnvironment` (a simulated
platform, usually) and multiplexes many tenant workflows onto it:

* :meth:`WorkflowService.submit` runs **admission control** — the
  tenant must exist, its ``max_active_workflows`` quota must have
  headroom, and every distinct requirements expression in the DAG must
  be satisfiable by some modeled pool (the PR 6 feasibility preflight,
  :func:`repro.lint.feasibility.never_matchable`), so a workflow that
  could only idle to its unmatched timeout is refused up front;
* each admitted workflow gets its own
  :class:`~repro.dagman.scheduler.DagmanScheduler` driving a private
  **gate**: an ``ExecutionEnvironment`` facade whose ``submit`` parks
  the job in the service's central queue instead of reaching the
  platform;
* the **fair-share pump** releases parked jobs to the platform
  whenever slots free up, picking the next tenant by stride scheduling
  (weights + strict priority tiers, :mod:`repro.service.fairshare`)
  among tenants with parked work and ``max_running_jobs`` headroom —
  so the *platform's* FIFO queue never holds more than the service
  released, and cross-tenant ordering is the service's decision, not
  the platform's;
* every workflow runs against a private event bus whose stream is
  re-emitted onto the service bus with ``tenant``/``workflow`` merged
  into ``detail`` — one tagged timeline for all tenants, feeding
  :func:`repro.observe.metrics.instrument` and ``repro-report``.
  Platform-side events (match/exec/finish) belong to the shared
  environment and are not tagged; the scheduler-side stream (submit,
  state changes, retries, workflow start/end) plus the ``service.*``
  kinds carry the tenant dimension.

Turnaround and queue-wait are measured on the platform clock:
*turnaround* from submission to the workflow's terminal event,
*queue wait* from submission to the first job released to the
platform. Per-tenant distributions are kept in
:class:`~repro.observe.metrics.Histogram` and exported by
:meth:`WorkflowService.slo_report` (p95s are the service's SLO
numbers).
"""

from __future__ import annotations

import dataclasses
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Mapping

from repro.dagman.dag import Dag, DagJob
from repro.dagman.events import JobAttempt
from repro.dagman.scheduler import (
    DagmanResult,
    DagmanScheduler,
    ExecutionEnvironment,
)
from repro.lint.feasibility import (
    SitePool,
    closest_missing_capability,
    default_pools,
    never_matchable,
)
from repro.observe.bus import EventBus
from repro.observe.events import EventKind, RunEvent
from repro.observe.metrics import Histogram
from repro.service.fairshare import StrideScheduler
from repro.service.tenants import TenantAccount, TenantConfig

__all__ = [
    "ServiceConfig",
    "WorkflowState",
    "WorkflowHandle",
    "WorkflowService",
]


@dataclass(frozen=True)
class ServiceConfig:
    """Service-wide knobs.

    ``max_in_flight`` caps jobs released to the platform at once;
    ``None`` takes the environment's ``capacity`` (every simulated
    platform advertises one) — releasing more than the pool can run
    would just rebuild the platform-side queue the service exists to
    own. ``admission_control`` can be switched off for experiments
    that want infeasible work to hit the platform's unmatched-timeout
    path instead.
    """

    max_in_flight: int | None = None
    admission_control: bool = True

    def __post_init__(self) -> None:
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1 (or None)")


class WorkflowState(Enum):
    """Service-side lifecycle of one submitted workflow."""

    REJECTED = "rejected"
    RUNNING = "running"
    DONE = "done"


@dataclass
class WorkflowHandle:
    """What a tenant holds after ``submit``."""

    tenant: str
    name: str
    dag: Dag
    state: WorkflowState
    submit_time: float
    #: why admission refused it (REJECTED only)
    reject_reason: str | None = None
    #: platform time of the first job released (queue-wait mark)
    first_dispatch_time: float | None = None
    #: platform time the workflow turned terminal
    done_time: float | None = None
    #: final outcome (DONE only)
    result: DagmanResult | None = None
    scheduler: DagmanScheduler | None = field(default=None, repr=False)

    @property
    def turnaround_s(self) -> float | None:
        if self.done_time is None:
            return None
        return self.done_time - self.submit_time

    @property
    def queue_wait_s(self) -> float | None:
        if self.first_dispatch_time is None:
            return None
        return self.first_dispatch_time - self.submit_time


@dataclass
class _ParkedJob:
    """One job attempt waiting in the service's fair-share queue."""

    handle: WorkflowHandle
    job: DagJob
    on_complete: Callable[[JobAttempt], None]
    attempt: int


class _Gate:
    """Per-workflow ``ExecutionEnvironment`` facade.

    DAGMan drives it exactly like a platform; ``submit`` parks the job
    with the service instead. Time and deferral pass straight through
    to the shared environment, so retry delays and clocks are the
    platform's.
    """

    def __init__(self, service: "WorkflowService", handle: WorkflowHandle):
        self._service = service
        self._handle = handle

    @property
    def now(self) -> float:
        return self._service.environment.now

    def submit(
        self,
        job: DagJob,
        on_complete: Callable[[JobAttempt], None],
        *,
        attempt: int = 1,
    ) -> None:
        self._service._park(self._handle, job, on_complete, attempt)

    def run_until_complete(self) -> None:  # pragma: no cover - unused
        self._service.environment.run_until_complete()

    def call_later(self, delay_s: float, fn: Callable[[], None]) -> None:
        call_later = getattr(self._service.environment, "call_later", None)
        if call_later is None:
            fn()  # environment cannot park work; degrade like DAGMan does
        else:
            call_later(delay_s, fn)


class WorkflowService:
    """Multi-tenant submission front-end over one shared platform."""

    def __init__(
        self,
        environment: ExecutionEnvironment,
        *,
        config: ServiceConfig = ServiceConfig(),
        bus: EventBus | None = None,
        pools: Mapping[str, SitePool] | None = None,
    ) -> None:
        """``bus`` receives the tagged multi-tenant stream (pass the
        same bus to ``instrument`` for tenant-labelled metrics);
        ``pools`` overrides the feasibility descriptors admission
        checks against (defaults to the modeled platforms')."""
        self.environment = environment
        self.config = config
        self.bus = bus if bus is not None else EventBus()
        self._pools: Mapping[str, SitePool] = (
            pools if pools is not None else default_pools()
        )
        max_in_flight = config.max_in_flight
        if max_in_flight is None:
            capacity = getattr(environment, "capacity", None)
            if capacity is None:
                raise ValueError(
                    "environment advertises no capacity; set "
                    "ServiceConfig(max_in_flight=...) explicitly"
                )
            max_in_flight = int(capacity)
        self._max_in_flight = max_in_flight
        self._in_flight = 0
        self._tenants: dict[str, TenantConfig] = {}
        self._accounts: dict[str, TenantAccount] = {}
        self._fairshare = StrideScheduler()
        #: per-tenant FIFO of parked jobs (FIFO preserves each
        #: workflow's DAGMan priority order across the gate)
        self._parked: dict[str, deque[_ParkedJob]] = {}
        self._handles: list[WorkflowHandle] = []
        self._workflow_seq = 0
        self._turnaround: dict[str, Histogram] = {}
        self._queue_wait: dict[str, Histogram] = {}
        #: (tenant, workflow) pairs seeded by ``restore_completions`` —
        #: the dedup set that makes journal replay exactly-once.
        self._restored: set[tuple[str, str]] = set()
        self.jobs_released = 0

    # -- tenants ---------------------------------------------------------

    def add_tenant(self, tenant: TenantConfig) -> None:
        if tenant.name in self._tenants:
            raise ValueError(f"duplicate tenant: {tenant.name}")
        self._tenants[tenant.name] = tenant
        self._accounts[tenant.name] = TenantAccount()
        self._fairshare.register(
            tenant.name, tenant.weight, tenant.priority
        )
        self._parked[tenant.name] = deque()
        self._turnaround[tenant.name] = Histogram()
        self._queue_wait[tenant.name] = Histogram()

    def account(self, tenant: str) -> TenantAccount:
        return self._accounts[tenant]

    @property
    def tenants(self) -> tuple[str, ...]:
        return tuple(self._tenants)

    @property
    def in_flight(self) -> int:
        """Jobs currently released to the platform."""
        return self._in_flight

    @property
    def parked_jobs(self) -> int:
        """Jobs waiting in the fair-share queue."""
        return sum(len(q) for q in self._parked.values())

    # -- submission ------------------------------------------------------

    def submit(
        self,
        tenant: str,
        dag: Dag,
        *,
        name: str | None = None,
        max_jobs: int | None = None,
        default_retries: int | None = None,
    ) -> WorkflowHandle:
        """Submit one DAG on behalf of ``tenant``.

        Returns a handle whose ``state`` is ``REJECTED`` (with a
        ``reject_reason``) when admission control refuses it, else
        ``RUNNING`` — drive the environment (``run()``) and the handle
        flips to ``DONE`` with a :class:`DagmanResult`.

        ``max_jobs``/``default_retries`` pass through to the
        workflow's private :class:`DagmanScheduler`.
        """
        now = self.environment.now
        self._workflow_seq += 1
        wf_name = name or f"{tenant}-wf{self._workflow_seq}"
        handle = WorkflowHandle(
            tenant=tenant,
            name=wf_name,
            dag=dag,
            state=WorkflowState.RUNNING,
            submit_time=now,
        )
        self._handles.append(handle)
        self._emit_service(
            EventKind.SERVICE_SUBMIT,
            tenant=tenant,
            workflow=wf_name,
            extra={"jobs": len(dag.jobs)},
        )
        account = self._accounts.get(tenant)
        if account is not None:
            account.workflows_submitted += 1
        reason = self._admission_reason(tenant, dag)
        if reason is not None:
            handle.state = WorkflowState.REJECTED
            handle.reject_reason = reason
            if account is not None:
                account.workflows_rejected += 1
            self._emit_service(
                EventKind.SERVICE_REJECT,
                tenant=tenant,
                workflow=wf_name,
                extra={"reason": reason},
            )
            return handle
        assert account is not None  # unknown tenants were rejected above
        account.workflows_admitted += 1
        account.active_workflows += 1
        self._emit_service(
            EventKind.SERVICE_ADMIT,
            tenant=tenant,
            workflow=wf_name,
            extra={"jobs": len(dag.jobs)},
        )
        private_bus = self._tagged_bus(tenant, wf_name)
        scheduler = DagmanScheduler(
            dag,
            _Gate(self, handle),
            bus=private_bus,
            max_jobs=max_jobs,
            default_retries=default_retries,
        )
        handle.scheduler = scheduler
        scheduler.start()
        # A DAG whose every node was pre-done (rescue resubmission of a
        # finished run) is terminal immediately — no completion callback
        # will ever fire for it.
        self._maybe_finish(handle)
        return handle

    def _admission_reason(self, tenant: str, dag: Dag) -> str | None:
        if tenant not in self._tenants:
            return f"unknown tenant {tenant!r}"
        if not self.config.admission_control:
            return None
        quota = self._tenants[tenant].quota
        account = self._accounts[tenant]
        if (
            quota.max_active_workflows is not None
            and account.active_workflows >= quota.max_active_workflows
        ):
            return (
                f"tenant {tenant!r} at max_active_workflows="
                f"{quota.max_active_workflows}"
            )
        # Feasibility preflight: one verdict per distinct expression
        # (PR 6's RES001, scoped to what this service's pools offer).
        checked: set[str] = set()
        for job_name in sorted(dag.jobs):
            req = dag.jobs[job_name].requirements
            if not req or req in checked:
                continue
            checked.add(req)
            if never_matchable(req, self._pools):
                missing = closest_missing_capability(req, self._pools)
                hint = (
                    f"; closest missing capability: {missing}"
                    if missing is not None
                    else ""
                )
                return (
                    f"requirements {req!r} (job {job_name!r}) match no "
                    f"machine in any pool{hint}"
                )
        return None

    # -- event plumbing --------------------------------------------------

    def _tagged_bus(self, tenant: str, workflow: str) -> EventBus:
        """A private bus whose whole stream is re-emitted onto the
        service bus with tenant/workflow merged into ``detail``."""
        private = EventBus()
        service_bus = self.bus
        tags = {"tenant": tenant, "workflow": workflow}

        def forward(event: RunEvent) -> None:
            if not service_bus.active:
                return
            service_bus.emit(
                dataclasses.replace(event, detail={**event.detail, **tags})
            )

        private.subscribe(forward)
        return private

    def _emit_service(
        self,
        kind: EventKind,
        *,
        tenant: str,
        workflow: str,
        extra: dict[str, object] | None = None,
    ) -> None:
        bus = self.bus
        if not bus.active:
            return
        detail: dict[str, object] = {"tenant": tenant, "workflow": workflow}
        if extra:
            detail.update(extra)
        bus.emit(RunEvent(kind, self.environment.now, detail=detail))

    # -- the fair-share pump ---------------------------------------------

    def _park(
        self,
        handle: WorkflowHandle,
        job: DagJob,
        on_complete: Callable[[JobAttempt], None],
        attempt: int,
    ) -> None:
        self._parked[handle.tenant].append(
            _ParkedJob(handle, job, on_complete, attempt)
        )
        self._pump()

    def _eligible(self) -> list[str]:
        out = []
        for name, queue in self._parked.items():
            if not queue:
                continue
            quota = self._tenants[name].quota
            if (
                quota.max_running_jobs is not None
                and self._accounts[name].running_jobs
                >= quota.max_running_jobs
            ):
                continue
            out.append(name)
        return out

    def _pump(self) -> None:
        """Release parked jobs while the platform has headroom."""
        while self._in_flight < self._max_in_flight:
            tenant = self._fairshare.select(self._eligible())
            if tenant is None:
                return
            parked = self._parked[tenant].popleft()
            self._fairshare.charge(tenant)
            account = self._accounts[tenant]
            account.running_jobs += 1
            account.jobs_dispatched += 1
            self._in_flight += 1
            self.jobs_released += 1
            handle = parked.handle
            if handle.first_dispatch_time is None:
                handle.first_dispatch_time = self.environment.now
                self._queue_wait[tenant].observe(
                    handle.first_dispatch_time - handle.submit_time
                )
            self.environment.submit(
                parked.job,
                self._completion_listener(parked),
                attempt=parked.attempt,
            )

    def _completion_listener(
        self, parked: _ParkedJob
    ) -> Callable[[JobAttempt], None]:
        def on_complete(record: JobAttempt) -> None:
            handle = parked.handle
            account = self._accounts[handle.tenant]
            # Free the slot before DAGMan reacts: a retry or a newly
            # ready child submitted inside the callback can be released
            # immediately into the slot this completion vacated.
            self._in_flight -= 1
            account.running_jobs -= 1
            account.jobs_completed += 1
            account.busy_seconds += record.exec_end - record.setup_start
            parked.on_complete(record)
            self._maybe_finish(handle)
            self._pump()

        return on_complete

    def _maybe_finish(self, handle: WorkflowHandle) -> None:
        scheduler = handle.scheduler
        if (
            scheduler is None
            or handle.state is not WorkflowState.RUNNING
            or scheduler.unfinished > 0
        ):
            return
        handle.state = WorkflowState.DONE
        handle.done_time = self.environment.now
        handle.result = scheduler.finish()  # emits workflow.end (tagged)
        account = self._accounts[handle.tenant]
        account.active_workflows -= 1
        account.workflows_completed += 1
        if handle.result.success:
            account.workflows_succeeded += 1
        turnaround = handle.done_time - handle.submit_time
        self._turnaround[handle.tenant].observe(turnaround)
        # A live completion claims its dedup key too: replaying a
        # journal that also recorded it stays exactly-once.
        self._restored.add((handle.tenant, handle.name))
        self._emit_service(
            EventKind.SERVICE_WORKFLOW_DONE,
            tenant=handle.tenant,
            workflow=handle.name,
            extra={
                "succeeded": handle.result.success,
                "turnaround_s": turnaround,
                "queue_wait_s": handle.queue_wait_s or 0.0,
            },
        )

    # -- durability ------------------------------------------------------

    def restore_completions(
        self, records: list[dict[str, object]]
    ) -> int:
        """Seed SLO accounting from journaled ``service.workflow_done``
        records (:attr:`~repro.resilience.journal.RecoveredState.service_completions`).

        A crash between a workflow's terminal event and the next
        snapshot must not lose — or, replayed twice, double-count — its
        turnaround sample. Each (tenant, workflow) pair is folded into
        the histograms and account counters exactly once, no matter how
        many times the journal is replayed into this service; records
        for tenants this service doesn't know are skipped. Returns how
        many records were newly applied.
        """
        applied = 0
        for record in records:
            tenant = str(record.get("tenant") or "")
            workflow = str(record.get("workflow") or "")
            if not tenant or not workflow or tenant not in self._tenants:
                continue
            key = (tenant, workflow)
            if key in self._restored:
                continue
            self._restored.add(key)
            applied += 1
            account = self._accounts[tenant]
            account.workflows_completed += 1
            if bool(record.get("succeeded")):
                account.workflows_succeeded += 1
            turnaround = record.get("turnaround_s")
            if isinstance(turnaround, (int, float)):
                self._turnaround[tenant].observe(float(turnaround))
            queue_wait = record.get("queue_wait_s")
            if isinstance(queue_wait, (int, float)):
                self._queue_wait[tenant].observe(float(queue_wait))
        return applied

    # -- driving and reporting -------------------------------------------

    def run(self) -> list[WorkflowHandle]:
        """Drive the shared environment until every admitted workflow
        is terminal; returns all handles (rejected ones included)."""
        self.environment.run_until_complete()
        unfinished = [
            h for h in self._handles if h.state is WorkflowState.RUNNING
        ]
        if unfinished:  # pragma: no cover - defensive
            names = ", ".join(h.name for h in unfinished[:5])
            raise RuntimeError(
                f"environment drained with {len(unfinished)} workflow(s) "
                f"still running ({names}, …)"
            )
        return list(self._handles)

    @property
    def handles(self) -> list[WorkflowHandle]:
        return list(self._handles)

    def slo_report(self) -> dict[str, dict[str, object]]:
        """Per-tenant SLO + accounting snapshot (JSON-able).

        ``turnaround_s``/``queue_wait_s`` are histogram summaries —
        their ``p95`` entries are the service's SLO numbers.
        """
        report: dict[str, dict[str, object]] = {}
        for name in sorted(self._tenants):
            report[name] = {
                "weight": self._tenants[name].weight,
                "priority": self._tenants[name].priority,
                "account": self._accounts[name].snapshot(),
                "turnaround_s": self._turnaround[name].summary(),
                "queue_wait_s": self._queue_wait[name].summary(),
            }
        return report
