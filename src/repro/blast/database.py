"""Indexed protein database for translated search.

The database holds the subject protein sequences (the "closely related
protein datasets" the paper aligns wheat transcripts against) together
with a word index used by the seeding stage. Words are stored as encoded
integer triples in a dense NumPy table so that neighborhood scoring in
:mod:`repro.blast.seeds` is a vectorised matrix lookup rather than a
per-word Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.bio.fasta import FastaRecord, read_fasta
from repro.bio.matrices import ScoringMatrix, blosum62
from repro.bio.seq import is_protein

__all__ = ["ProteinDatabase"]


@dataclass
class ProteinDatabase:
    """A searchable collection of protein sequences.

    Parameters
    ----------
    records:
        The subject proteins. Ids must be unique.
    word_size:
        Seed word length; BLASTX's default of 3 is also ours.
    matrix:
        Scoring matrix used to encode sequences (BLOSUM62 by default).
    """

    records: Sequence[FastaRecord]
    word_size: int = 3
    matrix: ScoringMatrix = field(default_factory=blosum62)

    def __post_init__(self) -> None:
        if self.word_size < 2:
            raise ValueError("word_size must be >= 2")
        ids = [r.id for r in self.records]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate protein ids in database")
        for r in self.records:
            if not is_protein(r.seq):
                raise ValueError(f"record {r.id!r} is not a protein sequence")
        self._by_id = {r.id: r for r in self.records}
        self._build_index()

    def _build_index(self) -> None:
        """Collect every length-``word_size`` window of every subject.

        Produces three parallel arrays:

        * ``word_codes`` — ``(W, word_size)`` distinct encoded words,
        * ``word_occurrences`` — for each distinct word, the list of
          ``(subject_index, offset)`` pairs where it occurs.
        """
        k = self.word_size
        occurrences: dict[bytes, list[tuple[int, int]]] = {}
        for subject_idx, record in enumerate(self.records):
            codes = self.matrix.encode(record.seq)
            for offset in range(len(codes) - k + 1):
                word = codes[offset : offset + k].tobytes()
                occurrences.setdefault(word, []).append((subject_idx, offset))
        words = list(occurrences)
        if words:
            self.word_codes = np.frombuffer(
                b"".join(words), dtype=np.int8
            ).reshape(len(words), k)
        else:
            self.word_codes = np.empty((0, k), dtype=np.int8)
        self.word_occurrences: list[list[tuple[int, int]]] = [
            occurrences[w] for w in words
        ]

    @classmethod
    def from_fasta(cls, path: str | Path, **kwargs) -> "ProteinDatabase":
        """Build a database from a protein FASTA file."""
        return cls(records=list(read_fasta(path)), **kwargs)

    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, subject_id: str) -> FastaRecord:
        return self._by_id[subject_id]

    def __contains__(self, subject_id: str) -> bool:
        return subject_id in self._by_id

    @property
    def total_residues(self) -> int:
        """Sum of subject lengths (the BLAST "database length" n)."""
        return sum(len(r) for r in self.records)

    @property
    def distinct_words(self) -> int:
        """Number of distinct indexed words."""
        return len(self.word_occurrences)

    def subject(self, index: int) -> FastaRecord:
        """Subject record by integer index (as stored in occurrences)."""
        return self.records[index]

    def encoded_subjects(self) -> Iterable[np.ndarray]:
        """Encoded code arrays for all subjects, in index order."""
        for record in self.records:
            yield self.matrix.encode(record.seq)
