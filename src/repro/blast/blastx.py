"""The BLASTX driver: six-frame translated search of DNA queries
against a protein database.

Pipeline per query and frame:

1. translate the frame (:func:`repro.bio.seq.six_frame_translations`),
2. neighborhood-word seeding (:mod:`repro.blast.seeds`),
3. two-hit confirmation, then ungapped X-drop extension, with a
   per-diagonal cache so one HSP is not rediscovered from every seed,
4. gapped Smith–Waterman extension around qualifying ungapped HSPs,
5. e-value assignment (Karlin–Altschul, gapped parameters) and
   per-subject culling of redundant HSPs,
6. coordinate mapping back to DNA space (minus-frame hits get
   ``qstart > qend``, as NCBI BLASTX reports them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.bio.alignment import AlignmentResult
from repro.bio.fasta import FastaRecord
from repro.bio.seq import six_frame_translations
from repro.bio.stats import GAPPED_BLOSUM62, KarlinAltschulParams, bit_score, evalue
from repro.blast.database import ProteinDatabase
from repro.blast.extend import gapped_extend, ungapped_extend
from repro.blast.seeds import find_seed_hits, two_hit_filter
from repro.blast.tabular import TabularHit

__all__ = ["BlastXParams", "blastx", "blastx_many"]


@dataclass(frozen=True)
class BlastXParams:
    """Tunables for the translated search.

    Defaults follow NCBI blastx where a direct analogue exists
    (word size 3, T=11, X-drop 16); ``gap`` is a linear-gap
    approximation of the 11/1 affine default, and ``evalue_cutoff``
    matches the 1e-5 blast2cap3 runs typically use.
    """

    threshold: int = 11
    x_drop: int = 16
    gap: int = -11
    two_hit_window: int = 40
    two_hit: bool = True
    ungapped_trigger: int = 30
    window_pad: int = 50
    evalue_cutoff: float = 1e-5
    max_hits_per_query: int = 250
    ka_params: KarlinAltschulParams = GAPPED_BLOSUM62
    #: Use affine (Gotoh) gapped extension — ``gap`` becomes the open
    #: penalty, ``gap_extend`` the per-residue extension, matching
    #: NCBI blastx's 11/1 scheme.
    affine: bool = False
    gap_extend: int = -1
    #: SEG-style masking of low-complexity translated query regions
    #: (suppresses poly-A / simple-repeat seed floods).
    mask_query: bool = False

    def __post_init__(self) -> None:
        if self.gap >= 0:
            raise ValueError("gap must be negative")
        if self.evalue_cutoff <= 0:
            raise ValueError("evalue_cutoff must be positive")


@dataclass
class _Candidate:
    """A gapped alignment plus the frame it came from."""

    frame: int
    subject_index: int
    alignment: AlignmentResult
    evalue: float = field(default=0.0)


def _frame_to_dna(
    frame: int, dna_len: int, p_start: int, p_end: int
) -> tuple[int, int]:
    """Map a half-open protein span in ``frame`` to 1-based inclusive
    DNA coordinates on the forward strand (BLASTX convention)."""
    if frame > 0:
        offset = frame - 1
        qstart = offset + 3 * p_start + 1
        qend = offset + 3 * p_end
    else:
        offset = -frame - 1
        # Position o (0-based) on the reverse complement maps to
        # forward-strand coordinate dna_len - o (1-based).
        first_rc = offset + 3 * p_start
        last_rc = offset + 3 * p_end - 1
        qstart = dna_len - first_rc
        qend = dna_len - last_rc
    return qstart, qend


def _alignment_counts(aln: AlignmentResult) -> tuple[int, int, int]:
    """(matches, mismatches, gap openings) of a gapped alignment."""
    matches = mismatches = gapopen = 0
    in_gap = False
    for x, y in zip(aln.aligned_a, aln.aligned_b):
        if x == "-" or y == "-":
            if not in_gap:
                gapopen += 1
                in_gap = True
            continue
        in_gap = False
        if x == y:
            matches += 1
        else:
            mismatches += 1
    return matches, mismatches, gapopen


def _cull_redundant(candidates: list[_Candidate]) -> list[_Candidate]:
    """Per subject, drop HSPs whose query span mostly overlaps a better
    scoring HSP's (the standard dominance culling)."""
    by_subject: dict[int, list[_Candidate]] = {}
    for cand in candidates:
        by_subject.setdefault(cand.subject_index, []).append(cand)
    kept: list[_Candidate] = []
    for group in by_subject.values():
        group.sort(key=lambda c: -c.alignment.score)
        accepted: list[_Candidate] = []
        for cand in group:
            a = cand.alignment
            redundant = False
            for better in accepted:
                b = better.alignment
                if cand.frame != better.frame:
                    continue
                lo = max(a.a_start, b.a_start)
                hi = min(a.a_end, b.a_end)
                span = a.a_end - a.a_start
                if span > 0 and (hi - lo) > 0.5 * span:
                    redundant = True
                    break
            if not redundant:
                accepted.append(cand)
        kept.extend(accepted)
    return kept


def blastx(
    query: FastaRecord,
    database: ProteinDatabase,
    params: BlastXParams = BlastXParams(),
) -> list[TabularHit]:
    """Search one DNA query against the database; returns tabular hits
    sorted by ascending e-value (ties broken by descending bit score)."""
    matrix = database.matrix
    sub = matrix.matrix
    candidates: list[_Candidate] = []

    encoded_subjects = list(database.encoded_subjects())
    subject_seqs = [r.seq for r in database.records]

    for frame, protein in six_frame_translations(query.seq):
        if len(protein) < database.word_size:
            continue
        if params.mask_query:
            from repro.blast.filter import PROTEIN_MASK, mask_low_complexity

            protein = mask_low_complexity(protein, PROTEIN_MASK)
        query_codes = matrix.encode(protein)
        hits = find_seed_hits(
            query_codes, database, threshold=params.threshold
        )
        if params.two_hit:
            anchors = two_hit_filter(
                hits,
                word_size=database.word_size,
                window=params.two_hit_window,
            )
        else:
            anchors = list(hits)

        # Per-diagonal extension cache: skip anchors inside a span this
        # diagonal has already extended through.
        extended_until: dict[tuple[int, int], int] = {}
        for anchor in anchors:
            diag_key = (anchor.subject_index, anchor.diagonal)
            if anchor.query_offset < extended_until.get(diag_key, -1):
                continue
            hsp = ungapped_extend(
                query_codes,
                encoded_subjects[anchor.subject_index],
                anchor.query_offset,
                anchor.subject_offset,
                sub,
                x_drop=params.x_drop,
            )
            extended_until[diag_key] = hsp.q_end
            if hsp.score < params.ungapped_trigger:
                continue
            aln = gapped_extend(
                protein,
                subject_seqs[anchor.subject_index],
                hsp,
                matrix,
                gap=params.gap,
                window_pad=params.window_pad,
                affine=params.affine,
                gap_extend=params.gap_extend,
            )
            if aln.length == 0:
                continue
            candidates.append(_Candidate(frame, anchor.subject_index, aln))

    candidates = _cull_redundant(candidates)

    results: list[TabularHit] = []
    db_len = max(1, database.total_residues)
    # Query length in protein units for the statistics.
    m = max(1, len(query.seq) // 3)
    for cand in candidates:
        aln = cand.alignment
        e = evalue(
            aln.score,
            m,
            db_len,
            db_sequences=max(1, len(database)),
            params=params.ka_params,
        )
        if e > params.evalue_cutoff:
            continue
        matches, mismatches, gapopen = _alignment_counts(aln)
        qstart, qend = _frame_to_dna(
            cand.frame, len(query.seq), aln.a_start, aln.a_end
        )
        results.append(
            TabularHit(
                qseqid=query.id,
                sseqid=database.subject(cand.subject_index).id,
                pident=100.0 * matches / aln.length,
                length=aln.length,
                mismatch=mismatches,
                gapopen=gapopen,
                qstart=qstart,
                qend=qend,
                sstart=aln.b_start + 1,
                send=aln.b_end,
                evalue=e,
                bitscore=bit_score(aln.score, params.ka_params),
            )
        )

    results.sort(key=lambda h: (h.evalue, -h.bitscore))
    return results[: params.max_hits_per_query]


def blastx_many(
    queries: Iterable[FastaRecord] | Sequence[FastaRecord],
    database: ProteinDatabase,
    params: BlastXParams = BlastXParams(),
) -> Iterator[TabularHit]:
    """Search many queries, yielding hits grouped by query in input
    order — the layout blast2cap3 expects in ``alignments.out``."""
    for query in queries:
        yield from blastx(query, database, params)
