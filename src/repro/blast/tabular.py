"""BLAST tabular (``-outfmt 6``) records.

blast2cap3's second input, ``alignments.out`` in the paper (155 MB,
1,717,454 hits), is exactly this 12-column format::

    qseqid sseqid pident length mismatch gapopen qstart qend sstart send
    evalue bitscore

The reader streams, since real files are large; the writer renders
floats the way NCBI BLAST does (pident to 3 significant decimals,
e-values in scientific notation).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, TextIO

__all__ = ["TabularHit", "read_tabular", "write_tabular"]


@dataclass(frozen=True)
class TabularHit:
    """One alignment record in BLAST tabular convention.

    Coordinates are **1-based inclusive**, and for translated searches
    the query coordinates are in DNA space: a hit on a minus frame has
    ``qstart > qend``.
    """

    qseqid: str
    sseqid: str
    pident: float
    length: int
    mismatch: int
    gapopen: int
    qstart: int
    qend: int
    sstart: int
    send: int
    evalue: float
    bitscore: float

    def __post_init__(self) -> None:
        if not self.qseqid or not self.sseqid:
            raise ValueError("qseqid and sseqid must be non-empty")
        if self.length < 0 or self.mismatch < 0 or self.gapopen < 0:
            raise ValueError("length/mismatch/gapopen must be >= 0")
        if not 0.0 <= self.pident <= 100.0:
            raise ValueError(f"pident out of range: {self.pident}")
        if self.evalue < 0:
            raise ValueError("evalue must be >= 0")

    @property
    def is_minus_frame(self) -> bool:
        """True when the query aligned on the reverse strand."""
        return self.qstart > self.qend

    def format(self) -> str:
        """Render as one tab-separated line (no newline)."""
        return "\t".join(
            [
                self.qseqid,
                self.sseqid,
                f"{self.pident:.3f}",
                str(self.length),
                str(self.mismatch),
                str(self.gapopen),
                str(self.qstart),
                str(self.qend),
                str(self.sstart),
                str(self.send),
                _format_evalue(self.evalue),
                f"{self.bitscore:.1f}",
            ]
        )


def _format_evalue(e: float) -> str:
    if e == 0.0:
        return "0.0"
    if e >= 0.001:
        return f"{e:.3g}"
    return f"{e:.2e}"


def parse_line(line: str) -> TabularHit:
    """Parse one tabular line into a :class:`TabularHit`."""
    fields = line.rstrip("\n").split("\t")
    if len(fields) != 12:
        raise ValueError(
            f"expected 12 tab-separated fields, got {len(fields)}: {line!r}"
        )
    return TabularHit(
        qseqid=fields[0],
        sseqid=fields[1],
        pident=float(fields[2]),
        length=int(fields[3]),
        mismatch=int(fields[4]),
        gapopen=int(fields[5]),
        qstart=int(fields[6]),
        qend=int(fields[7]),
        sstart=int(fields[8]),
        send=int(fields[9]),
        evalue=float(fields[10]),
        bitscore=float(fields[11]),
    )


def read_tabular(source: str | Path | TextIO) -> Iterator[TabularHit]:
    """Stream hits from a tabular file; ``#`` comment lines are skipped."""
    if isinstance(source, (str, Path)):
        from repro.util.iolib import open_text_auto

        with open_text_auto(source) as handle:
            yield from read_tabular(handle)
        return
    for line in source:
        if not line.strip() or line.startswith("#"):
            continue
        yield parse_line(line)


def write_tabular(
    dest: str | Path | TextIO, hits: Iterable[TabularHit]
) -> int:
    """Write hits in tabular format; returns the count. Path writes are
    atomic and ``.gz`` paths are compressed."""
    if isinstance(dest, (str, Path)):
        from repro.util.iolib import atomic_open

        with atomic_open(dest) as handle:
            return write_tabular(handle, hits)
    count = 0
    for hit in hits:
        dest.write(hit.format() + "\n")
        count += 1
    return count
