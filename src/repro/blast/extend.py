"""HSP extension: ungapped X-drop, then banded-window gapped alignment.

Given a confirmed seed hit, BLAST extends it in two stages:

1. **Ungapped X-drop** — walk outward along the diagonal accumulating
   substitution scores, stopping when the running score falls more than
   ``x_drop`` below the best seen. The result is an ungapped HSP.
2. **Gapped extension** — if the ungapped HSP scores above a trigger,
   run a Smith–Waterman alignment on a window around it to allow indels.

Stage 2 reuses :func:`repro.bio.alignment.local_align` on a bounded
window, which keeps the DP cost proportional to the HSP size, not the
full sequence product.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bio.alignment import AlignmentResult, local_align
from repro.bio.matrices import ScoringMatrix

__all__ = ["UngappedHSP", "ungapped_extend", "gapped_extend"]


@dataclass(frozen=True)
class UngappedHSP:
    """An ungapped high-scoring segment pair (0-based half-open spans)."""

    q_start: int
    q_end: int
    s_start: int
    s_end: int
    score: int

    @property
    def length(self) -> int:
        return self.q_end - self.q_start

    def __post_init__(self) -> None:
        if self.q_end - self.q_start != self.s_end - self.s_start:
            raise ValueError("ungapped HSP spans must have equal length")


def ungapped_extend(
    query_codes: np.ndarray,
    subject_codes: np.ndarray,
    q_off: int,
    s_off: int,
    sub: np.ndarray,
    *,
    x_drop: int = 16,
) -> UngappedHSP:
    """X-drop extension of a word hit along its diagonal.

    ``(q_off, s_off)`` is any anchor position on the diagonal (BLAST uses
    the confirming hit of the two-hit pair). Extension proceeds right
    from the anchor and then left, each direction stopping when the
    running score drops ``x_drop`` below that direction's best.
    """
    lq, ls = len(query_codes), len(subject_codes)
    if not (0 <= q_off < lq and 0 <= s_off < ls):
        raise ValueError("anchor outside sequences")

    # Rightward: include the anchor column itself.
    best_right = 0
    run = 0
    right = 0  # exclusive extent beyond anchor
    i, j = q_off, s_off
    while i < lq and j < ls:
        run += int(sub[query_codes[i], subject_codes[j]])
        if run > best_right:
            best_right = run
            right = i - q_off + 1
        if run <= best_right - x_drop:
            break
        i += 1
        j += 1

    # Leftward from the column before the anchor.
    best_left = 0
    run = 0
    left = 0
    i, j = q_off - 1, s_off - 1
    while i >= 0 and j >= 0:
        run += int(sub[query_codes[i], subject_codes[j]])
        if run > best_left:
            best_left = run
            left = q_off - i
        if run <= best_left - x_drop:
            break
        i -= 1
        j -= 1

    return UngappedHSP(
        q_start=q_off - left,
        q_end=q_off + right,
        s_start=s_off - left,
        s_end=s_off + right,
        score=best_left + best_right,
    )


def gapped_extend(
    query: str,
    subject: str,
    hsp: UngappedHSP,
    matrix: ScoringMatrix,
    *,
    gap: int = -11,
    window_pad: int = 50,
    affine: bool = False,
    gap_extend: int = -1,
) -> AlignmentResult:
    """Gapped Smith–Waterman around an ungapped HSP.

    The DP window extends ``window_pad`` residues beyond the HSP on each
    side (clamped to the sequences), which bounds cost while letting the
    alignment grow past the ungapped boundaries. The returned result's
    coordinates are translated back into full-sequence positions.

    With ``affine=True`` the window alignment uses the Gotoh kernel:
    ``gap`` becomes the open penalty and ``gap_extend`` the per-residue
    extension (NCBI blastx's default scheme is 11/1).
    """
    q_lo = max(0, hsp.q_start - window_pad)
    q_hi = min(len(query), hsp.q_end + window_pad)
    s_lo = max(0, hsp.s_start - window_pad)
    s_hi = min(len(subject), hsp.s_end + window_pad)

    if affine:
        from repro.bio.affine import affine_local

        local = affine_local(
            query[q_lo:q_hi], subject[s_lo:s_hi], matrix=matrix,
            gap_open=gap, gap_extend=gap_extend,
        )
    else:
        local = local_align(
            query[q_lo:q_hi], subject[s_lo:s_hi], matrix=matrix, gap=gap
        )
    return AlignmentResult(
        mode=local.mode,
        score=local.score,
        a_start=local.a_start + q_lo,
        a_end=local.a_end + q_lo,
        b_start=local.b_start + s_lo,
        b_end=local.b_end + s_lo,
        aligned_a=local.aligned_a,
        aligned_b=local.aligned_b,
    )
