"""A BLASTX-like translated protein search engine.

blast2cap3 consumes the *tabular output* of BLASTX (transcripts aligned
against a close-relative protein database). This package implements the
same algorithmic family from scratch:

* :mod:`repro.blast.database` — an indexed protein database,
* :mod:`repro.blast.seeds` — neighborhood-word seeding (two-hit heuristic),
* :mod:`repro.blast.extend` — ungapped X-drop and gapped extension,
* :mod:`repro.blast.blastx` — the six-frame translated search driver,
* :mod:`repro.blast.tabular` — BLAST ``-outfmt 6`` records and I/O.
"""

from repro.blast.database import ProteinDatabase
from repro.blast.blastx import BlastXParams, blastx, blastx_many
from repro.blast.filter import mask_low_complexity
from repro.blast.tabular import TabularHit, read_tabular, write_tabular

__all__ = [
    "ProteinDatabase",
    "BlastXParams",
    "blastx",
    "blastx_many",
    "mask_low_complexity",
    "TabularHit",
    "read_tabular",
    "write_tabular",
]
