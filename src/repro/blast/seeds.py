"""Neighborhood-word seeding and the two-hit heuristic.

Classic protein BLAST seeding: slide a window of ``word_size`` over the
query; a database word *seeds* an extension when its similarity score
against the query word reaches the neighborhood threshold ``T``. We
vectorise this by scoring each query word against the database's whole
distinct-word table at once (``sum_k sub[q_k, W[:, k]]`` is a couple of
fancy-indexing operations), instead of enumerating the 20^3 neighborhood.

The two-hit refinement (Altschul et al. 1997) only triggers extension
when two non-overlapping hits fall on the same (subject, diagonal) within
``two_hit_window`` residues — this is what makes full-database scans
tractable, and we keep it as the default.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.blast.database import ProteinDatabase

__all__ = ["SeedHit", "find_seed_hits", "two_hit_filter"]


@dataclass(frozen=True)
class SeedHit:
    """A word hit: query offset / subject index / subject offset."""

    query_offset: int
    subject_index: int
    subject_offset: int

    @property
    def diagonal(self) -> int:
        """Subject offset minus query offset; constant along a diagonal."""
        return self.subject_offset - self.query_offset


def find_seed_hits(
    query_codes: np.ndarray,
    database: ProteinDatabase,
    *,
    threshold: int = 11,
) -> Iterator[SeedHit]:
    """Yield every neighborhood word hit of ``query_codes`` in the database.

    ``query_codes`` is an encoded protein (``matrix.encode`` output).
    ``threshold`` is BLAST's ``T`` parameter: the minimum summed
    substitution score between the query word and the database word.
    """
    k = database.word_size
    words = database.word_codes
    if len(query_codes) < k or len(words) == 0:
        return
    sub = database.matrix.matrix

    # Score every query window against every distinct database word.
    for q_off in range(len(query_codes) - k + 1):
        window = query_codes[q_off : q_off + k]
        scores = sub[window[0], words[:, 0]].astype(np.int32)
        for j in range(1, k):
            scores += sub[window[j], words[:, j]]
        for word_idx in np.nonzero(scores >= threshold)[0]:
            for subject_index, s_off in database.word_occurrences[word_idx]:
                yield SeedHit(q_off, subject_index, int(s_off))


def two_hit_filter(
    hits: Iterator[SeedHit] | list[SeedHit],
    *,
    word_size: int,
    window: int = 40,
) -> list[SeedHit]:
    """Keep only hits confirmed by a second same-diagonal hit nearby.

    For each (subject, diagonal) we sort hits by subject offset and emit
    the *later* member of every pair of non-overlapping hits whose
    separation is at most ``window`` residues — the position BLAST starts
    its ungapped extension from. Each qualifying hit is emitted once.
    """
    by_diag: dict[tuple[int, int], list[SeedHit]] = defaultdict(list)
    for hit in hits:
        by_diag[(hit.subject_index, hit.diagonal)].append(hit)

    confirmed: list[SeedHit] = []
    for diag_hits in by_diag.values():
        diag_hits.sort(key=lambda h: h.subject_offset)
        last_off: int | None = None
        for hit in diag_hits:
            if last_off is None:
                last_off = hit.subject_offset
                continue
            gap = hit.subject_offset - last_off
            if gap < word_size:
                # Overlaps the previous hit: not independent evidence.
                # Keep waiting for a non-overlapping companion.
                continue
            if gap <= window:
                confirmed.append(hit)
            last_off = hit.subject_offset
    return confirmed
