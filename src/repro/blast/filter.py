"""Low-complexity masking (a SEG-like query filter).

BLAST masks low-complexity query regions by default — poly-A tails,
simple repeats and compositionally biased segments otherwise seed
floods of spurious hits. We implement the standard entropy-window
approach: slide a window over the sequence, compute Shannon entropy of
its residue composition, and mask (replace with the wildcard) windows
below a threshold.

Thresholds differ by alphabet: protein windows (SEG's 12-residue
default) carry more symbols than DNA windows (DUST-style 64-base
windows), so each has its own preset.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

__all__ = ["MaskParams", "PROTEIN_MASK", "DNA_MASK", "shannon_entropy", "mask_low_complexity", "masked_fraction"]


def shannon_entropy(window: str) -> float:
    """Shannon entropy (bits) of a string's residue composition.

    >>> shannon_entropy("AAAA")
    0.0
    >>> round(shannon_entropy("ACGT"), 3)
    2.0
    """
    if not window:
        return 0.0
    counts = Counter(window)
    total = len(window)
    entropy = -sum(
        (c / total) * math.log2(c / total) for c in counts.values()
    )
    return entropy + 0.0  # normalise -0.0 for single-symbol windows


@dataclass(frozen=True)
class MaskParams:
    """Window size, entropy floor, and the masking character."""

    window: int
    min_entropy: float
    mask_char: str

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ValueError("window must be >= 2")
        if self.min_entropy < 0:
            raise ValueError("min_entropy must be >= 0")
        if len(self.mask_char) != 1:
            raise ValueError("mask_char must be a single character")


#: SEG-flavoured protein masking (12-residue window).
PROTEIN_MASK = MaskParams(window=12, min_entropy=2.2, mask_char="X")

#: DUST-flavoured DNA masking (longer window, 2-bit alphabet).
DNA_MASK = MaskParams(window=32, min_entropy=1.4, mask_char="N")


def mask_low_complexity(seq: str, params: MaskParams = PROTEIN_MASK) -> str:
    """Return ``seq`` with low-entropy windows replaced by the mask char.

    Overlapping low-entropy windows merge into one masked run, as SEG's
    output does. Sequences shorter than the window are returned as-is
    (too little signal to judge).

    >>> mask_low_complexity("MEDLKVW" + "A" * 20 + "MEDLKVW")[10]
    'X'
    """
    n = len(seq)
    w = params.window
    if n < w:
        return seq
    upper = seq.upper()
    to_mask = [False] * n
    # Incremental composition update keeps this O(n * alphabet).
    counts = Counter(upper[:w])
    def entropy() -> float:
        return -sum(
            (c / w) * math.log2(c / w) for c in counts.values() if c
        )

    for start in range(0, n - w + 1):
        if start > 0:
            counts[upper[start - 1]] -= 1
            counts[upper[start + w - 1]] += 1
        if entropy() < params.min_entropy:
            for i in range(start, start + w):
                to_mask[i] = True
    return "".join(
        params.mask_char if masked else ch
        for ch, masked in zip(seq, to_mask)
    )


def masked_fraction(seq: str, params: MaskParams = PROTEIN_MASK) -> float:
    """Fraction of residues :func:`mask_low_complexity` would mask."""
    if not seq:
        return 0.0
    masked = mask_low_complexity(seq, params)
    return sum(1 for a, b in zip(seq, masked) if a != b) / len(seq)
