"""Discrete-event simulation of workflow execution platforms.

The paper's numbers come from real runs on Sandhills (a campus cluster)
and the Open Science Grid. We reproduce the *mechanics* that the paper
identifies as decisive — dedicated-after-allocation slots on the campus
cluster versus opportunistic slots, per-job download/install overhead,
preemption and retries on OSG — in a deterministic discrete-event
simulator:

* :mod:`repro.sim.engine` — event queue, virtual clock, process helpers,
* :mod:`repro.sim.rng` — named, seeded random streams,
* :mod:`repro.sim.machine` — node/slot descriptions,
* :mod:`repro.sim.network` — stage-in/out transfer model,
* :mod:`repro.sim.failures` — eviction and failure sampling,
* :mod:`repro.sim.cluster` — the Sandhills-like campus cluster,
* :mod:`repro.sim.grid` — the OSG-like opportunistic grid.
"""

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.cluster import CampusCluster, CampusClusterConfig
from repro.sim.grid import OpportunisticGrid, GridConfig

__all__ = [
    "Simulator",
    "RngStreams",
    "CampusCluster",
    "CampusClusterConfig",
    "OpportunisticGrid",
    "GridConfig",
]
