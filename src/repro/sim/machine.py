"""Machine (execution slot) descriptions for the platform models.

A :class:`MachineSpec` is one schedulable slot: it has a relative speed
(payload runtime divides by it) and a software configuration advertised
as a ClassAd, which is how the OSG model expresses the paper's
"resources … may provide different software and system configurations".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.dagman.condor import ClassAd

__all__ = ["MachineSpec", "make_machines", "SOFTWARE_ATTRS"]

#: The software blast2cap3 needs pre-installed (paper §V-D).
SOFTWARE_ATTRS = ("has_python", "has_biopython", "has_cap3")


@dataclass(frozen=True)
class MachineSpec:
    """One slot: identity, relative speed, and software attributes."""

    name: str
    site: str
    speed: float = 1.0
    software: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ValueError("speed must be positive")

    def classad(self) -> ClassAd:
        attrs = {"site": self.site, "speed": self.speed}
        for key in SOFTWARE_ATTRS:
            attrs[key] = key in self.software
        return ClassAd(name=self.name, attributes=attrs)


def make_machines(
    rng: random.Random,
    *,
    site: str,
    count: int,
    speed_mean: float = 1.0,
    speed_spread: float = 0.15,
    software_prob: float = 1.0,
    name_prefix: str | None = None,
) -> list[MachineSpec]:
    """Generate ``count`` slots with uniform speed jitter.

    ``software_prob`` is the per-package probability that a slot has
    each of the blast2cap3 prerequisites installed: 1.0 models the
    campus cluster ("the most frequently used libraries … are already
    set and maintained"), lower values model OSG heterogeneity.
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    if not 0.0 <= software_prob <= 1.0:
        raise ValueError("software_prob must be in [0, 1]")
    prefix = name_prefix or site
    machines = []
    for i in range(count):
        speed = speed_mean * rng.uniform(1 - speed_spread, 1 + speed_spread)
        software = frozenset(
            attr for attr in SOFTWARE_ATTRS if rng.random() < software_prob
        )
        machines.append(
            MachineSpec(
                name=f"{prefix}-{i:04d}",
                site=site,
                speed=speed,
                software=software,
            )
        )
    return machines
