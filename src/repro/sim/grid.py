"""The opportunistic-grid platform model (Open Science Grid).

Paper §IV-B, §V-D and §VI attribute OSG's behaviour to four mechanisms,
each modelled explicitly and separately tunable:

* **opportunistic waiting** — slot acquisition time is erratic: a
  lognormal baseline with occasional long spikes ("the OSG user can not
  control the availability or the lack of resources over time");
* **download/install overhead** — jobs marked ``needs_setup`` pay a
  lognormal setup time before the payload starts (Fig. 3's red
  rectangles: Python + Biopython + CAP3 installation);
* **heterogeneous software** — machines advertise which prerequisites
  they have (ClassAd matchmaking); jobs that *require* pre-installed
  software (the Sandhills-style workflow) can only match a small
  fraction of the pool, and may find no resource at all;
* **preemption and failures** — a Bernoulli dead-on-arrival failure plus
  an exponential eviction hazard ("the OSG user job may be cancelled or
  held"); DAGMan's retries turn these into the paper's observed
  "failures and workflow retries".

Aggregate capacity exceeds the campus cluster's group share ("OSG
provides more computational resources"), and per-core speed is a little
higher (the paper: ignoring waiting and download/install, "OSG gives
significantly better results").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable

from repro.dagman.condor import ClassAd
from repro.dagman.dag import DagJob
from repro.dagman.events import JobAttempt, JobStatus
from repro.observe.bus import EventBus
from repro.observe.events import EventKind, RunEvent
from repro.observe.profile import modelled_profile
from repro.resilience.faults import resolve_exec
from repro.sim.engine import Simulator
from repro.sim.failures import FailureModel
from repro.sim.machine import MachineSpec, make_machines
from repro.sim.matchmaker import MATCHMAKERS, Matchmaker, create_matchmaker
from repro.sim.rng import RngStreams, bounded_lognormal

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.blacklist import Blacklist
    from repro.resilience.faults import FaultDecision, FaultInjector

__all__ = ["GridSiteConfig", "GridConfig", "OpportunisticGrid"]


@dataclass(frozen=True)
class GridSiteConfig:
    """One contributing site (VO resources)."""

    name: str
    slots: int
    speed_mean: float = 1.3
    speed_spread: float = 0.3
    software_prob: float = 0.5

    def __post_init__(self) -> None:
        if self.slots < 0:
            raise ValueError("slots must be >= 0")


def _default_sites() -> tuple[GridSiteConfig, ...]:
    return (
        GridSiteConfig("unl-prairiefire", 120, speed_mean=1.15, software_prob=0.7),
        GridSiteConfig("fnal-gpgrid", 160, speed_mean=1.35, software_prob=0.5),
        GridSiteConfig("ucsd-t2", 100, speed_mean=1.45, software_prob=0.4),
        GridSiteConfig("mwt2", 120, speed_mean=1.30, software_prob=0.5),
        GridSiteConfig("bnl-atlas", 60, speed_mean=1.25, software_prob=0.3),
        GridSiteConfig("osg-flock", 40, speed_mean=1.10, software_prob=0.6),
    )


@dataclass(frozen=True)
class GridConfig:
    """OSG-like parameters (defaults calibrated in repro.perfmodel)."""

    name: str = "osg"
    sites: tuple[GridSiteConfig, ...] = ()
    dispatch_latency_s: float = 5.0
    wait_mean_s: float = 240.0
    wait_sigma: float = 1.1
    wait_spike_prob: float = 0.15
    wait_spike_mean_s: float = 1800.0
    wait_max_s: float = 7200.0
    setup_mean_s: float = 420.0
    setup_sigma: float = 0.45
    setup_max_s: float = 1800.0
    failures: FailureModel = FailureModel(
        start_failure_prob=0.04, eviction_rate_per_s=1.0 / 20000.0
    )
    unmatched_timeout_s: float = 6 * 3600.0
    #: Matchmaking strategy: ``indexed`` (capability-signature buckets)
    #: or ``linear`` (the historical full rescan, kept as the oracle).
    matchmaker: str = "indexed"

    def __post_init__(self) -> None:
        if self.unmatched_timeout_s <= 0:
            raise ValueError("unmatched_timeout_s must be positive")
        if self.matchmaker not in MATCHMAKERS:
            raise ValueError(
                f"unknown matchmaker {self.matchmaker!r}; "
                f"choose from {sorted(MATCHMAKERS)}"
            )

    def with_sites(self) -> "GridConfig":
        if self.sites:
            return self
        return replace(self, sites=_default_sites())

    @property
    def total_slots(self) -> int:
        return sum(site.slots for site in self.sites)


@dataclass(frozen=True)
class _QueueEntry:
    """One idle job: its ClassAd is built once at submit time and
    reused on every dispatch pass (it used to be rebuilt per entry per
    pass)."""

    job: DagJob
    on_complete: Callable[[JobAttempt], None]
    attempt: int
    submit_time: float
    ad: ClassAd


class OpportunisticGrid:
    """Discrete-event OSG model (an ``ExecutionEnvironment``)."""

    def __init__(
        self,
        simulator: Simulator,
        config: GridConfig = GridConfig(),
        *,
        streams: RngStreams | None = None,
        bus: EventBus | None = None,
        injector: "FaultInjector | None" = None,
        blacklist: "Blacklist | None" = None,
    ) -> None:
        """``injector`` layers a :class:`~repro.resilience.faults.FaultPlan`
        on top of the calibrated :class:`FailureModel` regime;
        ``blacklist`` is the start-failure circuit breaker — blocked
        machines are excluded from matchmaking until their cooldown
        (if any) expires."""
        self.simulator = simulator
        self.config = config.with_sites()
        self.bus = bus
        self.injector = injector
        self.blacklist = blacklist
        self._redispatch_pending = False
        streams = streams or RngStreams(seed=0)
        self._wait_rng = streams.stream(f"{self.config.name}.wait")
        self._setup_rng = streams.stream(f"{self.config.name}.setup")
        self._failure_rng = streams.stream(f"{self.config.name}.failures")
        machine_rng = streams.stream(f"{self.config.name}.machines")

        self._machines: list[MachineSpec] = []
        for site in self.config.sites:
            self._machines.extend(
                make_machines(
                    machine_rng,
                    site=site.name,
                    count=site.slots,
                    speed_mean=site.speed_mean,
                    speed_spread=site.speed_spread,
                    software_prob=site.software_prob,
                )
            )
        self._by_name: dict[str, MachineSpec] = {
            m.name: m for m in self._machines
        }
        #: Owns the free list, the machine ads, and all match caches.
        self.matchmaker: Matchmaker = create_matchmaker(
            self.config.matchmaker, self._machines
        )
        self._queue: list[_QueueEntry] = []
        # Jobs that have *arrived* at their slot (setup or payload in
        # progress). ``busy_slots`` counts reserved slots from match
        # time; the paper's utilization numbers must not count the
        # opportunistic-wait window as busy, so the peak is recorded
        # from arrivals (see ``_arrive``), not from matches.
        self._occupied = 0
        self.peak_busy = 0
        self.eviction_count = 0
        self.start_failure_count = 0
        self.timeout_count = 0

    # -- ExecutionEnvironment protocol ---------------------------------

    @property
    def now(self) -> float:
        return self.simulator.now

    def submit(
        self,
        job: DagJob,
        on_complete: Callable[[JobAttempt], None],
        *,
        attempt: int = 1,
    ) -> None:
        submit_time = self.now
        ad = self._job_ad(job)
        if job.requirements and not self.matchmaker.matchable(ad):
            # No resource in the entire pool can ever run this job: it
            # idles in the queue until the hold timeout expires.
            timeout = self.config.unmatched_timeout_s

            def hold_expired() -> None:
                record = JobAttempt(
                    job_name=job.name,
                    transformation=job.transformation,
                    site=self.config.name,
                    machine="(unmatched)",
                    attempt=attempt,
                    submit_time=submit_time,
                    setup_start=submit_time + timeout,
                    exec_start=submit_time + timeout,
                    exec_end=submit_time + timeout,
                    status=JobStatus.FAILED,
                    error="no matching resources in the pool",
                )
                self._emit_terminal(record)
                on_complete(record)

            self.simulator.schedule(timeout, hold_expired)
            return
        self._queue.append(
            _QueueEntry(job, on_complete, attempt, submit_time, ad)
        )
        self._dispatch()

    def run_until_complete(self) -> None:
        self.simulator.run()

    def call_later(self, delay_s: float, fn: Callable[[], None]) -> None:
        """Virtual-clock deferral (delayed retries park here)."""
        self.simulator.schedule(delay_s, fn)

    # -- internals ------------------------------------------------------

    @property
    def busy_slots(self) -> int:
        """Slots reserved for a job (from match time; includes the
        opportunistic-wait window before the job arrives)."""
        return self.matchmaker.pool_size - self.matchmaker.free_count

    @property
    def capacity(self) -> int:
        """Total pool slots (what the service layer sizes quotas by)."""
        return self.matchmaker.pool_size

    @property
    def occupied_slots(self) -> int:
        """Slots actually doing work (setup or payload in progress)."""
        return self._occupied

    def queue_status(self) -> dict[str, int]:
        """``condor_q``-style snapshot: idle vs running.

        A matched job still riding out its opportunistic-wait window
        counts as *idle* — nothing is executing on its behalf yet — so
        utilization sampled from this snapshot is not inflated by slot
        acquisition time.
        """
        waiting_matched = self.busy_slots - self._occupied
        return {
            "idle": len(self._queue) + waiting_matched,
            "running": self._occupied,
        }

    def _emit(self, kind: EventKind, job: DagJob, attempt: int,
              machine: MachineSpec,
              detail: dict | None = None) -> None:
        bus = self.bus
        if bus is None or not bus.active:
            return  # deaf bus: skip event construction entirely
        bus.emit(
            RunEvent(
                kind,
                self.simulator.now,
                job_name=job.name,
                transformation=job.transformation,
                site=machine.site,
                machine=machine.name,
                attempt=attempt,
                detail=detail or {},
            )
        )

    def _terminal_event(self, record: JobAttempt) -> RunEvent:
        kind = (
            EventKind.EVICT
            if record.status is JobStatus.EVICTED
            else EventKind.FINISH
        )
        return RunEvent(
            kind,
            self.simulator.now,
            job_name=record.job_name,
            transformation=record.transformation,
            site=record.site,
            machine=record.machine,
            attempt=record.attempt,
            record=record,
            detail={"status": record.status.value},
        )

    def _emit_terminal(self, record: JobAttempt) -> None:
        bus = self.bus
        if bus is None or not bus.active:
            return
        bus.emit(self._terminal_event(record))

    @staticmethod
    def _job_ad(job: DagJob) -> ClassAd:
        return ClassAd(
            name=job.name,
            attributes={"transformation": job.transformation},
            requirements=job.requirements,
            rank="speed",
        )

    def _dispatch(self) -> None:
        matchmaker = self.matchmaker
        if not matchmaker.free_count:
            return
        # The blocked set is computed once per pass and shared by every
        # queued entry (it used to be re-filtered per entry).
        blocked: frozenset[str] = frozenset()
        if self.blacklist is not None:
            blocked = frozenset(
                name
                for name in matchmaker.free_names()
                if self.blacklist.is_blocked(
                    name, self._by_name[name].site, now=self.now
                )
            )
        still_queued = []
        for idx, entry in enumerate(self._queue):
            if not matchmaker.free_count:
                # Pool exhausted mid-pass: nothing behind can match.
                still_queued.extend(self._queue[idx:])
                break
            chosen = matchmaker.find(entry.ad, blocked=blocked)
            if chosen is None:
                still_queued.append(entry)
                continue
            matchmaker.claim(chosen)
            machine = self._by_name[chosen]
            self._emit(
                EventKind.MATCH, entry.job, entry.attempt, machine,
                # Entries still unmatched this pass: the skipped ones
                # plus everything behind the cursor.
                detail={
                    "queue_depth": len(still_queued)
                    + (len(self._queue) - idx - 1),
                },
            )
            wait = self.config.dispatch_latency_s + self._sample_wait()
            self.simulator.schedule(
                wait,
                lambda e=entry, m=machine: self._arrive(
                    e.job, e.on_complete, e.attempt, e.submit_time, m
                ),
            )
        self._queue = still_queued
        if blocked and self._queue:
            # Blocks excluded candidates; wake up when the earliest one
            # expires so queued jobs are not stranded until the next
            # completion happens to re-run matchmaking.
            self._schedule_redispatch()

    def _schedule_redispatch(self) -> None:
        # Guarded in-method (like the cluster) so any caller — the
        # dispatch pass, the service layer's wakeups — can request a
        # redispatch without double-scheduling timers.
        assert self.blacklist is not None
        if self._redispatch_pending:
            return
        expiry = self.blacklist.next_expiry(now=self.now)
        if expiry is None:
            return
        self._redispatch_pending = True

        def fire() -> None:
            self._redispatch_pending = False
            self._dispatch()

        self.simulator.schedule(expiry - self.now, fire)

    def _sample_wait(self) -> float:
        rng = self._wait_rng
        if rng.random() < self.config.wait_spike_prob:
            mean = self.config.wait_spike_mean_s
        else:
            mean = self.config.wait_mean_s
        return bounded_lognormal(
            rng, mean, self.config.wait_sigma, high=self.config.wait_max_s
        )

    def _arrive(
        self,
        job: DagJob,
        on_complete: Callable[[JobAttempt], None],
        attempt: int,
        submit_time: float,
        machine: MachineSpec,
    ) -> None:
        """The job reached its slot: maybe DOA, else setup then payload."""
        setup_start = self.now
        # The slot only now starts doing work for this job; the sampled
        # waiting window it spent reserved does not count toward peak
        # utilization (the paper's "waiting time" is idle time).
        self._occupied += 1
        self.peak_busy = max(self.peak_busy, self._occupied)
        # Native regime draw comes FIRST so the calibrated baseline
        # consumes its RNG stream identically with or without an
        # injector layered on top.
        native_doa = self.config.failures.sample_start_failure(
            self._failure_rng
        )
        decision: "FaultDecision | None" = None
        if self.injector is not None:
            decision = self.injector.decide(
                job,
                site=machine.site,
                machine=machine.name,
                attempt=attempt,
                now=self.now,
            )
        if native_doa or (decision is not None and decision.dead_on_arrival):
            self.start_failure_count += 1
            if self.blacklist is not None:
                self.blacklist.record_start_failure(
                    machine.name, machine.site, now=self.now
                )
            self._release(machine)
            error = (
                "node misconfiguration (dead on arrival)"
                if native_doa
                else decision.dead_on_arrival  # type: ignore[union-attr]
            )
            record = JobAttempt(
                job_name=job.name,
                transformation=job.transformation,
                site=machine.site,
                machine=machine.name,
                attempt=attempt,
                submit_time=submit_time,
                setup_start=setup_start,
                exec_start=setup_start,
                exec_end=setup_start,
                status=JobStatus.FAILED,
                error=error,
            )
            self._emit_terminal(record)
            on_complete(record)
            return

        self._emit(EventKind.SETUP_START, job, attempt, machine)
        setup = 0.0
        if job.needs_setup:
            setup = bounded_lognormal(
                self._setup_rng,
                self.config.setup_mean_s,
                self.config.setup_sigma,
                high=self.config.setup_max_s,
            )
        self.simulator.schedule(
            setup,
            lambda: self._start_payload(
                job, on_complete, attempt, submit_time, setup_start,
                machine, decision,
            ),
        )

    def _start_payload(
        self,
        job: DagJob,
        on_complete: Callable[[JobAttempt], None],
        attempt: int,
        submit_time: float,
        setup_start: float,
        machine: MachineSpec,
        decision: "FaultDecision | None" = None,
    ) -> None:
        exec_start = self.now
        self._emit(EventKind.EXEC_START, job, attempt, machine)
        duration = job.runtime / machine.speed
        if decision is not None:
            duration *= decision.slowdown_factor
            if decision.hang:
                duration = math.inf
        eviction_in = self.config.failures.sample_eviction_time(
            self._failure_rng
        )
        if decision is not None and decision.evict_after is not None:
            eviction_in = min(eviction_in, decision.evict_after)
        delay, status, error = resolve_exec(
            duration, evict_after=eviction_in, timeout_s=job.timeout_s
        )
        if math.isinf(delay):
            # Hung payload, no timeout, no eviction due: the attempt
            # wedges and its slot stays occupied — exactly the scenario
            # ``DagJob.timeout_s`` exists to prevent.
            return
        if status is JobStatus.EVICTED:
            self.eviction_count += 1
        elif status is JobStatus.TIMEOUT:
            self.timeout_count += 1
        self.simulator.schedule(
            delay,
            lambda: self._finish(
                job, on_complete, attempt, submit_time, setup_start,
                exec_start, machine, status, error,
            ),
        )

    def _finish(
        self,
        job: DagJob,
        on_complete: Callable[[JobAttempt], None],
        attempt: int,
        submit_time: float,
        setup_start: float,
        exec_start: float,
        machine: MachineSpec,
        status: JobStatus,
        error: str | None,
    ) -> None:
        record = JobAttempt(
            job_name=job.name,
            transformation=job.transformation,
            site=machine.site,
            machine=machine.name,
            attempt=attempt,
            submit_time=submit_time,
            setup_start=setup_start,
            exec_start=exec_start,
            exec_end=self.now,
            status=status,
            error=error,
            # Model-derived usage for the realized exec window (evicted
            # attempts show the work OSG preemption threw away).
            profile=modelled_profile(
                job.transformation, self.now - exec_start,
                speed=machine.speed,
            ),
        )
        if status is JobStatus.SUCCEEDED and self.blacklist is not None:
            self.blacklist.record_success(machine.name, machine.site)
        bus = self.bus
        if status is JobStatus.TIMEOUT and bus is not None and bus.active:
            # Emitted before _release: the redispatch a release triggers
            # emits its own MATCH events, and the timeout must precede
            # them on the stream (order is part of the bus contract).
            bus.emit(
                RunEvent(
                    EventKind.TIMEOUT,
                    self.now,
                    job_name=job.name,
                    transformation=job.transformation,
                    site=machine.site,
                    machine=machine.name,
                    attempt=attempt,
                    detail={"error": error} if error else {},
                )
            )
        self._release(machine)
        self._emit_terminal(record)
        on_complete(record)

    def _release(self, machine: MachineSpec) -> None:
        self._occupied -= 1
        self.matchmaker.release(machine.name)
        self._dispatch()
