"""Failure and preemption sampling for the opportunistic grid.

The paper observed two distinct failure mechanisms on OSG, and none on
Sandhills:

* jobs landing on **misconfigured nodes** fail immediately (wrong or
  missing software) — modelled as a Bernoulli start failure;
* running jobs are **preempted** when the resource's owning VO submits
  its own work ("the OSG user job may be cancelled or held") — modelled
  as an exponential eviction hazard over the job's run.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

__all__ = ["FailureModel", "NO_FAILURES"]


@dataclass(frozen=True)
class FailureModel:
    """Start-failure probability plus an eviction hazard rate."""

    start_failure_prob: float = 0.0
    eviction_rate_per_s: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_failure_prob <= 1.0:
            raise ValueError("start_failure_prob must be in [0, 1]")
        if self.eviction_rate_per_s < 0:
            raise ValueError("eviction_rate_per_s must be >= 0")

    def sample_start_failure(self, rng: random.Random) -> bool:
        """True when this attempt dies on arrival (bad node)."""
        return rng.random() < self.start_failure_prob

    def sample_eviction_time(self, rng: random.Random) -> float:
        """Time until the owner preempts this slot (may be ``inf``)."""
        if self.eviction_rate_per_s == 0:
            return math.inf
        return rng.expovariate(self.eviction_rate_per_s)


#: The campus-cluster regime: "we encountered no failures … on Sandhills".
NO_FAILURES = FailureModel()
