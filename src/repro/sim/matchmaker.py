"""Free-slot matchmaking for the platform models.

The grid model pairs queued jobs with free machines through ClassAd
``match`` (see :mod:`repro.dagman.condor`). Until PR 9 that pairing was
a linear rescan: every dispatch pass re-evaluated every queued job's
requirements against every free machine — O(queue × pool) per pass,
which is exactly the hot path a multi-tenant service layer hammers
(thousands of concurrent workflows sharing one pool).

Two interchangeable matchmakers implement the same contract:

* :class:`LinearMatchmaker` — the historical scan, verbatim. Kept as
  the **equivalence oracle**: property tests pin the indexed rewrite to
  it machine-for-machine (the same pattern PR 7 used for
  ``LegacyRescanScheduler``).
* :class:`IndexedMatchmaker` — buckets free machines by *capability
  signature* (every advertised attribute except the continuous
  ``speed``). A requirements expression that does not mention ``speed``
  is constant across a bucket, so one evaluation per bucket replaces
  one evaluation per machine: a match costs O(buckets) instead of
  O(pool), and verdicts are memoized per (expression, job attributes,
  signature). Jobs whose requirements reference ``speed``, ranks other
  than ``"speed"``, blacklist-blocked passes, and pools whose machines
  advertise their own requirements all fall back to the linear scan —
  correctness first, the fast path covers the common shapes.

Both matchmakers own the free list as an insertion-ordered mapping
``name → free_seq``; the sequence number reproduces the oracle's
list-order tie-break (earliest-freed machine wins among equals) and
makes ``claim`` O(1) where the old ``list.remove`` paid O(pool).

Pool-wide admission checks (:meth:`Matchmaker.matchable`) are cached
per requirements signature and invalidated when pool membership
changes — the linear oracle deliberately keeps the old re-scan
behaviour so the fix stays measurable.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Iterable, Mapping

from repro.dagman.condor import ClassAd, evaluate_requirements, match
from repro.sim.machine import MachineSpec

__all__ = [
    "MatchmakerStats",
    "Matchmaker",
    "LinearMatchmaker",
    "IndexedMatchmaker",
    "create_matchmaker",
    "MATCHMAKERS",
]


@dataclass
class MatchmakerStats:
    """Work counters — what the dispatch-cost benchmarks and the
    O(pool)-regression tests measure.

    ``ads_scanned`` counts per-machine requirement evaluations on the
    linear path; ``bucket_probes`` counts per-bucket verdict lookups on
    the indexed path (cache hits included — the point is that probes
    scale with bucket count, not pool size).
    """

    finds: int = 0
    ads_scanned: int = 0
    bucket_probes: int = 0
    linear_fallbacks: int = 0
    matchable_calls: int = 0
    matchable_scans: int = 0


#: (speed, -free_seq): the oracle's rank ordering — fastest machine
#: wins, ties go to the machine that has been free the longest.
_BestKey = tuple[float, int]


class Matchmaker:
    """Free-list bookkeeping shared by both strategies.

    The pool is the fixed set of machines handed to the constructor
    plus any later :meth:`add_machines`; the *free* subset shrinks via
    :meth:`claim` and grows via :meth:`release`.
    """

    def __init__(self, machines: Iterable[MachineSpec]) -> None:
        self._machines: dict[str, MachineSpec] = {}
        self.ads: dict[str, ClassAd] = {}
        self._free: dict[str, int] = {}
        self._free_seq = 0
        self.stats = MatchmakerStats()
        self.add_machines(machines)

    # -- pool membership ------------------------------------------------

    def add_machines(self, machines: Iterable[MachineSpec]) -> None:
        """Grow the pool; new machines start out free.

        Invalidates every cached pool-wide matchability verdict — a job
        that matched nothing may match the newcomers.
        """
        for machine in machines:
            if machine.name in self._machines:
                raise ValueError(f"duplicate machine: {machine.name}")
            self._machines[machine.name] = machine
            self.ads[machine.name] = machine.classad()
            self._mark_free(machine.name)
            self._index_machine(machine)
        self._invalidate_pool_caches()

    def remove_machine(self, name: str) -> None:
        """Shrink the pool (the machine must currently be free).

        Invalidates cached matchability — a requirements shape that
        matched only this machine is unmatchable afterwards.
        """
        if name not in self._machines:
            raise KeyError(name)
        if name not in self._free:
            raise ValueError(f"cannot remove busy machine: {name}")
        del self._free[name]
        machine = self._machines.pop(name)
        del self.ads[name]
        self._unindex_machine(machine)
        self._invalidate_pool_caches()

    # -- free-list bookkeeping ------------------------------------------

    @property
    def pool_size(self) -> int:
        return len(self._machines)

    @property
    def free_count(self) -> int:
        return len(self._free)

    def free_names(self) -> list[str]:
        """Free machines, earliest-freed first (the oracle's scan
        order)."""
        return list(self._free)

    def is_free(self, name: str) -> bool:
        return name in self._free

    def claim(self, name: str) -> None:
        """Take a free machine out of the free set — O(1)."""
        del self._free[name]

    def release(self, name: str) -> None:
        """Return a machine to the free set, behind every machine that
        is already free (list-append semantics)."""
        if name in self._free:
            raise ValueError(f"machine already free: {name}")
        if name not in self._machines:
            raise KeyError(name)
        self._mark_free(name)
        self._on_release(name)

    def _mark_free(self, name: str) -> None:
        seq = self._free_seq
        self._free_seq = seq + 1
        self._free[name] = seq

    # -- matching -------------------------------------------------------

    def find(
        self, ad: ClassAd, *, blocked: frozenset[str] = frozenset()
    ) -> str | None:
        """The machine the oracle scan would pick for ``ad`` among free,
        non-blocked machines (``None`` when nothing matches). Does NOT
        claim it — callers pair ``find`` with :meth:`claim`."""
        raise NotImplementedError

    def matchable(self, ad: ClassAd) -> bool:
        """Could *any* machine in the pool — busy or free — ever run
        this job? (The admission-control question.)"""
        raise NotImplementedError

    # -- strategy hooks -------------------------------------------------

    def _index_machine(self, machine: MachineSpec) -> None:
        pass

    def _unindex_machine(self, machine: MachineSpec) -> None:
        pass

    def _on_release(self, name: str) -> None:
        pass

    def _invalidate_pool_caches(self) -> None:
        pass

    # -- the shared linear scan -----------------------------------------

    def _find_linear(
        self, ad: ClassAd, blocked: frozenset[str]
    ) -> str | None:
        candidates = [n for n in self._free if n not in blocked]
        self.stats.ads_scanned += len(candidates)
        chosen = match(ad, [self.ads[name] for name in candidates])
        return chosen.name if chosen is not None else None

    def _matchable_scan(self, ad: ClassAd) -> bool:
        self.stats.matchable_scans += 1
        self.stats.ads_scanned += len(self.ads)
        return any(
            match(ad, [self.ads[name]]) is not None for name in self.ads
        )


class LinearMatchmaker(Matchmaker):
    """The historical O(pool) scan, kept bit-for-bit as the oracle.

    Every :meth:`find` walks the free list; every :meth:`matchable`
    re-scans the whole pool with no memoization (the PR 7 leftover the
    indexed rewrite fixes) — which is exactly what makes it the honest
    baseline for the dispatch-cost benchmarks.
    """

    def find(
        self, ad: ClassAd, *, blocked: frozenset[str] = frozenset()
    ) -> str | None:
        self.stats.finds += 1
        return self._find_linear(ad, blocked)

    def matchable(self, ad: ClassAd) -> bool:
        self.stats.matchable_calls += 1
        return self._matchable_scan(ad)


#: A bucket's identity: every advertised attribute except ``speed``.
_Signature = frozenset


@dataclass
class _Bucket:
    """Free machines sharing one capability signature."""

    representative: ClassAd
    #: pool members with this signature (busy or free)
    pool: set[str] = field(default_factory=set)
    #: free members (kept for O(1) emptiness checks)
    free: set[str] = field(default_factory=set)
    #: lazy max-heap of (-speed, free_seq, name); stale entries (the
    #: machine was claimed, or re-freed under a newer seq) are popped
    #: at peek time — the ready-heap idiom from the scheduler rewrite.
    heap: list[tuple[float, int, str]] = field(default_factory=list)


class IndexedMatchmaker(Matchmaker):
    """Capability-signature buckets with per-bucket best-machine heaps.

    See the module docstring for the strategy; the fallback conditions
    (speed-referencing requirements, non-``speed`` ranks, blocked
    machines, machine-side requirements, unhashable attributes) all
    route through the inherited linear scan so behaviour stays
    pinned to the oracle in every case.
    """

    def __init__(self, machines: Iterable[MachineSpec]) -> None:
        self._buckets: dict[_Signature, _Bucket] = {}
        self._sig_of: dict[str, _Signature] = {}
        self._bucketable = True
        #: (expr, job-attrs, signature) → bool requirement verdict
        self._verdicts: dict[tuple, bool] = {}
        #: (expr, job-attrs) → pool-wide matchability
        self._matchable_cache: dict[tuple, bool] = {}
        #: expr → referenced names (None = unparseable)
        self._expr_names: dict[str, frozenset[str] | None] = {}
        super().__init__(machines)

    # -- indexing -------------------------------------------------------

    @staticmethod
    def _signature(ad: ClassAd) -> _Signature | None:
        try:
            return frozenset(
                (k, v) for k, v in ad.attributes.items() if k != "speed"
            )
        except TypeError:
            return None  # unhashable attribute value

    def _index_machine(self, machine: MachineSpec) -> None:
        ad = self.ads[machine.name]
        sig = self._signature(ad)
        if sig is None or ad.requirements is not None:
            # An exotic pool: match() must see each machine individually.
            self._bucketable = False
            return
        bucket = self._buckets.get(sig)
        if bucket is None:
            bucket = self._buckets[sig] = _Bucket(
                representative=ClassAd(
                    name="bucket-representative", attributes=dict(sig)
                )
            )
        self._sig_of[machine.name] = sig
        bucket.pool.add(machine.name)
        self._push_free(machine.name, bucket)

    def _unindex_machine(self, machine: MachineSpec) -> None:
        sig = self._sig_of.pop(machine.name, None)
        if sig is None:
            return
        bucket = self._buckets[sig]
        bucket.pool.discard(machine.name)
        bucket.free.discard(machine.name)
        if not bucket.pool:
            del self._buckets[sig]

    def _push_free(self, name: str, bucket: _Bucket) -> None:
        bucket.free.add(name)
        heappush(
            bucket.heap,
            (-self._machines[name].speed, self._free[name], name),
        )

    def _on_release(self, name: str) -> None:
        sig = self._sig_of.get(name)
        if sig is not None:
            self._push_free(name, self._buckets[sig])

    def claim(self, name: str) -> None:
        super().claim(name)
        sig = self._sig_of.get(name)
        if sig is not None:
            self._buckets[sig].free.discard(name)

    def _invalidate_pool_caches(self) -> None:
        # Bucket verdicts depend only on (expr, job, signature) and stay
        # valid; pool-wide matchability does not survive membership
        # changes — the satellite-2 bug was never invalidating anything.
        self._matchable_cache.clear()

    # -- expression analysis --------------------------------------------

    def _names_in(self, expr: str) -> frozenset[str] | None:
        cached = self._expr_names.get(expr)
        if cached is None and expr not in self._expr_names:
            try:
                tree = ast.parse(expr, mode="eval")
            except SyntaxError:
                cached = None  # linear path will raise identically
            else:
                cached = frozenset(
                    node.id
                    for node in ast.walk(tree)
                    if isinstance(node, ast.Name)
                )
            self._expr_names[expr] = cached
        return cached

    @staticmethod
    def _job_key(ad: ClassAd) -> tuple | None:
        try:
            return (ad.requirements, frozenset(ad.attributes.items()))
        except TypeError:
            return None

    def _indexable(self, ad: ClassAd) -> bool:
        if not self._bucketable or ad.rank != "speed":
            return False
        if ad.requirements is None:
            return True
        names = self._names_in(ad.requirements)
        return names is not None and "speed" not in names

    def _verdict(
        self, expr: str, job_key: tuple, ad: ClassAd, sig: _Signature,
        bucket: _Bucket,
    ) -> bool:
        key = (expr, job_key, sig)
        cached = self._verdicts.get(key)
        if cached is None:
            cached = evaluate_requirements(
                expr, bucket.representative, my=ad
            )
            self._verdicts[key] = cached
        return cached

    # -- matching -------------------------------------------------------

    def find(
        self, ad: ClassAd, *, blocked: frozenset[str] = frozenset()
    ) -> str | None:
        self.stats.finds += 1
        job_key = self._job_key(ad)
        if blocked or job_key is None or not self._indexable(ad):
            # Blocked machines may sit on bucket tops without being
            # claimable; the (rare, chaos-only) pass scans linearly.
            self.stats.linear_fallbacks += 1
            return self._find_linear(ad, blocked)
        expr = ad.requirements
        best: _BestKey | None = None
        best_name: str | None = None
        free_seq = self._free
        for sig, bucket in self._buckets.items():
            if not bucket.free:
                continue
            self.stats.bucket_probes += 1
            if expr is not None and not self._verdict(
                expr, job_key, ad, sig, bucket
            ):
                continue
            heap = bucket.heap
            while heap:
                neg_speed, seq, name = heap[0]
                if name in bucket.free and free_seq.get(name) == seq:
                    break
                heappop(heap)  # stale: claimed or re-freed under new seq
            if not heap:
                continue
            neg_speed, seq, name = heap[0]
            key: _BestKey = (-neg_speed, -seq)
            if best is None or key > best:
                best, best_name = key, name
        return best_name

    def matchable(self, ad: ClassAd) -> bool:
        self.stats.matchable_calls += 1
        job_key = self._job_key(ad)
        if job_key is None:
            return self._matchable_scan(ad)
        cached = self._matchable_cache.get(job_key)
        if cached is not None:
            return cached
        expr = ad.requirements
        if expr is None:
            verdict = bool(self.ads)
        elif not self._bucketable or (
            (names := self._names_in(expr)) is None or "speed" in names
        ):
            verdict = self._matchable_scan(ad)
        else:
            verdict = any(
                bucket.pool
                and self._verdict(expr, job_key, ad, sig, bucket)
                for sig, bucket in self._buckets.items()
            )
        self._matchable_cache[job_key] = verdict
        return verdict


MATCHMAKERS: Mapping[str, type[Matchmaker]] = {
    "linear": LinearMatchmaker,
    "indexed": IndexedMatchmaker,
}


def create_matchmaker(
    strategy: str, machines: Iterable[MachineSpec]
) -> Matchmaker:
    """Instantiate a matchmaker by config name (``indexed``/``linear``)."""
    try:
        cls = MATCHMAKERS[strategy]
    except KeyError:
        raise ValueError(
            f"unknown matchmaker {strategy!r}; "
            f"choose from {sorted(MATCHMAKERS)}"
        ) from None
    return cls(machines)
