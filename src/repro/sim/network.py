"""Data-transfer time model.

Used by the planner for stage-in/stage-out job runtimes and by the OSG
model for input staging. Deliberately first-order: a latency floor plus
bytes over bandwidth — the paper's transfer effects (shipping inputs to
remote OSG nodes versus a campus shared filesystem) are entirely
captured by the bandwidth difference.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NetworkModel", "CAMPUS_SHARED_FS", "WAN"]


@dataclass(frozen=True)
class NetworkModel:
    """Latency + bandwidth transfer model."""

    name: str
    bandwidth_bytes_per_s: float
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("latency must be >= 0")

    def transfer_time(self, nbytes: int | float) -> float:
        """Seconds to move ``nbytes`` (0 bytes still pays latency)."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s


#: Campus shared filesystem: effectively local (GbE+, LAN latency).
CAMPUS_SHARED_FS = NetworkModel(
    name="campus-sharedfs", bandwidth_bytes_per_s=500e6, latency_s=0.01
)

#: Wide-area transfers to opportunistic OSG slots.
WAN = NetworkModel(name="wan", bandwidth_bytes_per_s=10e6, latency_s=0.2)
