"""The campus-cluster platform model (Sandhills).

Paper §IV-A and §VI characterise Sandhills as: heterogeneous AMD nodes
(1,440 cores over 44 nodes), allocation bounded by the research group's
share, a batch queue whose *per-job* waiting is "small and negligible"
once resources are allocated, software pre-installed, and **no
failures**. The model has exactly those levers:

* a ``group_slots`` cap on concurrent jobs (group-based allocation),
* a FIFO dispatch queue with a small lognormal per-job wait,
* per-node speed jitter (heterogeneous cluster),
* zero download/install time, zero failures, zero preemption.

It implements the :class:`repro.dagman.scheduler.ExecutionEnvironment`
protocol, so DAGMan drives it exactly as it drives the real executor.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.dagman.dag import DagJob
from repro.dagman.events import JobAttempt, JobStatus
from repro.observe.bus import EventBus
from repro.observe.events import EventKind, RunEvent
from repro.observe.profile import modelled_profile
from repro.resilience.faults import resolve_exec
from repro.sim.engine import Simulator
from repro.sim.machine import MachineSpec, make_machines
from repro.sim.rng import RngStreams, bounded_lognormal

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.blacklist import Blacklist
    from repro.resilience.faults import FaultDecision, FaultInjector

__all__ = ["CampusClusterConfig", "CampusCluster"]


@dataclass(frozen=True)
class CampusClusterConfig:
    """Sandhills-like parameters.

    ``group_slots`` bounds how many jobs the group's allocation runs at
    once. The default (500 of the cluster's 1,440 cores) is generous
    enough that the paper's n sweep never saturates it badly — matching
    the observation that per-job waiting on Sandhills stays "small and
    negligible" even at n=500. The wall-time plateau comes from the
    largest unsplittable cluster, not from slot starvation.
    """

    name: str = "sandhills"
    nodes: int = 44
    cores_per_node: int = 32  # ~1,440 AMD cores total
    group_slots: int = 500
    dispatch_latency_s: float = 2.0
    queue_wait_mean_s: float = 40.0
    queue_wait_sigma: float = 0.8
    queue_wait_max_s: float = 600.0
    speed_mean: float = 1.0
    speed_spread: float = 0.15

    def __post_init__(self) -> None:
        if self.group_slots < 1:
            raise ValueError("group_slots must be >= 1")
        if self.nodes < 1 or self.cores_per_node < 1:
            raise ValueError("nodes and cores_per_node must be >= 1")

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node


class CampusCluster:
    """Discrete-event Sandhills model (an ``ExecutionEnvironment``)."""

    def __init__(
        self,
        simulator: Simulator,
        config: CampusClusterConfig = CampusClusterConfig(),
        *,
        streams: RngStreams | None = None,
        bus: EventBus | None = None,
        injector: "FaultInjector | None" = None,
        blacklist: "Blacklist | None" = None,
    ) -> None:
        """The calibrated Sandhills model is failure-free; ``injector``
        layers a chaos :class:`~repro.resilience.faults.FaultPlan` on
        top of it and ``blacklist`` excludes tripped nodes from the
        round-robin."""
        self.simulator = simulator
        self.config = config
        self.bus = bus
        self.injector = injector
        self.blacklist = blacklist
        streams = streams or RngStreams(seed=0)
        self._wait_rng = streams.stream(f"{config.name}.wait")
        machine_rng = streams.stream(f"{config.name}.machines")
        # One spec per node; slots cycle over nodes (cores are identical
        # within a node, so per-node speed is what matters).
        self._machines: list[MachineSpec] = make_machines(
            machine_rng,
            site=config.name,
            count=config.nodes,
            speed_mean=config.speed_mean,
            speed_spread=config.speed_spread,
            software_prob=1.0,  # campus software stack is maintained
        )
        self._queue: deque[
            tuple[DagJob, Callable[[JobAttempt], None], int, float]
        ] = deque()
        self._busy = 0
        self._next_machine = 0
        self._redispatch_pending = False
        self.peak_busy = 0
        self.start_failure_count = 0
        self.eviction_count = 0
        self.timeout_count = 0

    # -- ExecutionEnvironment protocol ---------------------------------

    @property
    def now(self) -> float:
        return self.simulator.now

    def submit(
        self,
        job: DagJob,
        on_complete: Callable[[JobAttempt], None],
        *,
        attempt: int = 1,
    ) -> None:
        self._queue.append((job, on_complete, attempt, self.now))
        self._dispatch()

    def run_until_complete(self) -> None:
        self.simulator.run()

    def call_later(self, delay_s: float, fn: Callable[[], None]) -> None:
        """Virtual-clock deferral (delayed retries park here)."""
        self.simulator.schedule(delay_s, fn)

    # -- internals ------------------------------------------------------

    @property
    def busy_slots(self) -> int:
        return self._busy

    @property
    def capacity(self) -> int:
        """Concurrent-job ceiling (what the service layer sizes quotas
        by): the group allocation, not the whole cluster."""
        return self.config.group_slots

    def queue_status(self) -> dict[str, int]:
        """``condor_q``-style snapshot: idle (queued) vs running."""
        return {"idle": len(self._queue), "running": self._busy}

    def _emit(self, kind: EventKind, job: DagJob, attempt: int,
              machine: MachineSpec,
              detail: dict | None = None) -> None:
        bus = self.bus
        if bus is None or not bus.active:
            return  # deaf bus: skip event construction entirely
        bus.emit(
            RunEvent(
                kind,
                self.simulator.now,
                job_name=job.name,
                transformation=job.transformation,
                site=self.config.name,
                machine=machine.name,
                attempt=attempt,
                detail=detail or {},
            )
        )

    def _dispatch(self) -> None:
        while self._queue and self._busy < self.config.group_slots:
            machine = self._pick_machine()
            if machine is None:
                # Every node is blacklisted: park the queue and wake up
                # when the earliest block expires (if any will).
                self._schedule_redispatch()
                return
            job, on_complete, attempt, submit_time = self._queue.popleft()
            self._busy += 1
            self.peak_busy = max(self.peak_busy, self._busy)
            self._emit(
                EventKind.MATCH, job, attempt, machine,
                detail={"queue_depth": len(self._queue)},
            )
            wait = self.config.dispatch_latency_s + bounded_lognormal(
                self._wait_rng,
                self.config.queue_wait_mean_s,
                self.config.queue_wait_sigma,
                high=self.config.queue_wait_max_s,
            )
            self.simulator.schedule(
                wait,
                lambda j=job, cb=on_complete, a=attempt, st=submit_time, m=machine: (
                    self._start(j, cb, a, st, m)
                ),
            )

    def _pick_machine(self) -> MachineSpec | None:
        """Next round-robin node that isn't blacklisted (None when all
        are blocked)."""
        for _ in range(len(self._machines)):
            machine = self._machines[self._next_machine % len(self._machines)]
            self._next_machine += 1
            if self.blacklist is None or not self.blacklist.is_blocked(
                machine.name, self.config.name, now=self.now
            ):
                return machine
        return None

    def _schedule_redispatch(self) -> None:
        assert self.blacklist is not None
        if self._redispatch_pending:
            return
        expiry = self.blacklist.next_expiry(now=self.now)
        if expiry is None:
            return
        self._redispatch_pending = True

        def fire() -> None:
            self._redispatch_pending = False
            self._dispatch()

        self.simulator.schedule(expiry - self.now, fire)

    def _start(
        self,
        job: DagJob,
        on_complete: Callable[[JobAttempt], None],
        attempt: int,
        submit_time: float,
        machine: MachineSpec,
    ) -> None:
        start = self.now
        decision: "FaultDecision | None" = None
        if self.injector is not None:
            decision = self.injector.decide(
                job,
                site=self.config.name,
                machine=machine.name,
                attempt=attempt,
                now=self.now,
            )
        if decision is not None and decision.dead_on_arrival:
            self.start_failure_count += 1
            if self.blacklist is not None:
                self.blacklist.record_start_failure(
                    machine.name, self.config.name, now=self.now
                )
            self._finish(
                job, on_complete, attempt, submit_time, start, machine,
                JobStatus.FAILED, decision.dead_on_arrival,
            )
            return
        duration = job.runtime / machine.speed
        evict_after: float | None = None
        if decision is not None:
            duration *= decision.slowdown_factor
            if decision.hang:
                duration = math.inf
            evict_after = decision.evict_after
        delay, status, error = resolve_exec(
            duration, evict_after=evict_after, timeout_s=job.timeout_s
        )
        # Software is pre-installed: setup == start, no download/install.
        self._emit(EventKind.EXEC_START, job, attempt, machine)
        if math.isinf(delay):
            # Hung payload, no timeout: the attempt wedges and its slot
            # stays busy — the scenario ``DagJob.timeout_s`` prevents.
            return
        if status is JobStatus.EVICTED:
            self.eviction_count += 1
        elif status is JobStatus.TIMEOUT:
            self.timeout_count += 1
        self.simulator.schedule(
            delay,
            lambda: self._finish(
                job, on_complete, attempt, submit_time, start, machine,
                status, error,
            ),
        )

    def _finish(
        self,
        job: DagJob,
        on_complete: Callable[[JobAttempt], None],
        attempt: int,
        submit_time: float,
        start: float,
        machine: MachineSpec,
        status: JobStatus = JobStatus.SUCCEEDED,
        error: str | None = None,
    ) -> None:
        record = JobAttempt(
            job_name=job.name,
            transformation=job.transformation,
            site=self.config.name,
            machine=machine.name,
            attempt=attempt,
            submit_time=submit_time,
            setup_start=start,
            exec_start=start,
            exec_end=self.now,
            status=status,
            error=error,
            # Model-derived usage for the realized exec window (evicted
            # or timed-out attempts show the work they burned anyway).
            profile=modelled_profile(
                job.transformation, self.now - start, speed=machine.speed
            ),
        )
        self._busy -= 1
        if status is JobStatus.SUCCEEDED and self.blacklist is not None:
            self.blacklist.record_success(machine.name, self.config.name)
        bus = self.bus
        if bus is not None and bus.active:
            batch = []
            if status is JobStatus.TIMEOUT:
                batch.append(
                    RunEvent(
                        EventKind.TIMEOUT,
                        self.now,
                        job_name=job.name,
                        transformation=job.transformation,
                        site=self.config.name,
                        machine=machine.name,
                        attempt=attempt,
                        detail={"error": error} if error else {},
                    )
                )
            kind = (
                EventKind.EVICT
                if status is JobStatus.EVICTED
                else EventKind.FINISH
            )
            batch.append(
                RunEvent(
                    kind,
                    self.now,
                    job_name=job.name,
                    transformation=job.transformation,
                    site=self.config.name,
                    machine=machine.name,
                    attempt=attempt,
                    record=record,
                    detail={"status": record.status.value},
                )
            )
            bus.emit_batch(batch)
        on_complete(record)
        self._dispatch()
