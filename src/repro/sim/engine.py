"""The discrete-event simulation core.

A deliberately small engine: a priority queue of timestamped callbacks
and a virtual clock. Platform models schedule state transitions (job
starts, completions, evictions) as events; DAGMan reacts inside the
callbacks by scheduling more. Determinism is guaranteed by a
monotonically increasing tie-break sequence number — two events at the
same virtual time fire in scheduling order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Event", "Simulator"]


@dataclass(order=True)
class Event:
    """A scheduled callback; orderable by (time, seq)."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    owner: "Simulator | None" = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Prevent the callback from firing.

        The heap entry remains until the owning simulator reaches or
        compacts it; the simulator keeps a count of cancelled entries so
        ``pending`` stays O(1) and heavily-cancelled heaps get rebuilt.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self.owner is not None:
            self.owner._note_cancel()


class Simulator:
    """Virtual-clock event loop.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.0, 5.0]
    """

    #: Compact the heap when at least this many entries are cancelled
    #: *and* they outnumber the live ones (amortised O(1) per cancel).
    _COMPACT_MIN = 64

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._processed = 0
        self._cancelled = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events."""
        return len(self._queue) - self._cancelled

    @property
    def processed(self) -> int:
        """Number of events fired so far."""
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute virtual ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        event = Event(
            time=time, seq=next(self._seq), callback=callback, owner=self
        )
        heapq.heappush(self._queue, event)
        return event

    def _note_cancel(self) -> None:
        self._cancelled += 1
        if (
            self._cancelled >= self._COMPACT_MIN
            and self._cancelled * 2 > len(self._queue)
        ):
            self._queue = [e for e in self._queue if not e.cancelled]
            heapq.heapify(self._queue)
            self._cancelled = 0

    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._now = event.time
            self._processed += 1
            event.callback()
            return True
        return False

    def run(self, *, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the queue drains, ``until`` is reached, or
        ``max_events`` have fired (a runaway guard for tests).

        When ``until`` is given the clock always ends at ``until`` —
        including when the queue drains *before* the horizon — so
        ``run(until=t)`` leaves ``now == t`` unless an error aborts it.
        """
        fired = 0
        while self._queue:
            if max_events is not None and fired >= max_events:
                raise RuntimeError(
                    f"simulation exceeded max_events={max_events}"
                )
            next_event = self._queue[0]
            if next_event.cancelled:
                heapq.heappop(self._queue)
                self._cancelled -= 1
                continue
            if until is not None and next_event.time > until:
                self._now = until
                return
            if not self.step():
                break
            fired += 1
        if until is not None and self._now < until:
            self._now = until
