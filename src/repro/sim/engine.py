"""The discrete-event simulation core.

A deliberately small engine: a priority queue of timestamped callbacks
and a virtual clock. Platform models schedule state transitions (job
starts, completions, evictions) as events; DAGMan reacts inside the
callbacks by scheduling more. Determinism is guaranteed by a
monotonically increasing tie-break sequence number — two events at the
same virtual time fire in scheduling order.

The engine is sized for million-event runs: :class:`Event` is a
``__slots__`` object (no per-event ``__dict__``), the heap stores
``(time, seq, event)`` tuples so ordering is C-speed tuple comparison
rather than attribute lookups, and cancelled entries are counted (and
the heap compacted when they dominate) so ``pending`` stays O(1).
"""

from __future__ import annotations

import heapq
from typing import Callable

__all__ = ["Event", "Simulator"]


class Event:
    """A scheduled callback; orderable by (time, seq).

    Lifecycle: *pending* → exactly one of *fired* (its callback ran) or
    *cancelled*. :meth:`cancel` after the event has fired is a no-op —
    the watchdog-timeout-races-completion pattern cancels completions
    that may have just run, and a late cancel must not skew the owning
    simulator's cancelled-entry accounting (``pending`` would undercount
    and compaction would reset the counter wrongly).
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "fired", "owner")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        owner: "Simulator | None" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.fired = False
        self.owner = owner

    def cancel(self) -> None:
        """Prevent the callback from firing.

        The heap entry remains until the owning simulator reaches or
        compacts it; the simulator keeps a count of cancelled entries so
        ``pending`` stays O(1) and heavily-cancelled heaps get rebuilt.
        Cancelling an event that already fired (or was already
        cancelled) is a no-op.
        """
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self.owner is not None:
            self.owner._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "fired" if self.fired
            else "cancelled" if self.cancelled
            else "pending"
        )
        return f"Event(time={self.time}, seq={self.seq}, {state})"


class Simulator:
    """Virtual-clock event loop.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.0, 5.0]
    """

    #: Compact the heap when at least this many entries are cancelled
    #: *and* they outnumber the live ones (amortised O(1) per cancel).
    _COMPACT_MIN = 64

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._processed = 0
        self._cancelled = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events."""
        return len(self._queue) - self._cancelled

    @property
    def processed(self) -> int:
        """Number of events fired so far."""
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute virtual ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, owner=self)
        heapq.heappush(self._queue, (time, seq, event))
        return event

    def _note_cancel(self) -> None:
        self._cancelled += 1
        if (
            self._cancelled >= self._COMPACT_MIN
            and self._cancelled * 2 > len(self._queue)
        ):
            # In place: run() loops hold a reference to this list.
            self._queue[:] = [
                entry for entry in self._queue if not entry[2].cancelled
            ]
            heapq.heapify(self._queue)
            self._cancelled = 0

    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        queue = self._queue
        while queue:
            time, _seq, event = heapq.heappop(queue)
            if event.cancelled:
                self._cancelled -= 1
                continue
            event.fired = True
            self._now = time
            self._processed += 1
            event.callback()
            return True
        return False

    def run(self, *, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the queue drains, ``until`` is reached, or
        ``max_events`` have fired (a runaway guard for tests).

        When ``until`` is given the clock always ends at ``until`` —
        including when the queue drains *before* the horizon — so
        ``run(until=t)`` leaves ``now == t`` unless an error aborts it.
        """
        queue = self._queue
        if until is None and max_events is None:
            # Hot path: drain everything, no per-iteration checks.
            pop = heapq.heappop
            while queue:
                time, _seq, event = pop(queue)
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                event.fired = True
                self._now = time
                self._processed += 1
                event.callback()
            return
        fired = 0
        while queue:
            if max_events is not None and fired >= max_events:
                raise RuntimeError(
                    f"simulation exceeded max_events={max_events}"
                )
            next_time, _seq, next_event = queue[0]
            if next_event.cancelled:
                heapq.heappop(queue)
                self._cancelled -= 1
                continue
            if until is not None and next_time > until:
                self._now = until
                return
            if not self.step():
                break
            fired += 1
        if until is not None and self._now < until:
            self._now = until
