"""The discrete-event simulation core.

A deliberately small engine: a priority queue of timestamped callbacks
and a virtual clock. Platform models schedule state transitions (job
starts, completions, evictions) as events; DAGMan reacts inside the
callbacks by scheduling more. Determinism is guaranteed by a
monotonically increasing tie-break sequence number — two events at the
same virtual time fire in scheduling order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Event", "Simulator"]


@dataclass(order=True)
class Event:
    """A scheduled callback; orderable by (time, seq)."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the callback from firing (the heap entry remains)."""
        self.cancelled = True


class Simulator:
    """Virtual-clock event loop.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.0, 5.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events."""
        return sum(1 for e in self._queue if not e.cancelled)

    @property
    def processed(self) -> int:
        """Number of events fired so far."""
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute virtual ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        event = Event(time=time, seq=next(self._seq), callback=callback)
        heapq.heappush(self._queue, event)
        return event

    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.callback()
            return True
        return False

    def run(self, *, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the queue drains, ``until`` is reached, or
        ``max_events`` have fired (a runaway guard for tests)."""
        fired = 0
        while self._queue:
            if max_events is not None and fired >= max_events:
                raise RuntimeError(
                    f"simulation exceeded max_events={max_events}"
                )
            next_event = self._queue[0]
            if next_event.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and next_event.time > until:
                self._now = until
                return
            if not self.step():
                return
            fired += 1
