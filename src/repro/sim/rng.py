"""Named, seeded random streams for the simulator.

Every stochastic component (queue waits, download/install times,
evictions, machine speeds) draws from its *own* stream derived from the
experiment seed and a stable name. Adding a new source of randomness
therefore never perturbs the draws of existing components — runs stay
reproducible and comparable across code changes.
"""

from __future__ import annotations

import hashlib
import math
import random

__all__ = ["RngStreams", "bounded_lognormal"]


class RngStreams:
    """A factory of independent ``random.Random`` streams.

    >>> streams = RngStreams(seed=42)
    >>> a = streams.stream("grid.wait")
    >>> b = streams.stream("grid.wait")
    >>> a.random() == b.random()  # same name -> same stream
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def stream(self, name: str) -> random.Random:
        """A fresh generator deterministically derived from (seed, name)."""
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def child(self, name: str) -> "RngStreams":
        """A derived stream family (for per-site or per-job namespaces)."""
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return RngStreams(seed=int.from_bytes(digest[8:16], "big"))


def bounded_lognormal(
    rng: random.Random,
    mean: float,
    sigma: float,
    *,
    low: float = 0.0,
    high: float = math.inf,
) -> float:
    """A lognormal draw with the requested *arithmetic* mean, clamped.

    Heavy right tails model grid waiting and setup times well, but an
    unclamped tail occasionally produces absurd outliers that would make
    single-seed benchmark tables noisy; the clamp keeps draws physical.
    """
    if mean <= 0:
        raise ValueError("mean must be positive")
    if sigma < 0:
        raise ValueError("sigma must be >= 0")
    if sigma == 0:
        value = mean
    else:
        mu = math.log(mean) - 0.5 * sigma * sigma
        value = rng.lognormvariate(mu, sigma)
    return min(max(value, low), high)
