"""A cloud execution-platform model — the paper's future work, built.

§VII: "Using academic and commercial clouds as an execution platform
for the blast2cap3 workflow built in this paper will be challenging,
but important and useful further step of this research." This module
models the EC2/FutureGrid style platform the paper names:

* **on-demand instances** — provisioned per queued job up to a cap,
  each paying a boot delay before the first payload runs;
* **machine images** — software baked in, so no per-job
  download/install (the cloud's answer to OSG's setup tax);
* **warm pools** — idle instances linger ``idle_timeout_s`` before
  terminating, so bursts reuse booted capacity;
* **billing** — instance time is billed in ``billing_quantum_s``
  increments (the classic per-hour granularity), which makes *cost*,
  not just wall time, an output of every run;
* optional **spot mode** — cheaper instances that can be reclaimed
  (an eviction hazard, like OSG's preemption) for the cost/risk
  trade-off study.

Implements the same ``ExecutionEnvironment`` protocol as the campus
cluster and grid models, so DAGMan and ``pegasus-statistics`` work on
cloud runs unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.dagman.dag import DagJob
from repro.dagman.events import JobAttempt, JobStatus
from repro.observe.bus import EventBus
from repro.observe.events import EventKind, RunEvent
from repro.observe.profile import modelled_profile
from repro.resilience.faults import resolve_exec
from repro.sim.engine import Simulator
from repro.sim.failures import NO_FAILURES, FailureModel
from repro.sim.rng import RngStreams, bounded_lognormal

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.faults import FaultDecision, FaultInjector

__all__ = ["InstanceType", "CloudConfig", "CloudPlatform"]


@dataclass(frozen=True)
class InstanceType:
    """One VM flavour."""

    name: str
    speed: float
    hourly_price: float

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ValueError("speed must be positive")
        if self.hourly_price < 0:
            raise ValueError("hourly_price must be >= 0")


@dataclass(frozen=True)
class CloudConfig:
    """Cloud platform parameters (EC2-c1.medium-era defaults)."""

    name: str = "cloud"
    instance_type: InstanceType = InstanceType(
        name="c1.medium", speed=1.25, hourly_price=0.145
    )
    max_instances: int = 200
    boot_mean_s: float = 120.0
    boot_sigma: float = 0.3
    boot_max_s: float = 600.0
    idle_timeout_s: float = 300.0
    billing_quantum_s: float = 3600.0
    dispatch_latency_s: float = 2.0
    #: Spot-market mode: reclaim hazard + discounted price.
    failures: FailureModel = NO_FAILURES
    spot_discount: float = 1.0  # multiply hourly price (e.g. 0.3 for spot)

    def __post_init__(self) -> None:
        if self.max_instances < 1:
            raise ValueError("max_instances must be >= 1")
        if self.billing_quantum_s <= 0:
            raise ValueError("billing_quantum_s must be positive")
        if not 0 < self.spot_discount <= 1:
            raise ValueError("spot_discount must be in (0, 1]")


class _Instance:
    """One VM: boots once, runs jobs one at a time, idles, terminates."""

    __slots__ = ("name", "launched_at", "terminated_at", "busy", "idle_event")

    def __init__(self, name: str, launched_at: float) -> None:
        self.name = name
        self.launched_at = launched_at
        self.terminated_at: float | None = None
        self.busy = False
        self.idle_event = None  # pending termination event


class CloudPlatform:
    """Discrete-event on-demand cloud (an ``ExecutionEnvironment``)."""

    def __init__(
        self,
        simulator: Simulator,
        config: CloudConfig = CloudConfig(),
        *,
        streams: RngStreams | None = None,
        bus: EventBus | None = None,
        injector: "FaultInjector | None" = None,
    ) -> None:
        """``injector`` layers a chaos
        :class:`~repro.resilience.faults.FaultPlan` (spot storms, bad
        AZs, stragglers) on top of the configured spot-reclaim model."""
        self.simulator = simulator
        self.config = config
        self.bus = bus
        self.injector = injector
        streams = streams or RngStreams(seed=0)
        self._boot_rng = streams.stream(f"{config.name}.boot")
        self._failure_rng = streams.stream(f"{config.name}.failures")
        self._instances: list[_Instance] = []
        self._warm: list[_Instance] = []  # booted and idle
        self._queue: list[
            tuple[DagJob, Callable[[JobAttempt], None], int, float]
        ] = []
        self._counter = 0
        self.peak_instances = 0
        self.reclaim_count = 0
        self.start_failure_count = 0
        self.timeout_count = 0

    # -- ExecutionEnvironment protocol ---------------------------------

    @property
    def now(self) -> float:
        return self.simulator.now

    def submit(
        self,
        job: DagJob,
        on_complete: Callable[[JobAttempt], None],
        *,
        attempt: int = 1,
    ) -> None:
        self._queue.append((job, on_complete, attempt, self.now))
        self._dispatch()

    def run_until_complete(self) -> None:
        self.simulator.run()

    def call_later(self, delay_s: float, fn: Callable[[], None]) -> None:
        """Virtual-clock deferral (delayed retries park here)."""
        self.simulator.schedule(delay_s, fn)

    # -- accounting -------------------------------------------------------

    @property
    def running_instances(self) -> int:
        return sum(1 for i in self._instances if i.terminated_at is None)

    def queue_status(self) -> dict[str, int]:
        """``condor_q``-style snapshot: idle (awaiting capacity) vs
        running (busy instances)."""
        busy = sum(
            1 for i in self._instances
            if i.terminated_at is None and i.busy
        )
        return {"idle": len(self._queue), "running": busy}

    def instance_seconds(self) -> float:
        """Raw provisioned seconds across all instances."""
        total = 0.0
        for inst in self._instances:
            end = inst.terminated_at if inst.terminated_at is not None else self.now
            total += end - inst.launched_at
        return total

    def billed_cost(self) -> float:
        """Dollars, rounding each instance up to the billing quantum."""
        quantum = self.config.billing_quantum_s
        hourly = self.config.instance_type.hourly_price * self.config.spot_discount
        cost = 0.0
        for inst in self._instances:
            end = inst.terminated_at if inst.terminated_at is not None else self.now
            quanta = math.ceil(max(1e-9, end - inst.launched_at) / quantum)
            cost += quanta * hourly * (quantum / 3600.0)
        return cost

    # -- internals ------------------------------------------------------

    def _emit(self, kind: EventKind, job: DagJob, attempt: int,
              instance: _Instance,
              detail: dict | None = None) -> None:
        bus = self.bus
        if bus is None or not bus.active:
            return  # deaf bus: skip event construction entirely
        bus.emit(
            RunEvent(
                kind,
                self.simulator.now,
                job_name=job.name,
                transformation=job.transformation,
                site=self.config.name,
                machine=instance.name,
                attempt=attempt,
                detail=detail or {},
            )
        )

    def _dispatch(self) -> None:
        while self._queue:
            job, on_complete, attempt, submit_time = self._queue[0]
            if self._warm:
                instance = self._warm.pop()
                if instance.idle_event is not None:
                    instance.idle_event.cancel()
                    instance.idle_event = None
                self._queue.pop(0)
                self._emit(
                    EventKind.MATCH, job, attempt, instance,
                    detail={"queue_depth": len(self._queue)},
                )
                self._start_on(
                    instance, job, on_complete, attempt, submit_time,
                    booted=True,
                )
            elif self.running_instances < self.config.max_instances:
                self._queue.pop(0)
                self._counter += 1
                instance = _Instance(
                    name=f"{self.config.name}-vm{self._counter:05d}",
                    launched_at=self.now,
                )
                self._instances.append(instance)
                self.peak_instances = max(
                    self.peak_instances, self.running_instances
                )
                self._emit(
                    EventKind.MATCH, job, attempt, instance,
                    detail={"queue_depth": len(self._queue)},
                )
                boot = self.config.dispatch_latency_s + bounded_lognormal(
                    self._boot_rng,
                    self.config.boot_mean_s,
                    self.config.boot_sigma,
                    high=self.config.boot_max_s,
                )
                self.simulator.schedule(
                    boot,
                    lambda inst=instance, j=job, cb=on_complete, a=attempt,
                    st=submit_time: self._start_on(inst, j, cb, a, st,
                                                   booted=False),
                )
            else:
                return  # no capacity; retry on next completion

    def _start_on(
        self,
        instance: _Instance,
        job: DagJob,
        on_complete: Callable[[JobAttempt], None],
        attempt: int,
        submit_time: float,
        *,
        booted: bool,
    ) -> None:
        instance.busy = True
        start = self.now
        # Native spot-reclaim draw comes FIRST so the configured model
        # consumes its RNG stream identically with or without an
        # injector layered on top.
        reclaim_in = self.config.failures.sample_eviction_time(
            self._failure_rng
        )
        decision: "FaultDecision | None" = None
        if self.injector is not None:
            decision = self.injector.decide(
                job,
                site=self.config.name,
                machine=instance.name,
                attempt=attempt,
                now=self.now,
            )
        if decision is not None and decision.dead_on_arrival:
            self.start_failure_count += 1
            self._finish(
                instance, job, on_complete, attempt, submit_time, start,
                JobStatus.FAILED, decision.dead_on_arrival,
                terminate=True,
            )
            return
        self._emit(EventKind.EXEC_START, job, attempt, instance)
        duration = job.runtime / self.config.instance_type.speed
        if decision is not None:
            duration *= decision.slowdown_factor
            if decision.hang:
                duration = math.inf
            if decision.evict_after is not None:
                reclaim_in = min(reclaim_in, decision.evict_after)
        delay, status, error = resolve_exec(
            duration, evict_after=reclaim_in, timeout_s=job.timeout_s
        )
        if math.isinf(delay):
            # Hung payload, no timeout, no reclaim due: the attempt
            # wedges and the instance bills forever — the scenario
            # ``DagJob.timeout_s`` prevents.
            return
        if status is JobStatus.EVICTED:
            self.reclaim_count += 1
            error = "spot instance reclaimed"
        elif status is JobStatus.TIMEOUT:
            self.timeout_count += 1
        self.simulator.schedule(
            delay,
            lambda: self._finish(
                instance, job, on_complete, attempt, submit_time, start,
                status, error, terminate=status is JobStatus.EVICTED,
            ),
        )

    def _finish(
        self,
        instance: _Instance,
        job: DagJob,
        on_complete: Callable[[JobAttempt], None],
        attempt: int,
        submit_time: float,
        start: float,
        status: JobStatus,
        error: str | None,
        *,
        terminate: bool,
    ) -> None:
        record = JobAttempt(
            job_name=job.name,
            transformation=job.transformation,
            site=self.config.name,
            machine=instance.name,
            attempt=attempt,
            submit_time=submit_time,
            setup_start=start,  # image is pre-baked: no download/install
            exec_start=start,
            exec_end=self.now,
            status=status,
            error=error,
            profile=modelled_profile(
                job.transformation, self.now - start,
                speed=self.config.instance_type.speed,
            ),
        )
        instance.busy = False
        if terminate:
            instance.terminated_at = self.now
        else:
            self._park(instance)
        bus = self.bus
        if bus is not None and bus.active:
            batch = []
            if status is JobStatus.TIMEOUT:
                batch.append(
                    RunEvent(
                        EventKind.TIMEOUT,
                        self.now,
                        job_name=record.job_name,
                        transformation=record.transformation,
                        site=record.site,
                        machine=record.machine,
                        attempt=record.attempt,
                        detail={"error": error} if error else {},
                    )
                )
            kind = (
                EventKind.EVICT
                if status is JobStatus.EVICTED
                else EventKind.FINISH
            )
            batch.append(
                RunEvent(
                    kind,
                    self.now,
                    job_name=record.job_name,
                    transformation=record.transformation,
                    site=record.site,
                    machine=record.machine,
                    attempt=record.attempt,
                    record=record,
                    detail={"status": record.status.value},
                )
            )
            bus.emit_batch(batch)
        on_complete(record)
        self._dispatch()

    def _park(self, instance: _Instance) -> None:
        """Idle the instance; terminate it after the warm-pool timeout."""
        self._warm.append(instance)

        def terminate() -> None:
            if instance.busy or instance.terminated_at is not None:
                return
            if instance in self._warm:
                self._warm.remove(instance)
            instance.terminated_at = self.now

        instance.idle_event = self.simulator.schedule(
            self.config.idle_timeout_s, terminate
        )
