"""The serial blast2cap3 driver.

This mirrors the original script's behaviour: cluster transcripts by
best protein hit, run CAP3 on each cluster **one after another** (the
paper: "first one cluster of similar transcripts is created and then is
sent to CAP3 … repeated consecutively for all possible clusters"), then
concatenate the per-cluster outputs with everything that stayed
unmerged. The Pegasus workflow in :mod:`repro.core.workflow_factory`
parallelises exactly the per-cluster loop below.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.bio.fasta import FastaRecord
from repro.blast.tabular import TabularHit
from repro.cap3.assembler import Cap3Params, assemble
from repro.core.clusters import ProteinCluster, cluster_transcripts

__all__ = ["Blast2Cap3Result", "blast2cap3_serial", "merge_cluster"]


@dataclass
class Blast2Cap3Result:
    """Outputs and bookkeeping of one blast2cap3 run.

    ``joined`` holds the CAP3 contigs produced inside clusters;
    ``unjoined`` holds every transcript that was not absorbed into any
    contig (cluster singlets, single-member clusters, and transcripts
    without protein hits). ``joined + unjoined`` is the final merged
    assembly.
    """

    joined: list[FastaRecord] = field(default_factory=list)
    unjoined: list[FastaRecord] = field(default_factory=list)
    input_count: int = 0
    cluster_count: int = 0
    mergeable_cluster_count: int = 0
    merged_transcript_count: int = 0

    @property
    def output_records(self) -> list[FastaRecord]:
        """The final assembly: contigs first, then unjoined transcripts."""
        return self.joined + self.unjoined

    @property
    def output_count(self) -> int:
        return len(self.joined) + len(self.unjoined)

    @property
    def reduction_fraction(self) -> float:
        """Fractional drop in sequence count (the paper's 8–9 % claim)."""
        if self.input_count == 0:
            return 0.0
        return 1.0 - self.output_count / self.input_count


def merge_cluster(
    cluster: ProteinCluster,
    transcripts: Mapping[str, FastaRecord],
    params: Cap3Params = Cap3Params(),
    *,
    contig_prefix: str | None = None,
) -> tuple[list[FastaRecord], list[FastaRecord], set[str]]:
    """Run CAP3 on one cluster.

    Returns ``(contigs, singlets, merged_ids)``. Contig ids are
    namespaced by the cluster's protein so concatenating cluster outputs
    never collides.
    """
    members = []
    for tid in cluster.transcript_ids:
        try:
            members.append(transcripts[tid])
        except KeyError:
            raise KeyError(
                f"cluster {cluster.protein_id!r} references unknown "
                f"transcript {tid!r}"
            ) from None
    prefix = contig_prefix or f"{cluster.protein_id}.Contig"
    result = assemble(members, params, contig_prefix=prefix)
    contigs = [c.to_fasta() for c in result.contigs]
    return contigs, list(result.singlets), result.merged_read_ids


def blast2cap3_serial(
    transcripts: Sequence[FastaRecord] | Iterable[FastaRecord],
    hits: Iterable[TabularHit],
    *,
    cap3_params: Cap3Params = Cap3Params(),
    evalue_cutoff: float = 1e-5,
) -> Blast2Cap3Result:
    """Protein-guided assembly, serially, cluster by cluster."""
    transcript_list = list(transcripts)
    by_id = {t.id: t for t in transcript_list}
    if len(by_id) != len(transcript_list):
        raise ValueError("duplicate transcript ids")

    clusters, unaligned = cluster_transcripts(
        hits,
        evalue_cutoff=evalue_cutoff,
        known_transcripts=[t.id for t in transcript_list],
    )

    result = Blast2Cap3Result(
        input_count=len(transcript_list),
        cluster_count=len(clusters),
        mergeable_cluster_count=sum(1 for c in clusters if c.is_mergeable),
    )

    for cluster in clusters:
        if not cluster.is_mergeable:
            result.unjoined.extend(by_id[t] for t in cluster.transcript_ids)
            continue
        contigs, singlets, merged = merge_cluster(
            cluster, by_id, cap3_params
        )
        result.joined.extend(contigs)
        result.unjoined.extend(singlets)
        result.merged_transcript_count += len(merged)

    result.unjoined.extend(by_id[t] for t in unaligned)
    return result
