"""File-level tasks for the Fig. 1 pipeline workflow.

Like :mod:`repro.core.tasks` (the blast2cap3 ovals), these wrap the
pipeline stages as read-files/write-files functions so the same
callables run under the local DAGMan backend. Each function returns a
small count for logging/assertions.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.bio.fasta import FastaRecord, read_fasta, write_fasta
from repro.bio.fastq import read_fastq, write_fastq
from repro.bio.quality import QualityReport, TrimParams, quality_filter
from repro.blast.blastx import BlastXParams, blastx_many
from repro.blast.database import ProteinDatabase
from repro.blast.tabular import read_tabular, write_tabular
from repro.cap3.assembler import Cap3Params, assemble
from repro.core.blast2cap3 import blast2cap3_serial

__all__ = [
    "trim_reads",
    "assemble_reads",
    "reduce_redundancy",
    "blastx_align",
    "blast2cap3_merge",
]


def trim_reads(
    reads_fastq: str | Path,
    out_fastq: str | Path,
    *,
    trim_params: TrimParams = TrimParams(),
) -> int:
    """Preprocessing: quality-trim and filter one read file."""
    report = QualityReport()
    survivors = list(
        quality_filter(read_fastq(reads_fastq), trim_params, report=report)
    )
    write_fastq(out_fastq, survivors)
    return report.passed


def assemble_reads(
    reads_fastq_files: Sequence[str | Path],
    out_fasta: str | Path,
    *,
    cap3_params: Cap3Params = Cap3Params(min_overlap_length=30),
) -> int:
    """Assembly: overlap-assemble the cleaned reads into transcripts."""
    records = []
    for idx, path in enumerate(reads_fastq_files):
        for i, read in enumerate(read_fastq(path)):
            records.append(
                FastaRecord(
                    id=f"f{idx}_r{i}_{read.id.replace('/', '_')}",
                    seq=read.seq,
                )
            )
    result = assemble(records, cap3_params, contig_prefix="asm")
    return write_fasta(out_fasta, result.output_records)


def reduce_redundancy(
    transcripts_fasta: str | Path,
    out_fasta: str | Path,
    *,
    cap3_params: Cap3Params = Cap3Params(),
) -> int:
    """Post-processing: merge redundant transcripts."""
    records = list(read_fasta(transcripts_fasta))
    result = assemble(records, cap3_params, contig_prefix="rr")
    return write_fasta(out_fasta, result.output_records)


def blastx_align(
    transcripts_fasta: str | Path,
    proteins_fasta: str | Path,
    out_tabular: str | Path,
    *,
    blast_params: BlastXParams = BlastXParams(),
) -> int:
    """Alignment: the real BLASTX-like translated search."""
    database = ProteinDatabase.from_fasta(proteins_fasta)
    hits = list(
        blastx_many(read_fasta(transcripts_fasta), database, blast_params)
    )
    return write_tabular(out_tabular, hits)


def blast2cap3_merge(
    transcripts_fasta: str | Path,
    alignments_tabular: str | Path,
    out_fasta: str | Path,
    *,
    cap3_params: Cap3Params = Cap3Params(),
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    executor: str = "process",
) -> int:
    """Post-processing: protein-guided merging (blast2cap3).

    ``jobs`` > 1 fans the per-cluster CAP3 merges out over a process
    pool (``executor="thread"`` for deterministic in-process testing);
    ``cache_dir`` persists per-cluster results content-addressed, so a
    rescue-resubmitted or re-planned task recomputes only what changed.
    Output is identical for every ``jobs``/``cache_dir`` combination.
    """
    transcripts = list(read_fasta(transcripts_fasta))
    hits = list(read_tabular(alignments_tabular))
    if jobs > 1 or cache_dir is not None:
        from repro.core.cache import ResultCache
        from repro.core.parallel import blast2cap3_parallel

        cache = ResultCache(cache_dir) if cache_dir is not None else None
        result = blast2cap3_parallel(
            transcripts,
            hits,
            jobs=jobs,
            cap3_params=cap3_params,
            cache=cache,
            executor=executor,  # type: ignore[arg-type]
        )
    else:
        result = blast2cap3_serial(transcripts, hits, cap3_params=cap3_params)
    return write_fasta(out_fasta, result.output_records)
