"""The Fig. 1 pipeline as a Pegasus workflow.

The paper's Fig. 1 shows the *general* transcriptome assembly pipeline;
its blast2cap3 experiment only workflow-ifies the last stage. This
module closes the loop: the whole pipeline (per-lane preprocessing in
parallel → assembly → redundancy reduction → BLASTX → blast2cap3) as
one abstract workflow, runnable for real under the local DAGMan backend
or modelled on the simulators.

DAG shape::

    reads_1.fastq  reads_2.fastq ... (one trim task per lane, parallel)
         │              │
      trim_1         trim_2
         └──────┬───────┘
             assemble
                │ raw_transcripts.fasta
             reduce_redundancy
                │ transcripts.fasta            proteins.fasta
                ├────────────────────────────────────┐
                │                                blastx_align
                │                                    │ alignments.out
                └──────────────┬─────────────────────┘
                        blast2cap3_merge
                               │
                  final_transcriptome.fasta
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro.dagman.scheduler import DagmanResult, DagmanScheduler
from repro.execution.payloads import TaskCall
from repro.wms.catalogs import (
    ReplicaCatalog,
    SiteCatalog,
    TransformationCatalog,
    TransformationEntry,
    local_site,
)
from repro.wms.dax import ADag, AbstractJob, File
from repro.wms.planner import PlannedWorkflow, PlannerOptions, plan

__all__ = [
    "PIPELINE_FINAL_LFN",
    "build_pipeline_adag",
    "run_pipeline_local",
    "PipelineRunResult",
]

PIPELINE_FINAL_LFN = "final_transcriptome.fasta"

PIPELINE_TRANSFORMATIONS = (
    "trim_reads",
    "assemble_reads",
    "reduce_redundancy",
    "blastx_align",
    "blast2cap3_merge",
)


def build_pipeline_adag(n_lanes: int, *, runtimes: Mapping[str, float] | None = None) -> ADag:
    """The Fig. 1 pipeline with ``n_lanes`` parallel trim tasks."""
    if n_lanes < 1:
        raise ValueError("n_lanes must be >= 1")
    rt = runtimes or {}
    adag = ADag(name=f"transcriptome-pipeline-{n_lanes}lanes")

    proteins = File("proteins.fasta", size=1_000_000)
    raw_assembled = File("raw_transcripts.fasta")
    transcripts = File("transcripts.fasta")
    alignments = File("alignments.out")
    final = File(PIPELINE_FINAL_LFN)

    assemble_job = AbstractJob(
        id="assemble",
        transformation="assemble_reads",
        runtime=rt.get("assemble_reads", 1.0),
    )
    for lane in range(1, n_lanes + 1):
        raw = File(f"reads_{lane}.fastq")
        cleaned = File(f"cleaned_{lane}.fastq")
        adag.add_job(
            AbstractJob(
                id=f"trim_{lane}",
                transformation="trim_reads",
                args={"lane": str(lane)},
                runtime=rt.get("trim_reads", 1.0),
            )
            .add_input(raw)
            .add_output(cleaned)
        )
        assemble_job.add_input(cleaned)
    assemble_job.add_output(raw_assembled)
    adag.add_job(assemble_job)

    adag.add_job(
        AbstractJob(
            id="reduce_redundancy",
            transformation="reduce_redundancy",
            runtime=rt.get("reduce_redundancy", 1.0),
        )
        .add_input(raw_assembled)
        .add_output(transcripts)
    )
    adag.add_job(
        AbstractJob(
            id="blastx_align",
            transformation="blastx_align",
            runtime=rt.get("blastx_align", 1.0),
        )
        .add_input(transcripts)
        .add_input(proteins)
        .add_output(alignments)
    )
    adag.add_job(
        AbstractJob(
            id="blast2cap3_merge",
            transformation="blast2cap3_merge",
            runtime=rt.get("blast2cap3_merge", 1.0),
        )
        .add_input(transcripts)
        .add_input(alignments)
        .add_output(final)
    )
    return adag


def _pipeline_payload_factories(
    workdir: Path,
    lane_paths: Sequence[Path],
    proteins_path: Path,
    *,
    merge_jobs: int = 1,
    cache_dir: str | Path | None = None,
    merge_executor: str = "process",
) -> dict[str, Callable[[Mapping[str, Any]], Callable[[], Any]]]:
    w = str(workdir)
    tasks = "repro.core.pipeline_tasks"
    cleaned = [f"{w}/cleaned_{i}.fastq" for i in range(1, len(lane_paths) + 1)]

    def trim_call(args: Mapping[str, Any]) -> TaskCall:
        lane = int(args["lane"])
        return TaskCall(
            f"{tasks}:trim_reads",
            args=(str(lane_paths[lane - 1]), cleaned[lane - 1]),
        )

    merge_kwargs: dict[str, Any] = {}
    if merge_jobs != 1:
        merge_kwargs["jobs"] = merge_jobs
        merge_kwargs["executor"] = merge_executor
    if cache_dir is not None:
        merge_kwargs["cache_dir"] = str(cache_dir)

    return {
        "trim_reads": trim_call,
        "assemble_reads": lambda args: TaskCall(
            f"{tasks}:assemble_reads",
            args=(cleaned, f"{w}/raw_transcripts.fasta"),
        ),
        "reduce_redundancy": lambda args: TaskCall(
            f"{tasks}:reduce_redundancy",
            args=(f"{w}/raw_transcripts.fasta", f"{w}/transcripts.fasta"),
        ),
        "blastx_align": lambda args: TaskCall(
            f"{tasks}:blastx_align",
            args=(f"{w}/transcripts.fasta", str(proteins_path),
                  f"{w}/alignments.out"),
        ),
        "blast2cap3_merge": lambda args: TaskCall(
            f"{tasks}:blast2cap3_merge",
            args=(f"{w}/transcripts.fasta", f"{w}/alignments.out",
                  f"{w}/{PIPELINE_FINAL_LFN}"),
            kwargs=merge_kwargs,
        ),
    }


@dataclass
class PipelineRunResult:
    """Outcome of a real pipeline workflow run."""

    dagman: DagmanResult
    planned: PlannedWorkflow
    final_output: Path


def run_pipeline_local(
    lane_paths: Sequence[str | Path],
    proteins_path: str | Path,
    workdir: str | Path,
    *,
    max_workers: int = 2,
    executor: str = "process",
    merge_jobs: int = 1,
    cache_dir: str | Path | None = None,
) -> PipelineRunResult:
    """Execute the Fig. 1 pipeline for real under DAGMan.

    ``merge_jobs`` parallelises the final ``blast2cap3_merge`` task's
    per-cluster CAP3 loop inside its payload (the paper's own
    optimisation, applied to the in-task hot path); ``cache_dir``
    persists per-cluster merge results so re-runs skip unchanged work.
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    lanes = [Path(p) for p in lane_paths]

    adag = build_pipeline_adag(len(lanes))
    factories = _pipeline_payload_factories(
        workdir, lanes, Path(proteins_path),
        merge_jobs=merge_jobs, cache_dir=cache_dir,
        # Nested process pools (a pool-worker payload spawning its own
        # pool) deadlock-prone on some platforms; the inner fan-out uses
        # threads unless the outer environment itself runs threaded.
        merge_executor="thread" if executor == "process" else "process",
    )

    sites = SiteCatalog()
    sites.add(local_site())
    transformations = TransformationCatalog()
    for name in PIPELINE_TRANSFORMATIONS:
        transformations.add(
            TransformationEntry(
                name=name,
                installed_sites=frozenset({"local"}),
                payload_factory=factories[name],
            )
        )
    replicas = ReplicaCatalog()
    for i, lane in enumerate(lanes, start=1):
        replicas.add(f"reads_{i}.fastq", str(lane), site="local")
    replicas.add("proteins.fasta", str(proteins_path), site="local")

    planned = plan(
        adag,
        site_name="local",
        sites=sites,
        transformations=transformations,
        replicas=replicas,
        options=PlannerOptions(retries=0),
    )
    from dataclasses import replace as dc_replace

    from repro.execution.local import LocalEnvironment

    noop = TaskCall("repro.execution.payloads:noop")
    for name, job in list(planned.dag.jobs.items()):
        if job.payload is None:
            planned.dag.jobs[name] = dc_replace(job, payload=noop)

    with LocalEnvironment(max_workers=max_workers, executor=executor) as env:
        result = DagmanScheduler(planned.dag, env).run()
    return PipelineRunResult(
        dagman=result,
        planned=planned,
        final_output=workdir / PIPELINE_FINAL_LFN,
    )
