"""``repro-blast2cap3``: run protein-guided assembly from the shell.

Two modes, mirroring the paper's comparison:

* ``--serial`` — the original script's behaviour: one cluster at a
  time, no workflow machinery;
* default — plan the Pegasus-style workflow with ``-n`` partitions and
  execute it on the local backend with real payloads.
"""

from __future__ import annotations

import argparse
import sys
import time

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-blast2cap3",
        description="Protein-guided assembly (blast2cap3), serial or as a workflow.",
    )
    parser.add_argument("--transcripts", required=True,
                        help="assembled transcripts FASTA")
    parser.add_argument("--alignments", required=True,
                        help="BLASTX tabular alignments (outfmt 6)")
    parser.add_argument("--output", required=True,
                        help="merged transcriptome FASTA to write")
    parser.add_argument("-n", "--clusters", type=int, default=4,
                        help="cluster partitions (workflow mode)")
    parser.add_argument("--workers", type=int, default=4,
                        help="local parallelism (workflow mode)")
    parser.add_argument("--serial", action="store_true",
                        help="run the original serial algorithm instead")
    parser.add_argument("--workdir", default=None,
                        help="scratch directory (workflow mode)")
    parser.add_argument("--validate", action="store_true",
                        help="print an assembly validation scorecard")
    args = parser.parse_args(argv)

    start = time.perf_counter()
    if args.serial:
        from repro.bio.fasta import read_fasta, write_fasta
        from repro.blast.tabular import read_tabular
        from repro.core.blast2cap3 import blast2cap3_serial

        transcripts = list(read_fasta(args.transcripts))
        hits = list(read_tabular(args.alignments))
        result = blast2cap3_serial(transcripts, hits)
        write_fasta(args.output, result.output_records)
        elapsed = time.perf_counter() - start
        print(
            f"serial blast2cap3: {result.input_count} transcripts -> "
            f"{result.output_count} sequences "
            f"({100 * result.reduction_fraction:.1f}% reduction) "
            f"in {elapsed:.1f}s"
        )
        if args.validate:
            _print_validation(args.output)
        return 0

    import shutil
    import tempfile

    from repro.bio.fasta import read_fasta
    from repro.core.workflow_factory import run_local

    workdir = args.workdir or tempfile.mkdtemp(prefix="blast2cap3-")
    result = run_local(
        args.transcripts,
        args.alignments,
        workdir,
        n=args.clusters,
        max_workers=args.workers,
    )
    if not result.dagman.success:
        print("workflow FAILED; failed jobs: "
              + ", ".join(result.dagman.failed_jobs), file=sys.stderr)
        return 1
    shutil.copyfile(result.final_output, args.output)
    elapsed = time.perf_counter() - start
    n_out = sum(1 for _ in read_fasta(args.output))
    print(
        f"workflow blast2cap3 (n={args.clusters}, {args.workers} workers): "
        f"{n_out} output sequences in {elapsed:.1f}s "
        f"[{len(result.dagman.trace)} job attempts, workdir {workdir}]"
    )
    if args.validate:
        _print_validation(args.output)
    return 0


def _print_validation(output_path: str) -> None:
    from repro.bio.fasta import read_fasta
    from repro.core.validation import render_validation, validate_assembly

    records = list(read_fasta(output_path))
    print()
    print(render_validation(validate_assembly(records), title=output_path))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
