"""``repro-blast2cap3``: run protein-guided assembly from the shell.

Three modes, mirroring the paper's comparison plus this repo's
in-process port of it:

* ``--serial`` — the original script's behaviour: one cluster at a
  time, no workflow machinery;
* ``--parallel`` — the paper's optimisation without the workflow: the
  per-cluster CAP3 loop fanned out over ``--jobs`` worker processes
  (:func:`repro.core.parallel.blast2cap3_parallel`), bit-identical
  output to ``--serial``;
* default — plan the Pegasus-style workflow with ``-n`` partitions and
  execute it on the local backend with real payloads.

``--cache-dir`` (parallel and workflow modes) persists per-cluster CAP3
results content-addressed, so a repeated run — an n-sweep, a rescue
resubmit — recomputes only what changed; ``--no-cache`` turns it off.
"""

from __future__ import annotations

import argparse
import sys
import time

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-blast2cap3",
        description="Protein-guided assembly (blast2cap3), serial or as a workflow.",
    )
    parser.add_argument("--transcripts", required=True,
                        help="assembled transcripts FASTA")
    parser.add_argument("--alignments", required=True,
                        help="BLASTX tabular alignments (outfmt 6)")
    parser.add_argument("--output", required=True,
                        help="merged transcriptome FASTA to write")
    parser.add_argument("-n", "--clusters", type=int, default=4,
                        help="cluster partitions (workflow/parallel mode)")
    parser.add_argument("--workers", type=int, default=4,
                        help="local parallelism (workflow mode)")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--serial", action="store_true",
                      help="run the original serial algorithm instead")
    mode.add_argument("--parallel", action="store_true",
                      help="run the in-process parallel driver "
                           "(process pool, no workflow machinery)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (parallel mode; default: CPUs)")
    parser.add_argument("--cache-dir", default=None,
                        help="content-addressed result cache directory "
                             "(parallel/workflow mode)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache even when "
                             "--cache-dir is set")
    parser.add_argument("--workdir", default=None,
                        help="scratch directory (workflow mode)")
    parser.add_argument("--validate", action="store_true",
                        help="print an assembly validation scorecard")
    args = parser.parse_args(argv)

    cache_dir = None if args.no_cache else args.cache_dir

    start = time.perf_counter()
    if args.serial:
        from repro.bio.fasta import read_fasta, write_fasta
        from repro.blast.tabular import read_tabular
        from repro.core.blast2cap3 import blast2cap3_serial

        transcripts = list(read_fasta(args.transcripts))
        hits = list(read_tabular(args.alignments))
        result = blast2cap3_serial(transcripts, hits)
        write_fasta(args.output, result.output_records)
        elapsed = time.perf_counter() - start
        print(
            f"serial blast2cap3: {result.input_count} transcripts -> "
            f"{result.output_count} sequences "
            f"({100 * result.reduction_fraction:.1f}% reduction) "
            f"in {elapsed:.1f}s"
        )
        if args.validate:
            _print_validation(args.output)
        return 0

    if args.parallel:
        from repro.bio.fasta import read_fasta, write_fasta
        from repro.blast.tabular import read_tabular
        from repro.core.cache import ResultCache
        from repro.core.parallel import blast2cap3_parallel

        cache = ResultCache(cache_dir) if cache_dir else None
        transcripts = list(read_fasta(args.transcripts))
        hits = list(read_tabular(args.alignments))
        result = blast2cap3_parallel(
            transcripts, hits,
            jobs=args.jobs, n=args.clusters, cache=cache,
        )
        write_fasta(args.output, result.output_records)
        elapsed = time.perf_counter() - start
        cache_note = ""
        if cache is not None:
            cache_note = (
                f", cache {cache.stats.hits} hits / "
                f"{cache.stats.misses} misses"
            )
        print(
            f"parallel blast2cap3 (n={args.clusters}, "
            f"jobs={args.jobs or 'auto'}): "
            f"{result.input_count} transcripts -> "
            f"{result.output_count} sequences "
            f"({100 * result.reduction_fraction:.1f}% reduction) "
            f"in {elapsed:.1f}s{cache_note}"
        )
        if args.validate:
            _print_validation(args.output)
        return 0

    import shutil
    import tempfile

    from repro.bio.fasta import read_fasta
    from repro.core.workflow_factory import run_local

    workdir = args.workdir or tempfile.mkdtemp(prefix="blast2cap3-")
    result = run_local(
        args.transcripts,
        args.alignments,
        workdir,
        n=args.clusters,
        max_workers=args.workers,
        cache_dir=cache_dir,
    )
    if not result.dagman.success:
        print("workflow FAILED; failed jobs: "
              + ", ".join(result.dagman.failed_jobs), file=sys.stderr)
        return 1
    shutil.copyfile(result.final_output, args.output)
    elapsed = time.perf_counter() - start
    n_out = sum(1 for _ in read_fasta(args.output))
    print(
        f"workflow blast2cap3 (n={args.clusters}, {args.workers} workers): "
        f"{n_out} output sequences in {elapsed:.1f}s "
        f"[{len(result.dagman.trace)} job attempts, workdir {workdir}]"
    )
    if args.validate:
        _print_validation(args.output)
    return 0


def _print_validation(output_path: str) -> None:
    from repro.bio.fasta import read_fasta
    from repro.core.validation import render_validation, validate_assembly

    records = list(read_fasta(output_path))
    print()
    print(render_validation(validate_assembly(records), title=output_path))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
