"""Content-addressed result cache for blast2cap3's expensive payloads.

The paper re-plans the *same* inputs at many ``n`` values (10, 100, 300,
500) and re-runs failed workflows through rescue DAGs — both cases
recompute per-cluster CAP3 merges and BLASTX hit batches whose inputs
have not changed. This module keys those results by the SHA-256 of
exactly what determines them (member sequences + parameters), so an
n-sweep or a :func:`~repro.resilience.recovery.run_with_recovery`
rescue round recomputes only what actually changed.

Store layout: one JSON file per entry under
``<root>/<kind>/<key[:2]>/<key>.json``, written with the atomic-write
helpers, so a crash mid-``put`` never leaves a truncated entry behind
— and a truncated or hand-corrupted entry is *treated as a miss* and
recomputed, never a crash.

Observability: every lookup emits a ``cache.hit`` / ``cache.miss``
event on an optional :class:`~repro.observe.bus.EventBus` and bumps
``cache_hits_total{kind=…}`` / ``cache_misses_total{kind=…}`` counters
on an optional :class:`~repro.observe.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.bio.fasta import FastaRecord
from repro.blast.tabular import TabularHit, parse_line
from repro.cap3.assembler import Cap3Params
from repro.util.iolib import atomic_write

if TYPE_CHECKING:  # optional wire-ins, never required at runtime
    from repro.blast.blastx import BlastXParams
    from repro.blast.database import ProteinDatabase
    from repro.core.clusters import ProteinCluster
    from repro.observe.bus import EventBus
    from repro.observe.metrics import MetricsRegistry

__all__ = [
    "CacheStats",
    "ResultCache",
    "cluster_merge_key",
    "cached_merge_cluster",
    "encode_cluster_merge",
    "decode_cluster_merge",
    "database_digest",
    "blastx_batch_key",
    "cached_blastx_hits",
]


@dataclass
class CacheStats:
    """Lookup/store accounting for one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """A persistent content-addressed key → JSON-value store.

    Keys are hex SHA-256 digests computed by the domain helpers below;
    values are JSON-able objects. ``get`` returns ``None`` on a miss
    *or* on a corrupt entry (truncated JSON, wrong schema) — corruption
    is counted separately in :attr:`stats` but behaves like a miss, so
    a damaged store degrades to recomputation, never to a crash.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        bus: "EventBus | None" = None,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        self.root = Path(root)
        self.bus = bus
        self.registry = registry
        self.stats = CacheStats()

    def path_for(self, kind: str, key: str) -> Path:
        """Where an entry lives (two-level fan-out keeps dirs small)."""
        return self.root / kind / key[:2] / f"{key}.json"

    def _observe(self, hit: bool, kind: str, key: str) -> None:
        if self.registry is not None:
            name = "cache_hits_total" if hit else "cache_misses_total"
            self.registry.counter(name, {"kind": kind}).inc()
        if self.bus is not None:
            from repro.observe.events import EventKind, RunEvent

            self.bus.emit(
                RunEvent(
                    EventKind.CACHE_HIT if hit else EventKind.CACHE_MISS,
                    time.time(),
                    detail={"kind": kind, "key": key},
                )
            )

    def get(self, kind: str, key: str) -> object | None:
        """The stored value, or ``None`` on miss/corruption."""
        path = self.path_for(kind, key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
            if not isinstance(entry, dict) or entry.get("key") != key:
                raise ValueError("schema mismatch")
            value = entry["value"]
        except FileNotFoundError:
            self.stats.misses += 1
            self._observe(False, kind, key)
            return None
        except (OSError, ValueError, KeyError):
            # Truncated write, bit rot, or a foreign file: recompute.
            self.stats.corrupt += 1
            self.stats.misses += 1
            self._observe(False, kind, key)
            return None
        self.stats.hits += 1
        self._observe(True, kind, key)
        return value

    def put(self, kind: str, key: str, value: object) -> None:
        """Store ``value`` under ``(kind, key)`` atomically."""
        entry = {"key": key, "kind": kind, "value": value}
        atomic_write(
            self.path_for(kind, key),
            json.dumps(entry, separators=(",", ":"), sort_keys=True),
        )
        self.stats.puts += 1


def _digest(parts: Iterable[object]) -> str:
    """SHA-256 over a canonical JSON rendering of ``parts``."""
    h = hashlib.sha256()
    for part in parts:
        h.update(
            json.dumps(part, separators=(",", ":"), sort_keys=True).encode()
        )
        h.update(b"\x00")
    return h.hexdigest()


def _params_dict(params: object) -> dict:
    """A dataclass's fields as JSON-able primitives (nested OK)."""
    return dataclasses.asdict(params)  # type: ignore[call-overload]


def cluster_merge_key(
    cluster: "ProteinCluster",
    transcripts: Mapping[str, FastaRecord],
    params: Cap3Params,
    *,
    contig_prefix: str | None = None,
) -> str:
    """Key for one cluster's CAP3 merge: member sequences + params.

    The member *order* is part of the key — CAP3 layout tie-breaks
    depend on it, so reordered members are a different computation.
    """
    members = [
        (tid, transcripts[tid].seq, transcripts[tid].description)
        for tid in cluster.transcript_ids
    ]
    return _digest(
        [
            "cluster-merge/v1",
            cluster.protein_id,
            contig_prefix or f"{cluster.protein_id}.Contig",
            members,
            _params_dict(params),
        ]
    )


MergeOutcome = tuple[list[FastaRecord], list[FastaRecord], set[str]]


def encode_cluster_merge(outcome: MergeOutcome) -> dict:
    """Render a ``(contigs, singlets, merged_ids)`` merge outcome as the
    JSON-able cache value. Singlets are cluster members, so only their
    ids are stored."""
    contigs, singlets, merged = outcome
    return {
        "contigs": [[c.id, c.seq, c.description] for c in contigs],
        "singlets": [s.id for s in singlets],
        "merged": sorted(merged),
    }


def decode_cluster_merge(
    value: object, transcripts: Mapping[str, FastaRecord]
) -> MergeOutcome | None:
    """Rebuild a merge outcome from a cache value, or ``None`` when the
    entry doesn't decode (schema drift — treated as a miss).

    Singlet records are reconstructed from ``transcripts``, which is
    bit-identical to the uncached return because ``merge_cluster``
    returns the input records themselves as singlets.
    """
    try:
        contigs = [
            FastaRecord(id=c[0], seq=c[1], description=c[2])
            for c in value["contigs"]  # type: ignore[index]
        ]
        singlets = [transcripts[tid] for tid in value["singlets"]]  # type: ignore[index]
        merged = set(value["merged"])  # type: ignore[index]
    except (KeyError, IndexError, TypeError, ValueError):
        return None
    return contigs, singlets, merged


def cached_merge_cluster(
    cache: ResultCache | None,
    cluster: "ProteinCluster",
    transcripts: Mapping[str, FastaRecord],
    params: Cap3Params = Cap3Params(),
    *,
    contig_prefix: str | None = None,
) -> MergeOutcome:
    """:func:`repro.core.blast2cap3.merge_cluster`, through the cache.

    With ``cache=None`` this is exactly ``merge_cluster``.
    """
    from repro.core.blast2cap3 import merge_cluster

    if cache is None:
        return merge_cluster(
            cluster, transcripts, params, contig_prefix=contig_prefix
        )

    key = cluster_merge_key(
        cluster, transcripts, params, contig_prefix=contig_prefix
    )
    value = cache.get(CLUSTER_MERGE_KIND, key)
    if value is not None:
        outcome = decode_cluster_merge(value, transcripts)
        if outcome is not None:
            return outcome
        cache.stats.corrupt += 1

    outcome = merge_cluster(
        cluster, transcripts, params, contig_prefix=contig_prefix
    )
    cache.put(CLUSTER_MERGE_KIND, key, encode_cluster_merge(outcome))
    return outcome


def database_digest(database: "ProteinDatabase") -> str:
    """Content digest of a protein database (records + word size)."""
    return _digest(
        [
            "protein-db/v1",
            database.word_size,
            [(r.id, r.seq) for r in database.records],
        ]
    )


def blastx_batch_key(
    batch: Sequence[FastaRecord],
    db_digest: str,
    params: "BlastXParams",
) -> str:
    """Key for one BLASTX query batch against one database."""
    return _digest(
        [
            "blastx-batch/v1",
            db_digest,
            [(r.id, r.seq) for r in batch],
            _params_dict(params),
        ]
    )


def cached_blastx_hits(
    cache: ResultCache | None,
    transcripts: Sequence[FastaRecord],
    database: "ProteinDatabase",
    params: "BlastXParams | None" = None,
    *,
    batch_size: int = 32,
) -> list[TabularHit]:
    """BLASTX the transcripts, caching hit batches by content.

    Queries are processed in fixed-size batches; each batch's hits are
    stored as tabular lines (the format round-trips exactly), so a
    re-run over unchanged transcripts + database + params reads every
    batch back instead of searching.
    """
    from repro.blast.blastx import BlastXParams, blastx_many

    params = params or BlastXParams()
    if cache is None:
        return list(blastx_many(transcripts, database, params))
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")

    digest = database_digest(database)
    hits: list[TabularHit] = []
    for start in range(0, len(transcripts), batch_size):
        batch = transcripts[start : start + batch_size]
        key = blastx_batch_key(batch, digest, params)
        value = cache.get("blastx-batch", key)
        if isinstance(value, list):
            try:
                hits.extend(parse_line(line) for line in value)
                continue
            except (ValueError, TypeError):
                cache.stats.corrupt += 1
        batch_hits = list(blastx_many(batch, database, params))
        cache.put("blastx-batch", key, [h.format() for h in batch_hits])
        hits.extend(batch_hits)
    return hits


#: Default cache-kind names, for callers that report per-kind stats.
CLUSTER_MERGE_KIND = "cluster-merge"
BLASTX_BATCH_KIND = "blastx-batch"
