"""The general transcriptome assembly pipeline of the paper's Fig. 1.

Preprocessing (cleaning/filtering) → assembly → post-processing
(redundancy reduction, protein-guided merging, validation). Tool
substitutions, per DESIGN.md: quality trimming stands in for
Sickle/Scythe, our OLC assembler for the de-novo assembler, and
blast2cap3 (with our BLASTX + CAP3) for the post-processing merge.

Each stage reports its input/output counts and duration, which is what
``benchmarks/bench_fig1_pipeline.py`` prints as the figure's table.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.bio.fasta import FastaRecord
from repro.bio.fastq import FastqRecord
from repro.bio.quality import QualityReport, TrimParams, quality_filter
from repro.blast.blastx import BlastXParams
from repro.blast.database import ProteinDatabase
from repro.cap3.assembler import Cap3Params, assemble
from repro.core.blast2cap3 import Blast2Cap3Result, blast2cap3_serial
from repro.core.cache import ResultCache, cached_blastx_hits
from repro.core.parallel import ExecutorKind, blast2cap3_parallel

__all__ = [
    "PipelineConfig",
    "StageReport",
    "PipelineResult",
    "n50",
    "run_transcriptome_pipeline",
]


def n50(lengths: Iterable[int]) -> int:
    """The standard assembly contiguity statistic.

    >>> n50([2, 2, 2, 3, 3, 4, 8, 8])
    8
    """
    sizes = sorted(lengths, reverse=True)
    total = sum(sizes)
    if total == 0:
        return 0
    running = 0
    for size in sizes:
        running += size
        if 2 * running >= total:
            return size
    return sizes[-1]  # pragma: no cover - loop always returns


@dataclass(frozen=True)
class PipelineConfig:
    """Per-stage knobs.

    ``jobs`` > 1 switches the protein-guided merge to the parallel
    driver (:func:`~repro.core.parallel.blast2cap3_parallel`);
    ``cache`` threads a content-addressed result store under both the
    BLASTX stage (hit batches) and the CAP3 merges, so a re-run over
    unchanged inputs recomputes nothing.
    """

    trim: TrimParams = TrimParams()
    assembly: Cap3Params = Cap3Params(min_overlap_length=30)
    merge: Cap3Params = Cap3Params()
    blast: BlastXParams = BlastXParams()
    protein_guided: bool = True
    jobs: int = 1
    executor: ExecutorKind = "process"
    cache: ResultCache | None = None


@dataclass(frozen=True)
class StageReport:
    """One pipeline stage's accounting."""

    name: str
    input_count: int
    output_count: int
    seconds: float

    def __post_init__(self) -> None:
        if self.input_count < 0 or self.output_count < 0:
            raise ValueError("counts must be >= 0")


@dataclass
class PipelineResult:
    """Final transcripts plus the per-stage report."""

    transcripts: list[FastaRecord]
    stages: list[StageReport] = field(default_factory=list)
    quality: QualityReport | None = None
    blast2cap3: Blast2Cap3Result | None = None

    @property
    def n50(self) -> int:
        return n50(len(t) for t in self.transcripts)


def run_transcriptome_pipeline(
    reads: Sequence[FastqRecord],
    protein_db: Sequence[FastaRecord] | None = None,
    config: PipelineConfig = PipelineConfig(),
) -> PipelineResult:
    """Run the Fig. 1 pipeline end to end at laptop scale.

    ``protein_db`` enables the protein-guided post-processing stage;
    without it the pipeline stops after redundancy reduction.
    """
    stages: list[StageReport] = []

    # -- preprocessing: data cleaning and filtering ----------------------
    t0 = time.perf_counter()
    quality = QualityReport()
    cleaned = list(quality_filter(reads, config.trim, report=quality))
    stages.append(
        StageReport(
            name="preprocess(quality-trim+filter)",
            input_count=len(reads),
            output_count=len(cleaned),
            seconds=time.perf_counter() - t0,
        )
    )

    # -- assembly: overlap assembly of the cleaned reads ------------------
    t0 = time.perf_counter()
    read_records = [
        FastaRecord(id=f"r{i}_{r.id.replace('/', '_')}", seq=r.seq)
        for i, r in enumerate(cleaned)
    ]
    assembly = assemble(read_records, config.assembly, contig_prefix="asm")
    transcripts = assembly.output_records
    stages.append(
        StageReport(
            name="assemble(overlap-layout-consensus)",
            input_count=len(read_records),
            output_count=len(transcripts),
            seconds=time.perf_counter() - t0,
        )
    )

    # -- post-processing: redundancy reduction ----------------------------
    t0 = time.perf_counter()
    reduced = assemble(transcripts, config.merge, contig_prefix="rr")
    transcripts = reduced.output_records
    stages.append(
        StageReport(
            name="postprocess(redundancy-reduction)",
            input_count=stages[-1].output_count,
            output_count=len(transcripts),
            seconds=time.perf_counter() - t0,
        )
    )

    b2c3_result: Blast2Cap3Result | None = None
    if config.protein_guided and protein_db:
        # -- post-processing: protein-guided merging (blast2cap3) --------
        t0 = time.perf_counter()
        database = ProteinDatabase(records=list(protein_db))
        hits = cached_blastx_hits(
            config.cache, transcripts, database, config.blast
        )
        if config.jobs > 1 or config.cache is not None:
            b2c3_result = blast2cap3_parallel(
                transcripts,
                hits,
                jobs=config.jobs,
                executor=config.executor,
                cache=config.cache,
            )
        else:
            b2c3_result = blast2cap3_serial(transcripts, hits)
        transcripts = b2c3_result.output_records
        stages.append(
            StageReport(
                name="postprocess(blast2cap3)",
                input_count=b2c3_result.input_count,
                output_count=len(transcripts),
                seconds=time.perf_counter() - t0,
            )
        )

    return PipelineResult(
        transcripts=transcripts,
        stages=stages,
        quality=quality,
        blast2cap3=b2c3_result,
    )
