"""The parallel blast2cap3 driver — the paper's contribution, in-process.

The paper turns blast2cap3's serial per-cluster CAP3 loop (100 h) into
a Pegasus DAG of ``n`` parallel ``run_cap3`` tasks (~3 h). This module
is the same parallelisation without the workflow machinery: partition
the clusters with the existing LPT packer, fan the per-group CAP3
merges out over a :class:`~concurrent.futures.ProcessPoolExecutor`
(threads or inline execution as fallbacks), then reassemble the
outputs **in the serial driver's cluster order**, so the result is
record-for-record identical to :func:`blast2cap3_serial` for every
``jobs``/``n``/``strategy`` choice.

A :class:`~repro.core.cache.ResultCache` slots underneath: per-cluster
merges are looked up by content key before anything is dispatched, so
a warm cache (an n-sweep re-plan, a rescue-resubmit round) performs
zero CAP3 recomputations — only the lookups.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Iterable, Literal, Sequence

from repro.bio.fasta import FastaRecord
from repro.blast.tabular import TabularHit
from repro.cap3.assembler import Cap3Params
from repro.core.blast2cap3 import Blast2Cap3Result, merge_cluster
from repro.core.cache import (
    CLUSTER_MERGE_KIND,
    ResultCache,
    cluster_merge_key,
    decode_cluster_merge,
    encode_cluster_merge,
)
from repro.core.clusters import ProteinCluster, cluster_transcripts
from repro.core.partition import Strategy, partition_clusters

__all__ = ["blast2cap3_parallel", "ExecutorKind"]

ExecutorKind = Literal["process", "thread", "serial"]

#: One work unit shipped to a worker: the cluster's position in the
#: serial iteration order, the cluster, and its member records.
_WorkItem = tuple[int, ProteinCluster, list[FastaRecord]]
#: What comes back: position, contigs, singlets, merged ids.
_WorkResult = tuple[int, list[FastaRecord], list[FastaRecord], set[str]]


def _merge_group(
    group: list[_WorkItem], params: Cap3Params
) -> list[_WorkResult]:
    """Merge every cluster of one partition (runs inside a worker).

    Module-level and built from picklable pieces only, so the process
    pool can ship it; the thread pool and inline paths reuse it.
    """
    out: list[_WorkResult] = []
    for idx, cluster, members in group:
        by_id = {m.id: m for m in members}
        contigs, singlets, merged = merge_cluster(cluster, by_id, params)
        out.append((idx, contigs, singlets, merged))
    return out


def _default_jobs() -> int:
    return max(1, os.cpu_count() or 2)


def blast2cap3_parallel(
    transcripts: Sequence[FastaRecord] | Iterable[FastaRecord],
    hits: Iterable[TabularHit],
    *,
    jobs: int | None = None,
    n: int | None = None,
    strategy: Strategy = "balanced",
    cap3_params: Cap3Params = Cap3Params(),
    evalue_cutoff: float = 1e-5,
    cache: ResultCache | None = None,
    executor: ExecutorKind = "process",
) -> Blast2Cap3Result:
    """Protein-guided assembly with the per-cluster loop parallelised.

    Parameters mirror the paper's experiment: ``n`` is the partition
    count (their 10/100/300/500 sweep; defaults to ``jobs``), ``jobs``
    the worker-slot count (defaults to the CPU count), ``strategy``
    the cluster packer (``"balanced"`` LPT flattens the straggler
    effect the paper observed with naive splitting). ``executor``
    selects real processes (CPU-bound CAP3 work), threads
    (deterministic under coverage/debug tooling), or inline execution.

    Output is record-for-record identical to
    :func:`~repro.core.blast2cap3.blast2cap3_serial` — same records,
    same order, same accounting — because per-cluster results are
    reassembled in the serial driver's iteration order regardless of
    how partitions were packed or which worker finished first.

    With ``cache`` given, per-cluster merges are served from the
    content-addressed store when present and written back when not.
    """
    if jobs is None:
        jobs = _default_jobs()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if n is None:
        n = jobs
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")

    transcript_list = list(transcripts)
    by_id = {t.id: t for t in transcript_list}
    if len(by_id) != len(transcript_list):
        raise ValueError("duplicate transcript ids")

    clusters, unaligned = cluster_transcripts(
        hits,
        evalue_cutoff=evalue_cutoff,
        known_transcripts=[t.id for t in transcript_list],
    )

    result = Blast2Cap3Result(
        input_count=len(transcript_list),
        cluster_count=len(clusters),
        mergeable_cluster_count=sum(1 for c in clusters if c.is_mergeable),
    )

    # -- cache pass: serve what we can, collect the rest ----------------
    outcomes: dict[int, tuple[list[FastaRecord], list[FastaRecord], set[str]]] = {}
    pending: list[tuple[int, ProteinCluster]] = []
    for idx, cluster in enumerate(clusters):
        if not cluster.is_mergeable:
            continue
        if cache is not None:
            key = cluster_merge_key(cluster, by_id, cap3_params)
            value = cache.get(CLUSTER_MERGE_KIND, key)
            if value is not None:
                outcome = decode_cluster_merge(value, by_id)
                if outcome is not None:
                    outcomes[idx] = outcome
                    continue
                cache.stats.corrupt += 1
        pending.append((idx, cluster))

    # -- partition pass: LPT-pack the remaining clusters into n groups --
    if pending:
        index_of = {cluster.protein_id: idx for idx, cluster in pending}
        groups = partition_clusters(
            [cluster for _, cluster in pending], n, strategy=strategy
        )
        work: list[list[_WorkItem]] = []
        for group in groups:
            if not group:
                continue
            work.append(
                [
                    (
                        index_of[cluster.protein_id],
                        cluster,
                        [by_id[tid] for tid in cluster.transcript_ids],
                    )
                    for cluster in group
                ]
            )

        # -- fan-out pass -----------------------------------------------
        if jobs == 1 or executor == "serial" or len(work) <= 1:
            batches = [_merge_group(group, cap3_params) for group in work]
        else:
            pool: Executor
            if executor == "process":
                pool = ProcessPoolExecutor(max_workers=min(jobs, len(work)))
            elif executor == "thread":
                pool = ThreadPoolExecutor(max_workers=min(jobs, len(work)))
            else:
                raise ValueError(f"unknown executor: {executor!r}")
            with pool:
                futures = [
                    pool.submit(_merge_group, group, cap3_params)
                    for group in work
                ]
                batches = [f.result() for f in futures]

        cluster_at = dict(pending)
        for batch in batches:
            for idx, contigs, singlets, merged in batch:
                outcomes[idx] = (contigs, singlets, merged)
                if cache is not None:
                    cache.put(
                        CLUSTER_MERGE_KIND,
                        cluster_merge_key(cluster_at[idx], by_id, cap3_params),
                        encode_cluster_merge((contigs, singlets, merged)),
                    )

    # -- reassembly pass: exactly the serial driver's loop --------------
    for idx, cluster in enumerate(clusters):
        if not cluster.is_mergeable:
            result.unjoined.extend(by_id[t] for t in cluster.transcript_ids)
            continue
        contigs, singlets, merged = outcomes[idx]
        result.joined.extend(contigs)
        result.unjoined.extend(singlets)
        result.merged_transcript_count += len(merged)

    result.unjoined.extend(by_id[t] for t in unaligned)
    return result
