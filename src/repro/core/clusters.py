"""Clustering transcripts by shared protein hit.

The heart of protein-guided assembly: BLASTX aligns each transcript
against a close-relative protein database, and transcripts whose *best*
hit is the same protein are assumed to be fragments (or redundant
copies) of the same gene's transcript — so they are merged together with
CAP3 rather than with the whole dataset at once. This both bounds CAP3's
memory/time (the paper's motivation) and avoids artificially fused
sequences between unrelated transcripts that merely share repeats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.blast.tabular import TabularHit

__all__ = ["ProteinCluster", "cluster_transcripts", "best_hits"]


@dataclass(frozen=True)
class ProteinCluster:
    """Transcripts that share a common best protein hit.

    ``protein_id`` is the BLASTX subject; ``transcript_ids`` preserves
    first-seen order (deterministic given the alignment file order).
    """

    protein_id: str
    transcript_ids: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.protein_id:
            raise ValueError("protein_id must be non-empty")
        if len(set(self.transcript_ids)) != len(self.transcript_ids):
            raise ValueError("duplicate transcript in cluster")

    def __len__(self) -> int:
        return len(self.transcript_ids)

    @property
    def is_mergeable(self) -> bool:
        """Only clusters with >= 2 transcripts are worth a CAP3 run."""
        return len(self.transcript_ids) >= 2


def best_hits(
    hits: Iterable[TabularHit],
    *,
    evalue_cutoff: float = 1e-5,
) -> dict[str, TabularHit]:
    """Best (lowest e-value, then highest bit score) hit per transcript.

    Only hits with ``evalue`` **strictly below** ``evalue_cutoff`` are
    kept, matching the original blast2cap3 script's pre-filtering
    (``evalue < cutoff``); a hit at exactly the cutoff is discarded.
    """
    best: dict[str, TabularHit] = {}
    for hit in hits:
        if hit.evalue >= evalue_cutoff:
            continue
        current = best.get(hit.qseqid)
        if (
            current is None
            or (hit.evalue, -hit.bitscore) < (current.evalue, -current.bitscore)
        ):
            best[hit.qseqid] = hit
    return best


def cluster_transcripts(
    hits: Iterable[TabularHit],
    *,
    evalue_cutoff: float = 1e-5,
    known_transcripts: Sequence[str] | None = None,
) -> tuple[list[ProteinCluster], list[str]]:
    """Group transcripts into protein clusters.

    Returns ``(clusters, unaligned)``: one cluster per protein that is
    some transcript's best hit, plus (when ``known_transcripts`` is
    given) the transcripts that had no acceptable hit at all — those
    bypass CAP3 and are carried to the output unmerged.

    Cluster order follows the first appearance of each protein in the
    hit stream, which makes partitioning deterministic.
    """
    chosen = best_hits(hits, evalue_cutoff=evalue_cutoff)

    by_protein: dict[str, list[str]] = {}
    for transcript_id, hit in chosen.items():
        by_protein.setdefault(hit.sseqid, []).append(transcript_id)

    clusters = [
        ProteinCluster(protein_id=pid, transcript_ids=tuple(tids))
        for pid, tids in by_protein.items()
    ]

    unaligned: list[str] = []
    if known_transcripts is not None:
        aligned = set(chosen)
        unaligned = [t for t in known_transcripts if t not in aligned]
    return clusters, unaligned
