"""blast2cap3: protein-guided assembly — the paper's subject system.

The serial algorithm (faithful to Vince Buffalo's original script):

1. load the assembled transcripts (``transcripts.fasta``),
2. parse the BLASTX tabular alignments (``alignments.out``),
3. cluster transcripts by shared best protein hit,
4. pass each cluster to CAP3 and collect the merged contigs,
5. concatenate contigs with every transcript that joined nothing.

The workflow decomposition (Figs. 2–3 of the paper) re-expresses steps
3–5 as a DAG whose ``run_cap3`` tasks over *n* cluster partitions run in
parallel; :mod:`repro.core.workflow_factory` builds those DAGs for the
Sandhills and OSG variants. :mod:`repro.core.parallel` is the same
parallelisation in-process (a process pool over LPT-packed cluster
partitions), and :mod:`repro.core.cache` the content-addressed result
store that lets n-sweeps and rescue rounds skip unchanged work.
"""

from repro.core.blast2cap3 import Blast2Cap3Result, blast2cap3_serial
from repro.core.cache import CacheStats, ResultCache
from repro.core.clusters import ProteinCluster, cluster_transcripts
from repro.core.parallel import blast2cap3_parallel
from repro.core.partition import partition_clusters

__all__ = [
    "ProteinCluster",
    "cluster_transcripts",
    "Blast2Cap3Result",
    "blast2cap3_serial",
    "blast2cap3_parallel",
    "CacheStats",
    "ResultCache",
    "partition_clusters",
]
