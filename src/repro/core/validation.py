"""Assembly validation — the Fig. 1 pipeline's final checkpoint.

Quantifies an assembly along the axes transcriptome papers report:

* **contiguity** — sequence count, total bases, N50, length stats;
* **coding potential** — fraction of sequences carrying a long ORF;
* **reference recovery** — fraction of the reference proteins covered
  by some transcript's BLASTX hit (needs a protein database);
* **ground-truth fidelity** — with the generator's origin map:
  per-gene recovery and the chimera (fused-genes) rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Mapping, Sequence

from repro.bio.fasta import FastaRecord
from repro.bio.orf import longest_orf
from repro.blast.blastx import BlastXParams, blastx_many
from repro.blast.database import ProteinDatabase
from repro.core.pipeline import n50
from repro.util.tables import Table

__all__ = ["ValidationReport", "validate_assembly", "render_validation"]


@dataclass
class ValidationReport:
    """The per-assembly scorecard."""

    sequence_count: int
    total_bases: int
    n50: int
    mean_length: float
    max_length: int
    orf_fraction: float = 0.0
    #: protein id -> best coverage fraction achieved by any transcript
    reference_coverage: dict[str, float] = field(default_factory=dict)
    reference_recovered: float = 0.0
    chimera_count: int | None = None

    @property
    def references_hit(self) -> int:
        return sum(1 for c in self.reference_coverage.values() if c > 0)


def validate_assembly(
    transcripts: Sequence[FastaRecord],
    *,
    protein_db: Sequence[FastaRecord] | None = None,
    min_orf_aa: int = 50,
    recovery_coverage: float = 0.7,
    blast_params: BlastXParams = BlastXParams(),
    origin: Mapping[str, str] | None = None,
) -> ValidationReport:
    """Score an assembly; all arguments beyond the transcripts are
    optional refinements.

    ``origin`` maps *member/read* ids to gene ids (generator ground
    truth); a transcript whose description or id embeds members from
    more than one gene counts as a chimera — callers with contig
    membership should pass ``origin`` plus member-bearing ids (the CAP3
    contig ids produced by blast2cap3 qualify).
    """
    if not transcripts:
        return ValidationReport(
            sequence_count=0, total_bases=0, n50=0, mean_length=0.0,
            max_length=0,
        )
    lengths = [len(t) for t in transcripts]
    report = ValidationReport(
        sequence_count=len(transcripts),
        total_bases=sum(lengths),
        n50=n50(lengths),
        mean_length=mean(lengths),
        max_length=max(lengths),
    )

    with_orf = sum(
        1
        for t in transcripts
        if longest_orf(t.seq, min_length_aa=min_orf_aa, require_start=False)
        is not None
    )
    report.orf_fraction = with_orf / len(transcripts)

    if protein_db:
        database = ProteinDatabase(records=list(protein_db))
        coverage = {p.id: 0.0 for p in protein_db}
        for hit in blastx_many(transcripts, database, blast_params):
            span = abs(hit.send - hit.sstart) + 1
            protein_len = len(database[hit.sseqid].seq)
            coverage[hit.sseqid] = max(
                coverage[hit.sseqid], span / protein_len
            )
        report.reference_coverage = coverage
        report.reference_recovered = sum(
            1 for c in coverage.values() if c >= recovery_coverage
        ) / len(coverage)

    if origin is not None:
        chimeras = 0
        for t in transcripts:
            genes = {
                origin[token]
                for token in _member_tokens(t)
                if token in origin
            }
            if len(genes) > 1:
                chimeras += 1
        report.chimera_count = chimeras
    return report


def _member_tokens(record: FastaRecord) -> list[str]:
    """Candidate member ids embedded in a record's id/description."""
    tokens = [record.id]
    tokens.extend(record.description.replace("=", " ").split())
    # CAP3-namespaced contigs: "<protein>.ContigN"
    if ".Contig" in record.id:
        tokens.append(record.id.split(".Contig")[0])
    return tokens


def render_validation(report: ValidationReport, *, title: str = "assembly") -> str:
    """Monospace scorecard."""
    table = Table(["metric", "value"], title=f"Validation — {title}")
    table.add_row("sequences", report.sequence_count)
    table.add_row("total bases", report.total_bases)
    table.add_row("N50 (bp)", report.n50)
    table.add_row("mean length (bp)", round(report.mean_length, 1))
    table.add_row("max length (bp)", report.max_length)
    table.add_row("with ORF", f"{100 * report.orf_fraction:.1f}%")
    if report.reference_coverage:
        table.add_row(
            "reference proteins hit",
            f"{report.references_hit}/{len(report.reference_coverage)}",
        )
        table.add_row(
            "reference recovered (>=70% cov)",
            f"{100 * report.reference_recovered:.1f}%",
        )
    if report.chimera_count is not None:
        table.add_row("chimeric sequences", report.chimera_count)
    return table.render()
