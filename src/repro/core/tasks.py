"""File-level task implementations for the blast2cap3 workflow.

Each function here is one oval in the paper's Fig. 2: it reads input
files and writes output files, nothing else, so the same callables can
be driven by the local executor (real runs) or modelled by the
simulator (paper-scale runs). All functions take explicit paths —
the workflow planner decides where those paths live.

Task inventory (matching the figure's labels):

* :func:`create_transcript_list` — ``transcripts.fasta`` → ``transcripts_dict.txt``
* :func:`create_alignment_list` — ``alignments.out`` → ``alignments.list``
* :func:`split_alignments` — ``alignments.out`` → ``protein_1.txt`` … ``protein_n.txt``
* :func:`run_cap3` — one partition → ``joined_i.fasta`` + ``merged_i.txt``
* :func:`merge_joined` — all ``joined_i.fasta`` → ``joined.fasta``
* :func:`merge_unjoined` — transcripts minus merged ids → ``unjoined.fasta``
* :func:`concat_final` — joined + unjoined → ``merged_transcriptome.fasta``
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.bio.fasta import read_fasta, write_fasta
from repro.blast.tabular import read_tabular, write_tabular
from repro.cap3.assembler import Cap3Params
from repro.core.cache import cached_merge_cluster
from repro.core.clusters import cluster_transcripts
from repro.core.partition import Strategy, partition_clusters
from repro.util.iolib import atomic_write

__all__ = [
    "create_transcript_list",
    "create_alignment_list",
    "split_alignments",
    "run_cap3",
    "merge_joined",
    "merge_unjoined",
    "concat_final",
    "TASK_REGISTRY",
]


def create_transcript_list(transcripts_fasta: Path, out_path: Path) -> int:
    """Materialise the transcript dictionary file.

    The original script builds an in-memory dict of all transcripts; the
    workflow makes it an explicit artifact (``transcripts_dict.txt``,
    FASTA content) that every ``run_cap3`` task stages in. Returns the
    record count.
    """
    records = list(read_fasta(transcripts_fasta))
    return write_fasta(out_path, records)


def create_alignment_list(alignments_out: Path, out_path: Path) -> int:
    """Write the list of transcripts that have protein hits (one id per
    line, first-seen order). Returns the id count."""
    seen: dict[str, None] = {}
    for hit in read_tabular(alignments_out):
        seen.setdefault(hit.qseqid, None)
    atomic_write(out_path, "".join(f"{qid}\n" for qid in seen))
    return len(seen)


def split_alignments(
    alignments_out: Path,
    out_paths: Sequence[Path],
    *,
    evalue_cutoff: float = 1e-5,
    strategy: Strategy = "round_robin",
) -> list[int]:
    """The ``split()`` task: divide the alignment file into ``n`` parts.

    Whole clusters (same best protein hit) stay together. Each output
    file is itself valid tabular BLAST output. Returns the per-partition
    hit counts.
    """
    hits = list(read_tabular(alignments_out))
    clusters, _ = cluster_transcripts(hits, evalue_cutoff=evalue_cutoff)
    groups = partition_clusters(clusters, len(out_paths), strategy=strategy)

    by_query: dict[str, list] = {}
    for hit in hits:
        by_query.setdefault(hit.qseqid, []).append(hit)

    counts = []
    for group, out_path in zip(groups, out_paths):
        part_hits = []
        for cluster in group:
            for tid in cluster.transcript_ids:
                # Only this cluster's protein's hits matter downstream,
                # but keeping all of the transcript's hits preserves the
                # "smaller copies of alignments.out" semantics.
                part_hits.extend(
                    h for h in by_query.get(tid, ()) if h.sseqid == cluster.protein_id
                )
        counts.append(write_tabular(out_path, part_hits))
    return counts


def run_cap3(
    transcripts_dict: Path,
    protein_part: Path,
    joined_out: Path,
    merged_ids_out: Path,
    *,
    cap3_params: Cap3Params = Cap3Params(),
    evalue_cutoff: float = 1e-5,
    cache_dir: str | Path | None = None,
) -> tuple[int, int]:
    """Merge every cluster in one partition with CAP3.

    Writes the partition's contigs (``joined_out``) and the ids of
    transcripts absorbed into contigs (``merged_ids_out``), plus cluster
    singlets implicitly remain unmerged. Returns
    ``(contig_count, merged_id_count)``.

    With ``cache_dir`` set, per-cluster merges go through the
    content-addressed store (:mod:`repro.core.cache`): a retried or
    rescue-resubmitted ``run_cap3`` task re-reads its own earlier
    results instead of redoing the CAP3 work.
    """
    transcripts = {r.id: r for r in read_fasta(transcripts_dict)}
    hits = list(read_tabular(protein_part))
    clusters, _ = cluster_transcripts(hits, evalue_cutoff=evalue_cutoff)

    cache = None
    if cache_dir is not None:
        from repro.core.cache import ResultCache

        cache = ResultCache(cache_dir)

    contigs = []
    merged_ids: list[str] = []
    for cluster in clusters:
        if not cluster.is_mergeable:
            continue
        cluster_contigs, _singlets, merged = cached_merge_cluster(
            cache, cluster, transcripts, cap3_params
        )
        contigs.extend(cluster_contigs)
        merged_ids.extend(sorted(merged))

    write_fasta(joined_out, contigs)
    atomic_write(merged_ids_out, "".join(f"{tid}\n" for tid in merged_ids))
    return len(contigs), len(merged_ids)


def merge_joined(joined_parts: Sequence[Path], out_path: Path) -> int:
    """Concatenate all per-partition contig files. Returns contig count."""
    records = []
    for part in joined_parts:
        records.extend(read_fasta(part))
    return write_fasta(out_path, records)


def merge_unjoined(
    transcripts_dict: Path,
    merged_id_files: Sequence[Path],
    out_path: Path,
) -> int:
    """Write every transcript that was absorbed into no contig.

    "Knowing the transcripts that are joined helps us to combine all
    transcripts that are not joined into a new file" (paper, §V-C).
    Returns the unjoined count.
    """
    merged: set[str] = set()
    for path in merged_id_files:
        merged.update(
            line.strip()
            for line in Path(path).read_text().splitlines()
            if line.strip()
        )
    unjoined = [r for r in read_fasta(transcripts_dict) if r.id not in merged]
    return write_fasta(out_path, unjoined)


def concat_final(
    joined: Path, unjoined: Path, out_path: Path
) -> int:
    """The final assembly: contigs followed by unjoined transcripts."""
    records = list(read_fasta(joined)) + list(read_fasta(unjoined))
    return write_fasta(out_path, records)


#: Transformation-name → callable registry used by the local executor.
TASK_REGISTRY = {
    "create_transcript_list": create_transcript_list,
    "create_alignment_list": create_alignment_list,
    "split_alignments": split_alignments,
    "run_cap3": run_cap3,
    "merge_joined": merge_joined,
    "merge_unjoined": merge_unjoined,
    "concat_final": concat_final,
}
