"""Build the blast2cap3 Pegasus workflow (the paper's Figs. 2 and 3).

One *abstract* workflow serves both platforms — exactly as in the paper,
where "the workflow and the logic behind both execution platforms differ
only in the way how certain tasks are defined": planning it onto the
``sandhills`` site yields Fig. 2, planning onto ``osg`` decorates the
compute tasks with the download/install step (Fig. 3's red rectangles).

Three entry points:

* :func:`build_blast2cap3_adag` — the abstract DAX for a given *n*;
* :func:`run_local` — plan with real payloads and execute the actual
  protein-guided assembly on the local machine;
* :func:`simulate_paper_run` — plan at paper scale (runtimes from
  :class:`repro.perfmodel.PaperTaskModel`) and execute on a simulated
  platform, returning the DAGMan result whose trace feeds
  ``pegasus-statistics``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Literal, Mapping

if TYPE_CHECKING:  # annotation-only; the bus is an optional wire-in
    from repro.observe.bus import EventBus
    from repro.resilience.blacklist import BlacklistPolicy
    from repro.resilience.faults import FaultPlan
    from repro.resilience.retry import RetryPolicy

from repro.cap3.assembler import Cap3Params
from repro.dagman.scheduler import DagmanResult, DagmanScheduler
from repro.execution.payloads import TaskCall
from repro.perfmodel.task_models import PaperTaskModel
from repro.sim.cloud import CloudConfig, CloudPlatform
from repro.sim.cluster import CampusCluster, CampusClusterConfig
from repro.sim.engine import Simulator
from repro.sim.grid import GridConfig, OpportunisticGrid
from repro.sim.rng import RngStreams
from repro.util.dot import DotGraph
from repro.wms.catalogs import (
    ReplicaCatalog,
    SiteCatalog,
    TransformationCatalog,
    TransformationEntry,
    cloud_site,
    local_site,
    osg_site,
    sandhills_site,
)
from repro.wms.dax import ADag, AbstractJob, File
from repro.wms.planner import PlannedWorkflow, PlannerOptions, plan

__all__ = [
    "TRANSCRIPTS_LFN",
    "ALIGNMENTS_LFN",
    "FINAL_OUTPUT_LFN",
    "build_blast2cap3_adag",
    "default_catalogs",
    "run_local",
    "simulate_paper_run",
    "simulate_paper_run_with_recovery",
    "workflow_figure",
]

TRANSCRIPTS_LFN = "transcripts.fasta"
ALIGNMENTS_LFN = "alignments.out"
FINAL_OUTPUT_LFN = "merged_transcriptome.fasta"

#: The compute transformations of Figs. 2–3, in pipeline order.
TRANSFORMATIONS = (
    "create_transcript_list",
    "create_alignment_list",
    "split_alignments",
    "run_cap3",
    "merge_joined",
    "merge_unjoined",
    "concat_final",
)


def build_blast2cap3_adag(
    n: int,
    *,
    model: PaperTaskModel | None = None,
    transcripts_size: int = 0,
    alignments_size: int = 0,
    partition_strategy: str = "round_robin",
) -> ADag:
    """The abstract blast2cap3 workflow with *n* ``run_cap3`` tasks.

    With ``model`` given, jobs are annotated with paper-scale runtimes
    (for the simulators); without it runtimes are nominal and the DAG is
    meant for payload-bound local execution.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if model is not None:
        transcripts_size = transcripts_size or model.scale.transcripts_bytes
        alignments_size = alignments_size or model.scale.alignments_bytes

    adag = ADag(name=f"blast2cap3-n{n}")

    transcripts = File(TRANSCRIPTS_LFN, size=transcripts_size)
    alignments = File(ALIGNMENTS_LFN, size=alignments_size)
    tdict = File("transcripts_dict.txt", size=transcripts_size)
    alist = File("alignments.list", size=max(0, alignments_size // 50))
    joined = File("joined.fasta", size=transcripts_size // 10)
    unjoined = File("unjoined.fasta", size=int(transcripts_size * 0.8))
    final = File(FINAL_OUTPUT_LFN, size=int(transcripts_size * 0.9))

    fixed = model.fixed_runtimes() if model else {}
    part_runtimes = (
        model.partition_runtimes(n, strategy=partition_strategy)
        if model
        else [1.0] * n
    )
    part_bytes = model.partition_bytes(n) if model else 0

    adag.add_job(
        AbstractJob(
            id="create_transcript_list",
            transformation="create_transcript_list",
            runtime=fixed.get("create_transcript_list", 1.0),
        )
        .add_input(transcripts)
        .add_output(tdict)
    )
    adag.add_job(
        AbstractJob(
            id="create_alignment_list",
            transformation="create_alignment_list",
            runtime=fixed.get("create_alignment_list", 1.0),
        )
        .add_input(alignments)
        .add_output(alist)
    )

    split = AbstractJob(
        id="split",
        transformation="split_alignments",
        args={"n": str(n)},
        runtime=model.split_runtime(n) if model else 1.0,
    )
    split.add_input(alignments).add_input(alist)
    parts, joined_parts, merged_parts = [], [], []
    for i in range(1, n + 1):
        part = File(f"protein_{i}.txt", size=part_bytes)
        parts.append(part)
        split.add_output(part)
    adag.add_job(split)

    for i, part in enumerate(parts, start=1):
        joined_i = File(f"joined_{i}.fasta", size=part_bytes)
        merged_i = File(f"merged_{i}.txt", size=max(1, part_bytes // 20))
        joined_parts.append(joined_i)
        merged_parts.append(merged_i)
        adag.add_job(
            AbstractJob(
                id=f"run_cap3_{i}",
                transformation="run_cap3",
                args={"part_index": str(i)},
                runtime=part_runtimes[i - 1],
            )
            .add_input(tdict)
            .add_input(part)
            .add_output(joined_i)
            .add_output(merged_i)
        )

    merge_joined = AbstractJob(
        id="merge_joined",
        transformation="merge_joined",
        args={"n": str(n)},
        runtime=fixed.get("merge_joined", 1.0),
    )
    for f in joined_parts:
        merge_joined.add_input(f)
    merge_joined.add_output(joined)
    adag.add_job(merge_joined)

    merge_unjoined = AbstractJob(
        id="merge_unjoined",
        transformation="merge_unjoined",
        args={"n": str(n)},
        runtime=fixed.get("merge_unjoined", 1.0),
    )
    merge_unjoined.add_input(tdict)
    for f in merged_parts:
        merge_unjoined.add_input(f)
    merge_unjoined.add_output(unjoined)
    adag.add_job(merge_unjoined)

    adag.add_job(
        AbstractJob(
            id="concat_final",
            transformation="concat_final",
            args={"n": str(n)},
            runtime=fixed.get("concat_final", 1.0),
        )
        .add_input(joined)
        .add_input(unjoined)
        .add_output(final)
    )
    return adag


def _local_payload_factories(
    workdir: Path,
    transcripts_path: Path,
    alignments_path: Path,
    n: int,
    cap3_params: Cap3Params,
    cache_dir: str | Path | None = None,
) -> dict[str, Callable[[Mapping[str, Any]], Callable[[], Any]]]:
    """Bind the task implementations to concrete paths.

    Payloads are :class:`repro.execution.payloads.TaskCall` objects —
    picklable, so the process-pool backend can ship them to workers.
    """
    w = str(workdir)
    tasks = "repro.core.tasks"
    tdict = f"{w}/transcripts_dict.txt"
    parts = [f"{w}/protein_{i}.txt" for i in range(1, n + 1)]
    joined_parts = [f"{w}/joined_{i}.fasta" for i in range(1, n + 1)]
    merged_parts = [f"{w}/merged_{i}.txt" for i in range(1, n + 1)]

    cap3_kwargs: dict[str, Any] = {"cap3_params": cap3_params}
    if cache_dir is not None:
        cap3_kwargs["cache_dir"] = str(cache_dir)

    def cap3_call(args: Mapping[str, Any]) -> TaskCall:
        i = int(args["part_index"])
        return TaskCall(
            f"{tasks}:run_cap3",
            args=(tdict, parts[i - 1], joined_parts[i - 1],
                  merged_parts[i - 1]),
            kwargs=cap3_kwargs,
        )

    return {
        "create_transcript_list": lambda args: TaskCall(
            f"{tasks}:create_transcript_list",
            args=(str(transcripts_path), tdict),
        ),
        "create_alignment_list": lambda args: TaskCall(
            f"{tasks}:create_alignment_list",
            args=(str(alignments_path), f"{w}/alignments.list"),
        ),
        "split_alignments": lambda args: TaskCall(
            f"{tasks}:split_alignments",
            args=(str(alignments_path), parts),
        ),
        "run_cap3": cap3_call,
        "merge_joined": lambda args: TaskCall(
            f"{tasks}:merge_joined", args=(joined_parts, f"{w}/joined.fasta")
        ),
        "merge_unjoined": lambda args: TaskCall(
            f"{tasks}:merge_unjoined",
            args=(tdict, merged_parts, f"{w}/unjoined.fasta"),
        ),
        "concat_final": lambda args: TaskCall(
            f"{tasks}:concat_final",
            args=(f"{w}/joined.fasta", f"{w}/unjoined.fasta",
                  f"{w}/{FINAL_OUTPUT_LFN}"),
        ),
    }


def default_catalogs(
    *,
    payload_factories: Mapping[
        str, Callable[[Mapping[str, Any]], Callable[[], Any]]
    ]
    | None = None,
) -> tuple[SiteCatalog, TransformationCatalog, ReplicaCatalog]:
    """Catalogs covering the three sites and all transformations."""
    sites = SiteCatalog()
    sites.add(sandhills_site())
    sites.add(osg_site())
    sites.add(cloud_site())
    sites.add(local_site())

    transformations = TransformationCatalog()
    for name in TRANSFORMATIONS:
        factory = (payload_factories or {}).get(name)
        transformations.add(
            TransformationEntry(
                name=name,
                pfn=f"/usr/local/bin/{name}",
                installed_sites=frozenset({"sandhills", "local"}),
                payload_factory=factory,
            )
        )

    replicas = ReplicaCatalog()
    replicas.add(TRANSCRIPTS_LFN, f"file:///data/{TRANSCRIPTS_LFN}")
    replicas.add(ALIGNMENTS_LFN, f"file:///data/{ALIGNMENTS_LFN}")
    return sites, transformations, replicas


@dataclass
class LocalRunResult:
    """Outcome of a real local workflow execution."""

    dagman: DagmanResult
    planned: PlannedWorkflow
    final_output: Path


def run_local(
    transcripts_path: str | Path,
    alignments_path: str | Path,
    workdir: str | Path,
    *,
    n: int = 4,
    max_workers: int = 4,
    cap3_params: Cap3Params = Cap3Params(),
    retries: int = 0,
    executor: str = "process",
    bus: "EventBus | None" = None,
    cache_dir: str | Path | None = None,
) -> LocalRunResult:
    """Plan and actually execute blast2cap3 as a workflow, locally.

    This is the laptop-scale real run: BLAST tabular parsing, cluster
    partitioning, and CAP3 assembly all execute for real, under DAGMan.
    The default process pool gives true parallelism for the CPU-bound
    ``run_cap3`` payloads. With ``cache_dir`` set, those payloads serve
    per-cluster CAP3 merges from the content-addressed result store
    (:mod:`repro.core.cache`), so retried jobs and re-planned n-sweeps
    over the same inputs skip the recomputation.
    """
    from repro.execution.local import LocalEnvironment

    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    adag = build_blast2cap3_adag(n)
    factories = _local_payload_factories(
        workdir, Path(transcripts_path), Path(alignments_path), n,
        cap3_params, cache_dir,
    )
    sites, transformations, replicas = default_catalogs(
        payload_factories=factories
    )
    replicas.add(TRANSCRIPTS_LFN, str(transcripts_path), site="local")
    replicas.add(ALIGNMENTS_LFN, str(alignments_path), site="local")

    planned = plan(
        adag,
        site_name="local",
        sites=sites,
        transformations=transformations,
        replicas=replicas,
        options=PlannerOptions(retries=retries),
    )
    # stage_in/stage_out jobs carry no payloads; on the local site the
    # data is already in place, so bind picklable no-ops.
    from dataclasses import replace as dc_replace

    noop = TaskCall("repro.execution.payloads:noop")
    for name, job in list(planned.dag.jobs.items()):
        if job.payload is None:
            planned.dag.jobs[name] = dc_replace(job, payload=noop)

    with LocalEnvironment(
        max_workers=max_workers, executor=executor, bus=bus
    ) as env:
        result = DagmanScheduler(planned.dag, env, bus=bus).run()
    return LocalRunResult(
        dagman=result,
        planned=planned,
        final_output=workdir / FINAL_OUTPUT_LFN,
    )


Platform = Literal["sandhills", "osg", "cloud"]


def simulate_paper_run(
    n: int,
    platform: Platform,
    *,
    seed: int = 0,
    model: PaperTaskModel | None = None,
    cluster_config: CampusClusterConfig | None = None,
    grid_config: GridConfig | None = None,
    cloud_config: CloudConfig | None = None,
    planner_options: PlannerOptions | None = None,
    partition_strategy: str = "round_robin",
    bus: "EventBus | None" = None,
    sample_interval_s: float | None = None,
) -> tuple[DagmanResult, PlannedWorkflow]:
    """Simulate one paper-scale workflow run on one platform.

    ``"cloud"`` is the paper's future-work platform: track cost via the
    returned environment inside :func:`simulate_paper_run_with_env`.

    ``bus`` receives the full live event stream (scheduler and platform
    events interleaved on the virtual timeline); with
    ``sample_interval_s`` set, ``platform.sample`` utilization events
    are emitted on the same bus at that virtual-clock cadence.
    """
    if platform not in ("sandhills", "osg", "cloud"):
        raise ValueError(f"unknown platform: {platform!r}")
    model = model or PaperTaskModel()
    adag = build_blast2cap3_adag(
        n, model=model, partition_strategy=partition_strategy
    )
    sites, transformations, replicas = default_catalogs()
    # Generous retries: on OSG, long-running tasks are routinely evicted
    # and resubmitted ("failures and retries of the workflow were
    # observed on OSG", §VI-A); DAGMan just keeps retrying.
    options = planner_options or PlannerOptions(retries=20)
    planned = plan(
        adag,
        site_name=platform,
        sites=sites,
        transformations=transformations,
        replicas=replicas,
        options=options,
    )
    simulator = Simulator()
    streams = RngStreams(seed=seed)
    env: CampusCluster | OpportunisticGrid | CloudPlatform
    if platform == "sandhills":
        env = CampusCluster(
            simulator, cluster_config or CampusClusterConfig(),
            streams=streams, bus=bus,
        )
    elif platform == "osg":
        env = OpportunisticGrid(
            simulator, grid_config or GridConfig(), streams=streams, bus=bus
        )
    else:
        env = CloudPlatform(
            simulator, cloud_config or CloudConfig(), streams=streams, bus=bus
        )
    scheduler = DagmanScheduler(planned.dag, env, bus=bus)
    scheduler.start()
    if sample_interval_s is not None:
        # Started after the initial ready set is queued, so the sampler
        # sees pending work and keeps itself alive until the run drains.
        from repro.observe.sampler import UtilizationSampler

        UtilizationSampler(
            simulator, env, interval_s=sample_interval_s, bus=bus
        ).start()
    env.run_until_complete()
    result = scheduler.finish()
    _LAST_ENVIRONMENTS[id(result)] = env
    return result, planned


def simulate_paper_run_with_recovery(
    n: int,
    platform: Platform,
    *,
    seed: int = 0,
    model: PaperTaskModel | None = None,
    cluster_config: CampusClusterConfig | None = None,
    grid_config: GridConfig | None = None,
    cloud_config: CloudConfig | None = None,
    planner_options: PlannerOptions | None = None,
    partition_strategy: str = "round_robin",
    bus: "EventBus | None" = None,
    fault_plan: "FaultPlan | None" = None,
    blacklist_policy: "BlacklistPolicy | None" = None,
    retry_policy: "RetryPolicy | None" = None,
    max_rounds: int = 3,
):
    """Simulate a paper-scale run under the resilience layer.

    Like :func:`simulate_paper_run`, but the whole run goes through
    :func:`repro.resilience.run_with_recovery`: failed rounds rescue
    and resubmit automatically (up to ``max_rounds``), an optional
    ``fault_plan`` injects chaos on top of the platform's calibrated
    failure regime, ``blacklist_policy`` arms the start-failure circuit
    breaker, and ``retry_policy`` shapes DAGMan's requeues. Returns
    ``(RecoveryResult, PlannedWorkflow)``.
    """
    from repro.resilience import Blacklist, FaultInjector, run_with_recovery

    if platform not in ("sandhills", "osg", "cloud"):
        raise ValueError(f"unknown platform: {platform!r}")
    model = model or PaperTaskModel()
    adag = build_blast2cap3_adag(
        n, model=model, partition_strategy=partition_strategy
    )
    sites, transformations, replicas = default_catalogs()
    options = planner_options or PlannerOptions(retries=20)
    planned = plan(
        adag,
        site_name=platform,
        sites=sites,
        transformations=transformations,
        replicas=replicas,
        options=options,
    )
    simulator = Simulator()
    streams = RngStreams(seed=seed)
    injector = None
    if fault_plan is not None:
        injector = FaultInjector(
            fault_plan, rng=streams.stream("faults"), bus=bus
        )
    blacklist = None
    if blacklist_policy is not None:
        blacklist = Blacklist(blacklist_policy, bus=bus)
    env: CampusCluster | OpportunisticGrid | CloudPlatform
    if platform == "sandhills":
        env = CampusCluster(
            simulator, cluster_config or CampusClusterConfig(),
            streams=streams, bus=bus, injector=injector,
            blacklist=blacklist,
        )
    elif platform == "osg":
        env = OpportunisticGrid(
            simulator, grid_config or GridConfig(), streams=streams,
            bus=bus, injector=injector, blacklist=blacklist,
        )
    else:
        env = CloudPlatform(
            simulator, cloud_config or CloudConfig(), streams=streams,
            bus=bus, injector=injector,
        )
    outcome = run_with_recovery(
        planned.dag, env, max_rounds=max_rounds, bus=bus,
        retry_policy=retry_policy,
    )
    _LAST_ENVIRONMENTS[id(outcome)] = env
    return outcome, planned


#: Weak side-channel: environments of recent runs, keyed by result id,
#: so cost-aware callers can reach the CloudPlatform accounting without
#: changing the common return shape. Bounded to the latest few entries.
_LAST_ENVIRONMENTS: dict[int, object] = {}


def environment_for(result: DagmanResult) -> object | None:
    """The execution environment that produced ``result`` (if recent)."""
    env = _LAST_ENVIRONMENTS.get(id(result))
    while len(_LAST_ENVIRONMENTS) > 32:
        _LAST_ENVIRONMENTS.pop(next(iter(_LAST_ENVIRONMENTS)))
    return env


def workflow_figure(adag: ADag, *, osg: bool = False) -> DotGraph:
    """Regenerate Fig. 2 (or Fig. 3 with ``osg=True``) as a DOT graph.

    Squares are files, ovals are tasks, and on OSG the compute tasks
    become red rectangles (download/install decoration).
    """
    graph = DotGraph(name=adag.name + ("-osg" if osg else "-sandhills"))
    for job in adag.jobs.values():
        kind = "setup_task" if osg else "task"
        graph.add_node(job.id, label=f"{job.transformation}()", kind=kind)
        for f in job.inputs():
            graph.add_node(f.name, kind="file")
            graph.add_edge(f.name, job.id)
        for f in job.outputs():
            graph.add_node(f.name, kind="file")
            graph.add_edge(job.id, f.name)
    return graph
