"""Partitioning clusters into *n* groups — the workflow's ``split()`` task.

The paper's workflow divides ``alignments.out`` into ``n`` smaller files
(``protein_1.txt`` … ``protein_n.txt``), one per parallel ``run_cap3``
task. A cluster must never straddle two partitions (its transcripts have
to be assembled together), so we partition whole clusters.

Two strategies are provided:

* ``round_robin`` — deal clusters out in order, the obvious serial-script
  port (and our model of what the paper did);
* ``balanced`` — greedy longest-processing-time packing on estimated
  CAP3 cost, which flattens the straggler effect the paper observes
  (their wall time is bounded by the largest partition, not the mean).

The cost estimate is quadratic in cluster size because CAP3's pairwise
overlap phase dominates.
"""

from __future__ import annotations

import heapq
from typing import Literal, Sequence

from repro.core.clusters import ProteinCluster

__all__ = ["partition_clusters", "cluster_cost"]

Strategy = Literal["round_robin", "balanced"]


def cluster_cost(cluster: ProteinCluster | int) -> float:
    """Estimated CAP3 cost of a cluster (pairwise-overlap dominated).

    Accepts a cluster or a raw transcript count. The constant in front
    is irrelevant for partitioning; the quadratic shape is what matters.
    """
    size = cluster if isinstance(cluster, int) else len(cluster)
    if size < 0:
        raise ValueError("cluster size must be >= 0")
    # linear load + quadratic overlap phase
    return size + 0.5 * size * size


def partition_clusters(
    clusters: Sequence[ProteinCluster],
    n: int,
    *,
    strategy: Strategy = "round_robin",
) -> list[list[ProteinCluster]]:
    """Split clusters into exactly ``n`` groups (some possibly empty).

    ``n`` mirrors the paper's parameter: they ran 10, 100, 300 and 500.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    groups: list[list[ProteinCluster]] = [[] for _ in range(n)]

    if strategy == "round_robin":
        for i, cluster in enumerate(clusters):
            groups[i % n].append(cluster)
        return groups

    if strategy == "balanced":
        # LPT: heaviest cluster first into the currently lightest group.
        heap: list[tuple[float, int]] = [(0.0, i) for i in range(n)]
        heapq.heapify(heap)
        for cluster in sorted(clusters, key=cluster_cost, reverse=True):
            load, idx = heapq.heappop(heap)
            groups[idx].append(cluster)
            heapq.heappush(heap, (load + cluster_cost(cluster), idx))
        return groups

    raise ValueError(f"unknown strategy: {strategy!r}")
