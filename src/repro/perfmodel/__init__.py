"""Task runtime models calibrated to the paper's reported numbers.

The evaluation figures (wall times at paper scale) cannot be recomputed
on a laptop — the serial run alone is 100 CPU-hours. Instead, the
discrete-event simulator executes the same DAGs with *modelled* task
runtimes. This package holds those models and the calibration anchors
they are fitted to (:mod:`repro.perfmodel.calibration`), with the fit
itself asserted by tests and the calibration benchmark.
"""

from repro.perfmodel.calibration import CalibrationAnchors, anchors
from repro.perfmodel.task_models import PaperTaskModel

__all__ = ["CalibrationAnchors", "anchors", "PaperTaskModel"]
