"""Calibration anchors quoted from the paper's text.

Every number here appears verbatim in Pavlovikj et al. §V–§VI; the
models in :mod:`repro.perfmodel.task_models` are tuned so the simulated
system lands near these anchors, and ``EXPERIMENTS.md`` records the
achieved values.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CalibrationAnchors", "anchors"]


@dataclass(frozen=True)
class CalibrationAnchors:
    """The paper's quantitative claims."""

    #: "the running time was 100 hours" (serial blast2cap3, §V-B).
    serial_walltime_s: float = 360_000.0

    #: "The running time on Sandhills when n is 10 is 41,593 seconds".
    sandhills_n10_s: float = 41_593.0

    #: "when n has value of 100, 300, and 500, the running time on
    #: Sandhills is around 10,000 seconds".
    sandhills_plateau_s: float = 10_000.0

    #: "the usage of 100 or more clusters ... improves the running time
    #: ... for approximately 80% compared to ... 10 clusters".
    plateau_improvement_over_n10: float = 0.80

    #: "the selection of 300 clusters gives the optimum performance".
    optimal_n: int = 300

    #: "the Pegasus WMS implementation runs for 3 hours in average".
    workflow_mean_s: float = 10_800.0

    #: "reduces the running time ... for more than 95%".
    min_reduction_vs_serial: float = 0.95

    #: The n values the paper sweeps.
    cluster_counts: tuple[int, ...] = (10, 100, 300, 500)

    def reduction(self, walltime_s: float) -> float:
        """Fractional reduction of a workflow run versus serial."""
        return 1.0 - walltime_s / self.serial_walltime_s


def anchors() -> CalibrationAnchors:
    """The paper's anchor values (a singleton value object)."""
    return CalibrationAnchors()
