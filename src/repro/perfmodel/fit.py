"""Calibration fitting: how the model's defaults were chosen.

The fitted quantities are the cluster-cost distribution's shape
(``size_sigma``) and realisation (``seed``). The loss compares the
model's *static* predictors — largest-partition runtimes, which bound
Sandhills wall times — against the paper's anchors:

* largest n=10 partition ≈ 41,593 s (the measured n=10 wall time);
* largest partitions at n ∈ {100, 300, 500} ≈ 10,000 s (the plateau);
* n=300's partition max below n=500's (the reported optimum ordering).

``fit_model`` grid-searches those two knobs and returns the best
model. The shipped defaults (σ=1.2, seed=3) sit at the top of the
fit's ranking (the very best realisation, seed 8, wins on raw loss by
~0.01 but its n=300/n=500 partition maxima differ by only 0.2 %, which
makes the simulated optimum flip between seeds; seed 3's 5 % margin
keeps the paper's n=300 optimum stable). The test suite asserts the
defaults stay in the fit's top two, so the calibration is reproducible
in-code rather than folklore.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.perfmodel.calibration import CalibrationAnchors, anchors
from repro.perfmodel.task_models import PaperTaskModel

__all__ = ["FitResult", "calibration_loss", "fit_model"]


def calibration_loss(
    model: PaperTaskModel, target: CalibrationAnchors | None = None
) -> float:
    """Relative-error loss of one model against the anchors.

    Sum of squared relative errors over the anchored quantities, plus a
    penalty when the n=300 partition max exceeds n=500's (the paper's
    optimum ordering would invert).
    """
    target = target or anchors()
    loss = 0.0

    n10_max = max(model.partition_runtimes(10))
    loss += ((n10_max - target.sandhills_n10_s) / target.sandhills_n10_s) ** 2

    plateau = {}
    for n in (100, 300, 500):
        plateau[n] = max(model.partition_runtimes(n))
        loss += (
            (plateau[n] - target.sandhills_plateau_s)
            / target.sandhills_plateau_s
        ) ** 2

    serial = model.serial_walltime()
    loss += ((serial - target.serial_walltime_s) / target.serial_walltime_s) ** 2

    if plateau[300] > plateau[500]:
        loss += 1.0  # ordering penalty: 300 must stay the optimum
    return loss


@dataclass
class FitResult:
    """Outcome of the grid search."""

    model: PaperTaskModel
    loss: float
    evaluated: int
    trail: list[tuple[float, float, int]] = field(default_factory=list)

    @property
    def sigma(self) -> float:
        return self.model.size_sigma

    @property
    def seed(self) -> int:
        return self.model.seed


def fit_model(
    *,
    sigmas: Sequence[float] = (1.0, 1.1, 1.2, 1.3, 1.4),
    seeds: Sequence[int] = tuple(range(10)),
    target: CalibrationAnchors | None = None,
) -> FitResult:
    """Grid-search (sigma, seed) for the best-calibrated model."""
    target = target or anchors()
    best_model: PaperTaskModel | None = None
    best_loss = float("inf")
    trail: list[tuple[float, float, int]] = []
    evaluated = 0
    for sigma in sigmas:
        for seed in seeds:
            model = PaperTaskModel(size_sigma=sigma, seed=seed)
            loss = calibration_loss(model, target)
            evaluated += 1
            trail.append((loss, sigma, seed))
            if loss < best_loss:
                best_loss = loss
                best_model = model
    trail.sort()
    assert best_model is not None
    return FitResult(
        model=best_model, loss=best_loss, evaluated=evaluated, trail=trail
    )
