"""The paper-scale task runtime model.

Two ingredients produce the Fig. 4 shape:

1. **A heavy-tailed cluster-cost distribution.** Real protein clusters
   are wildly unequal (a conserved gene family can pull hundreds of
   transcripts into one cluster, and CAP3's pairwise phase is quadratic
   in cluster size). We draw cluster sizes from a lognormal with a fat
   tail and charge ``s + s²/2`` per cluster, rescaled so the total CAP3
   work matches the serial anchor. The single largest cluster then costs
   thousands of seconds — and since the ``split()`` task cannot divide a
   cluster, that one task *floors* the parallel wall time near 10,000 s
   for every n ≥ 100, exactly the plateau the paper reports.

2. **Fixed costs for the bookkeeping tasks.** "The tasks for creating
   lists of the input files and for merging the final results have
   running time of few minutes" (§VI-B) — we charge 2–5 minutes each,
   with ``split`` growing mildly in n (it writes n files).

The model is deterministic per seed: cluster costs are drawn once and
partitioned round-robin (the serial script's natural order), matching
how :func:`repro.core.partition.partition_clusters` treats real data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.datagen.workload import PaperScale, paper_scale

__all__ = ["PaperTaskModel"]


@dataclass(frozen=True)
class PaperTaskModel:
    """Runtime model for the paper-scale blast2cap3 workflow."""

    scale: PaperScale = field(default_factory=paper_scale)
    #: Number of protein clusters at paper scale (~236k transcripts at a
    #: handful per cluster).
    n_clusters: int = 40_000
    #: Lognormal shape of cluster sizes; the tail drives the plateau.
    size_sigma: float = 1.2
    #: Mean transcripts per cluster.
    mean_size: float = 5.0
    #: Total CAP3 work; serial = this + the serial script's fixed costs.
    cap3_total_s: float = 354_000.0
    #: Fixed runtimes of the bookkeeping tasks (§VI-B: "few minutes").
    create_transcript_list_s: float = 240.0
    create_alignment_list_s: float = 180.0
    split_base_s: float = 240.0
    split_per_partition_s: float = 0.15
    merge_joined_s: float = 180.0
    merge_unjoined_s: float = 300.0
    concat_final_s: float = 120.0
    #: Fitted against the §VI anchors (see tests/test_perfmodel.py and
    #: benchmarks/bench_serial_anchor.py).
    seed: int = 3

    def __post_init__(self) -> None:
        if self.n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        if self.cap3_total_s <= 0:
            raise ValueError("cap3_total_s must be positive")

    # -- cluster cost distribution ---------------------------------------

    def cluster_costs(self) -> np.ndarray:
        """Per-cluster CAP3 cost in seconds (sums to ``cap3_total_s``)."""
        return _cluster_costs_cached(
            self.n_clusters, self.size_sigma, self.mean_size,
            self.cap3_total_s, self.seed,
        )

    def serial_walltime(self) -> float:
        """Modelled serial blast2cap3 run: all clusters plus the fixed
        load/cluster/concatenate work the script does inline."""
        fixed = (
            self.create_transcript_list_s
            + self.create_alignment_list_s
            + self.merge_joined_s
            + self.merge_unjoined_s
            + self.concat_final_s
        )
        return float(self.cluster_costs().sum()) + fixed + 5_000.0

    # -- per-task runtimes -------------------------------------------------

    def partition_runtimes(
        self, n: int, *, strategy: str = "round_robin"
    ) -> list[float]:
        """Runtime of each of the n ``run_cap3`` tasks.

        ``round_robin`` deals clusters out in stream order, which is
        what the workflow's split() does (and our model of the paper's
        runs); ``balanced`` applies longest-processing-time packing —
        the ablation benchmark uses it to quantify how much of the wall
        time is avoidable straggler skew versus the unsplittable
        largest cluster.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        costs = self.cluster_costs()
        bins = np.zeros(n)
        if strategy == "round_robin":
            np.add.at(bins, np.arange(len(costs)) % n, costs)
        elif strategy == "balanced":
            import heapq

            heap = [(0.0, i) for i in range(n)]
            heapq.heapify(heap)
            for cost in np.sort(costs)[::-1]:
                load, idx = heapq.heappop(heap)
                bins[idx] += cost
                heapq.heappush(heap, (load + float(cost), idx))
        else:
            raise ValueError(f"unknown strategy: {strategy!r}")
        return [float(b) for b in bins]

    def split_runtime(self, n: int) -> float:
        """The split() task: scales mildly with the partition count."""
        return self.split_base_s + self.split_per_partition_s * n

    def fixed_runtimes(self) -> dict[str, float]:
        """The non-parallel tasks' runtimes."""
        return {
            "create_transcript_list": self.create_transcript_list_s,
            "create_alignment_list": self.create_alignment_list_s,
            "merge_joined": self.merge_joined_s,
            "merge_unjoined": self.merge_unjoined_s,
            "concat_final": self.concat_final_s,
        }

    # -- derived quantities -------------------------------------------------

    def max_cluster_cost(self) -> float:
        """The wall-time floor for any n (a cluster is unsplittable)."""
        return float(self.cluster_costs().max())

    def partition_bytes(self, n: int) -> int:
        """Approximate size of one protein_i.txt partition file."""
        return max(1, self.scale.alignments_bytes // n)


@lru_cache(maxsize=8)
def _cluster_costs_cached(
    n_clusters: int,
    size_sigma: float,
    mean_size: float,
    total_s: float,
    seed: int,
) -> np.ndarray:
    rng = np.random.default_rng(seed)
    mu = math.log(mean_size) - 0.5 * size_sigma**2
    sizes = np.maximum(1.0, rng.lognormal(mu, size_sigma, size=n_clusters))
    costs = sizes + 0.5 * sizes**2
    costs *= total_s / costs.sum()
    costs.setflags(write=False)
    return costs
