"""Consensus calling over a layout.

CAP3 builds a multiple alignment from the pairwise overlaps and emits a
per-column consensus. Our layouts place each read at an integer offset
(indels inside near-identical transcript overlaps are rare enough that
column voting over offset-placed reads reproduces the merge behaviour
blast2cap3 relies on; dissenting bases are outvoted column-wise).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.bio.seq import reverse_complement
from repro.cap3.graph import Layout

__all__ = ["call_consensus"]

_BASE_ORDER = "ACGTN"
_BASE_INDEX = {b: i for i, b in enumerate(_BASE_ORDER)}


def call_consensus(layout: Layout, reads: Mapping[str, str]) -> str:
    """Majority-vote consensus of a layout.

    Each column takes the most frequent base among covering reads; ties
    go to the earlier-placed read (achieved by a half-vote bonus for the
    first covering read). ``N`` never wins a column unless it is the
    only evidence.
    """
    if not layout.reads:
        return ""

    spans: list[tuple[int, str]] = []
    for placed in layout.reads:
        seq = reads[placed.read_id].upper()
        if placed.flipped:
            seq = reverse_complement(seq)
        spans.append((placed.offset, seq))

    total_len = max(off + len(seq) for off, seq in spans)
    # votes[column, base]; N gets a tiny weight so real bases dominate.
    votes = np.zeros((total_len, len(_BASE_ORDER)), dtype=np.float64)
    for rank, (off, seq) in enumerate(spans):
        codes = np.array(
            [_BASE_INDEX.get(c, _BASE_INDEX["N"]) for c in seq], dtype=np.intp
        )
        weight = 1.0 + (0.5 if rank == 0 else 0.0) / (rank + 1)
        cols = np.arange(off, off + len(seq))
        base_weight = np.where(codes == _BASE_INDEX["N"], 1e-3, weight)
        np.add.at(votes, (cols, codes), base_weight)

    best = votes.argmax(axis=1)
    covered = votes.sum(axis=1) > 0
    consensus = np.array(list(_BASE_ORDER))[best]
    return "".join(consensus[covered])
