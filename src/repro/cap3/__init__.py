"""A CAP3-like overlap–layout–consensus assembler.

blast2cap3 hands each cluster of transcripts to CAP3 and collects the
merged contigs plus the unmerged "singlets". This package implements the
same contract from scratch:

* :mod:`repro.cap3.overlap` — candidate detection (shared k-mers) and
  dovetail/containment overlap alignment,
* :mod:`repro.cap3.graph` — the overlap graph and greedy layout,
* :mod:`repro.cap3.consensus` — per-column majority consensus calling,
* :mod:`repro.cap3.assembler` — the public :func:`assemble` API.
"""

from repro.cap3.assembler import AssemblyResult, Cap3Params, Contig, assemble
from repro.cap3.report import format_ace, format_info, write_ace

__all__ = [
    "assemble",
    "AssemblyResult",
    "Cap3Params",
    "Contig",
    "format_ace",
    "format_info",
    "write_ace",
]
