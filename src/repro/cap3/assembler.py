"""The public CAP3-like assembly API.

``assemble(reads)`` returns contigs (merged sequences with their member
reads) and singlets (reads that joined nothing), which is exactly the
CAP3 output contract blast2cap3 consumes: it concatenates per-cluster
contigs and records which transcripts were merged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.bio.fasta import FastaRecord
from repro.cap3.consensus import call_consensus
from repro.cap3.graph import build_layouts

__all__ = ["Cap3Params", "Contig", "AssemblyResult", "assemble"]


@dataclass(frozen=True)
class Cap3Params:
    """Assembly thresholds, named after CAP3's flags where one exists.

    ``min_overlap_length`` is CAP3's ``-o`` (default 40),
    ``min_identity`` its ``-p`` (default 90 %, expressed as a fraction).
    """

    min_overlap_length: int = 40
    min_identity: float = 0.90
    kmer_size: int = 12
    min_shared_kmers: int = 3
    #: Affine overlap scoring (CAP3's own scheme); the linear default is
    #: faster and equivalent on near-identical transcript overlaps.
    affine: bool = False
    gap_open: int = -8
    gap_extend: int = -2

    def __post_init__(self) -> None:
        if self.min_overlap_length < 1:
            raise ValueError("min_overlap_length must be >= 1")
        if not 0.0 < self.min_identity <= 1.0:
            raise ValueError("min_identity must be in (0, 1]")
        if self.kmer_size < 4:
            raise ValueError("kmer_size must be >= 4")


@dataclass(frozen=True)
class Contig:
    """A merged sequence and the reads it absorbed (layout + contained).

    ``placements`` records each member's layout position as
    ``(read_id, offset, flipped)``; contained reads inherit their
    container's offset (an approximation sufficient for the .ace
    report — their true offset lies within the container's span).
    """

    id: str
    seq: str
    members: tuple[str, ...]
    placements: tuple[tuple[str, int, bool], ...] = ()

    def __post_init__(self) -> None:
        if len(self.members) < 2:
            raise ValueError("a contig must absorb at least two reads")
        if self.placements:
            placed = {p[0] for p in self.placements}
            if placed != set(self.members):
                raise ValueError("placements must cover exactly the members")

    def to_fasta(self) -> FastaRecord:
        desc = f"{self.id} members={len(self.members)}"
        return FastaRecord(id=self.id, seq=self.seq, description=desc)


@dataclass
class AssemblyResult:
    """Contigs plus singlets; together they cover every input read once."""

    contigs: list[Contig] = field(default_factory=list)
    singlets: list[FastaRecord] = field(default_factory=list)

    @property
    def merged_read_ids(self) -> set[str]:
        """Ids of reads absorbed into some contig."""
        return {rid for contig in self.contigs for rid in contig.members}

    @property
    def output_records(self) -> list[FastaRecord]:
        """Contigs then singlets, as CAP3's combined output file."""
        return [c.to_fasta() for c in self.contigs] + list(self.singlets)

    def sequence_count(self) -> int:
        """Number of output sequences (contigs + singlets)."""
        return len(self.contigs) + len(self.singlets)


def assemble(
    reads: Sequence[FastaRecord] | Iterable[FastaRecord],
    params: Cap3Params = Cap3Params(),
    *,
    contig_prefix: str = "Contig",
) -> AssemblyResult:
    """Assemble reads into contigs and singlets.

    Input ids must be unique. The result is deterministic for a fixed
    input order (overlap ties break on read ids).
    """
    read_list = list(reads)
    by_id: dict[str, str] = {}
    records: dict[str, FastaRecord] = {}
    for record in read_list:
        if record.id in by_id:
            raise ValueError(f"duplicate read id: {record.id!r}")
        by_id[record.id] = record.seq
        records[record.id] = record

    layouts, contained = build_layouts(
        by_id,
        k=params.kmer_size,
        min_shared_kmers=params.min_shared_kmers,
        min_length=params.min_overlap_length,
        min_identity=params.min_identity,
        affine=params.affine,
        gap_open=params.gap_open,
        gap_extend=params.gap_extend,
    )

    # Attach contained reads to the contig holding their container,
    # resolving chains of containment to the final container.
    def resolve_container(rid: str) -> str:
        seen = set()
        while rid in contained and rid not in seen:
            seen.add(rid)
            rid = contained[rid]
        return rid

    container_members: dict[str, list[str]] = {}
    for inner in contained:
        container_members.setdefault(resolve_container(inner), []).append(inner)

    contigs: list[Contig] = []
    absorbed: set[str] = set(contained)
    for i, layout in enumerate(layouts, start=1):
        members = list(layout.read_ids)
        placements = [
            (placed.read_id, placed.offset, placed.flipped)
            for placed in layout.reads
        ]
        layout_offset = {p.read_id: p.offset for p in layout.reads}
        for rid in layout.read_ids:
            for inner in container_members.get(rid, ()):
                members.append(inner)
                placements.append((inner, layout_offset[rid], False))
        consensus = call_consensus(layout, by_id)
        contigs.append(
            Contig(
                id=f"{contig_prefix}{i}",
                seq=consensus,
                members=tuple(members),
                placements=tuple(placements),
            )
        )
        absorbed.update(members)

    # A containment whose container stayed a singlet still merges the
    # pair: emit the container as a two-member "contig" (CAP3 does the
    # same — the container's sequence is the consensus).
    next_idx = len(contigs) + 1
    for container, inners in container_members.items():
        if container in absorbed:
            continue
        contigs.append(
            Contig(
                id=f"{contig_prefix}{next_idx}",
                seq=by_id[container],
                members=tuple([container] + inners),
                placements=tuple(
                    (rid, 0, False) for rid in [container] + inners
                ),
            )
        )
        absorbed.add(container)
        next_idx += 1

    singlets = [
        records[rid] for rid in by_id if rid not in absorbed
    ]
    return AssemblyResult(contigs=contigs, singlets=singlets)
