"""Overlap graph construction and greedy layout.

Given candidate pairs, this module:

1. **orients** reads — a BFS over the pair graph assigns each connected
   component a consistent strand labelling (edges vote via
   :func:`repro.cap3.overlap.strands_agree`; conflicting edges are
   dropped, which at worst splits a contig, never corrupts one);
2. removes **contained** reads (recording their container, since they
   still count as merged members of the contig);
3. runs the classic **greedy layout**: dovetail overlaps in descending
   score order, accepted when both involved ends are free and the union
   would not close a cycle. The result is a set of read chains with
   layout offsets, ready for consensus calling.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Mapping

from repro.bio.seq import reverse_complement
from repro.cap3.overlap import (
    Overlap,
    OverlapKind,
    candidate_pairs,
    compute_overlap,
    strands_agree,
)

__all__ = ["LayoutRead", "Layout", "orient_reads", "build_layouts"]


@dataclass(frozen=True)
class LayoutRead:
    """One read placed in a layout at ``offset`` (chain coordinates)."""

    read_id: str
    offset: int
    flipped: bool


@dataclass
class Layout:
    """An ordered chain of reads forming one future contig."""

    reads: list[LayoutRead] = field(default_factory=list)

    @property
    def read_ids(self) -> list[str]:
        return [r.read_id for r in self.reads]

    def __len__(self) -> int:
        return len(self.reads)


class _UnionFind:
    def __init__(self) -> None:
        self.parent: dict[str, str] = {}

    def find(self, x: str) -> str:
        self.parent.setdefault(x, x)
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:  # path compression
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: str, b: str) -> None:
        self.parent[self.find(a)] = self.find(b)


def orient_reads(
    reads: Mapping[str, str],
    pairs: list[tuple[str, str]],
    *,
    k: int = 12,
) -> dict[str, bool]:
    """Assign a flip flag per read so paired overlaps are same-strand.

    BFS 2-colouring over the pair graph. When an edge's strand vote
    contradicts the colouring already fixed by earlier edges, the edge is
    simply ignored (it will not produce an overlap later either, because
    the normalised sequences won't align).
    """
    adjacency: dict[str, list[tuple[str, bool]]] = {rid: [] for rid in reads}
    for a, b in pairs:
        agree = strands_agree(reads[a], reads[b], k=k)
        adjacency[a].append((b, agree))
        adjacency[b].append((a, agree))

    flipped: dict[str, bool] = {}
    for start in reads:
        if start in flipped:
            continue
        flipped[start] = False
        queue = deque([start])
        while queue:
            current = queue.popleft()
            for neighbor, agree in adjacency[current]:
                want = flipped[current] if agree else not flipped[current]
                if neighbor not in flipped:
                    flipped[neighbor] = want
                    queue.append(neighbor)
                # Conflicts are dropped silently; see docstring.
    return flipped


def _oriented(reads: Mapping[str, str], flipped: Mapping[str, bool]) -> dict[str, str]:
    return {
        rid: (reverse_complement(seq) if flipped.get(rid, False) else seq)
        for rid, seq in reads.items()
    }


def build_layouts(
    reads: Mapping[str, str],
    *,
    k: int = 12,
    min_shared_kmers: int = 3,
    min_length: int = 40,
    min_identity: float = 0.90,
    affine: bool = False,
    gap_open: int = -8,
    gap_extend: int = -2,
) -> tuple[list[Layout], dict[str, str]]:
    """Compute layouts (chains with offsets) and the containment map.

    Returns ``(layouts, contained)`` where ``contained`` maps a contained
    read id to its container's id. Reads that join nothing do not appear
    in any layout — callers emit them as singlets.
    """
    pairs = list(
        candidate_pairs(reads, k=k, min_shared_kmers=min_shared_kmers)
    )
    flipped = orient_reads(reads, pairs, k=k)
    oriented = _oriented(reads, flipped)

    overlaps: list[Overlap] = []
    for a, b in pairs:
        if affine:
            ov = compute_overlap(
                a, oriented[a], b, oriented[b],
                min_length=min_length, min_identity=min_identity,
                gap=gap_open, affine=True, gap_extend=gap_extend,
            )
        else:
            ov = compute_overlap(
                a, oriented[a], b, oriented[b],
                min_length=min_length, min_identity=min_identity,
            )
        if ov is not None:
            overlaps.append(ov)
    overlaps.sort(key=lambda o: (-o.score, o.a, o.b))

    # Containment pass: a contained read is represented by its container.
    contained: dict[str, str] = {}
    for ov in overlaps:
        if ov.kind is not OverlapKind.CONTAINMENT:
            continue
        if ov.b in contained or ov.a in contained:
            continue
        contained[ov.b] = ov.a

    # Greedy dovetail layout over the remaining reads.
    uf = _UnionFind()
    next_read: dict[str, tuple[str, int]] = {}  # a -> (b, b_offset_delta)
    prev_read: dict[str, str] = {}
    for ov in overlaps:
        if ov.kind is not OverlapKind.DOVETAIL:
            continue
        a, b = ov.a, ov.b
        if a in contained or b in contained:
            continue
        if a in next_read or b in prev_read:
            continue
        if uf.find(a) == uf.find(b):
            continue  # would close a cycle
        next_read[a] = (b, ov.a_start)
        prev_read[b] = a
        uf.union(a, b)

    layouts: list[Layout] = []
    placed: set[str] = set()
    for rid in reads:
        if rid in contained or rid in prev_read or rid in placed:
            continue
        if rid not in next_read:
            continue  # isolated read: singlet, no layout
        chain: list[LayoutRead] = []
        offset = 0
        current: str | None = rid
        while current is not None:
            chain.append(
                LayoutRead(
                    read_id=current,
                    offset=offset,
                    flipped=flipped.get(current, False),
                )
            )
            placed.add(current)
            step = next_read.get(current)
            if step is None:
                current = None
            else:
                current, delta = step
                offset += delta
        layouts.append(Layout(reads=chain))
    return layouts, contained
