"""Overlap detection between transcript pairs.

CAP3's first phase finds pairwise overlaps. We do the same in three steps
(the orientation step is factored out into :mod:`repro.cap3.graph`):

1. **candidate detection** — index every read's k-mers; a pair of reads
   sharing at least ``min_shared_kmers`` distinct k-mers (on either
   strand) is a candidate. This is the hash filter that keeps the stage
   sub-quadratic, as in CAP3.
2. **strand voting** — per candidate pair, count shared k-mers between
   the forward strands and between forward/reverse-complement; the
   winner fixes the pair's relative orientation.
3. **overlap alignment** — candidate pairs (already strand-normalised by
   the caller) are scored with the dovetail DP
   (:func:`repro.bio.alignment.overlap_align`) in both left/right orders,
   keeping the better arrangement.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, Mapping

from repro.bio.alignment import AlignmentResult, overlap_align
from repro.bio.kmer import KmerIndex, kmers
from repro.bio.seq import reverse_complement

__all__ = [
    "OverlapKind",
    "Overlap",
    "candidate_pairs",
    "strands_agree",
    "compute_overlap",
]


class OverlapKind(Enum):
    """How two reads relate."""

    DOVETAIL = "dovetail"  # suffix of A continues into prefix of B
    CONTAINMENT = "containment"  # B lies entirely within A


@dataclass(frozen=True)
class Overlap:
    """A scored overlap between strand-normalised reads.

    ``a`` is always the left (for dovetails) or containing (for
    containments) read; ``a_start`` is where the overlap begins in ``a``.
    """

    a: str
    b: str
    kind: OverlapKind
    length: int
    identity: float
    score: int
    a_start: int

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValueError("overlap endpoints must be distinct reads")
        if self.length < 0:
            raise ValueError("overlap length must be >= 0")
        if not 0.0 <= self.identity <= 1.0:
            raise ValueError("identity must be in [0, 1]")


def candidate_pairs(
    reads: Mapping[str, str], *, k: int = 12, min_shared_kmers: int = 3
) -> Iterator[tuple[str, str]]:
    """Yield read-id pairs sharing enough distinct k-mers on either strand.

    Pair ids are ordered by the mapping's insertion order, and each pair
    is yielded at most once.
    """
    order = {rid: i for i, rid in enumerate(reads)}
    index = KmerIndex(k=k)
    for rid, seq in reads.items():
        index.add(rid, seq)

    # Count *distinct* shared words per pair with early acceptance: once
    # a pair reaches ``min_shared_kmers`` its word set is dropped (the
    # ``None`` sentinel), so memory per pending pair is bounded by the
    # threshold instead of O(shared-word count) — which on large
    # clusters of near-identical transcripts is almost every k-mer.
    shared: dict[tuple[str, str], set[str] | None] = {}
    for rid, seq in reads.items():
        for variant in (seq, reverse_complement(seq)):
            variant = variant.upper()
            for q_off, word in kmers(variant, k):
                for other, _t_off in index.lookup(word):
                    if other == rid:
                        continue
                    pair = (
                        (rid, other) if order[rid] < order[other] else (other, rid)
                    )
                    words = shared.setdefault(pair, set())
                    if words is None:  # already accepted
                        continue
                    words.add(word)
                    if len(words) >= min_shared_kmers:
                        shared[pair] = None

    for pair, words in shared.items():
        if words is None:
            yield pair


def strands_agree(a_seq: str, b_seq: str, *, k: int = 12) -> bool:
    """True when ``a`` and ``b`` overlap on the same strand.

    Decided by majority vote over shared k-mers: forward/forward shared
    words versus forward/reverse-complement shared words. Ties count as
    agreement (no flip).
    """
    a_words = {w for _, w in kmers(a_seq.upper(), k)}
    fwd = len(a_words & {w for _, w in kmers(b_seq.upper(), k)})
    rev = len(
        a_words & {w for _, w in kmers(reverse_complement(b_seq.upper()), k)}
    )
    return fwd >= rev


def _classify(a_len: int, b_len: int, res: AlignmentResult) -> OverlapKind:
    if res.b_start == 0 and res.b_end == b_len and res.a_end < a_len:
        return OverlapKind.CONTAINMENT
    return OverlapKind.DOVETAIL


def compute_overlap(
    a_id: str,
    a_seq: str,
    b_id: str,
    b_seq: str,
    *,
    min_length: int = 40,
    min_identity: float = 0.90,
    gap: int = -6,
    affine: bool = False,
    gap_extend: int = -2,
) -> Overlap | None:
    """Best acceptable forward-strand overlap between two reads.

    Tries both left/right orders and returns ``None`` if neither
    arrangement clears the CAP3-style acceptance thresholds
    (``min_length`` overlap columns at ``min_identity``). With
    ``affine=True``, overlaps are scored with the Gotoh kernel (``gap``
    opens, ``gap_extend`` extends), like CAP3's own affine scheme.
    """
    best: Overlap | None = None
    for left_id, left_seq, right_id, right_seq in (
        (a_id, a_seq, b_id, b_seq),
        (b_id, b_seq, a_id, a_seq),
    ):
        if affine:
            from repro.bio.affine import affine_overlap

            res = affine_overlap(
                left_seq, right_seq, gap_open=gap, gap_extend=gap_extend
            )
        else:
            res = overlap_align(left_seq, right_seq, gap=gap)
        if res.length < min_length or res.identity < min_identity:
            continue
        kind = _classify(len(left_seq), len(right_seq), res)
        candidate = Overlap(
            a=left_id,
            b=right_id,
            kind=kind,
            length=res.length,
            identity=res.identity,
            score=res.score,
            a_start=res.a_start,
        )
        if best is None or candidate.score > best.score:
            best = candidate
    return best
