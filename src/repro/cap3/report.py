"""Assembly reports in CAP3's output styles.

CAP3 writes three artifacts next to its input: the contig FASTA, an
``.ace`` assembly file (the consed interchange format: ``AS``/``CO``/
``AF``/``RD`` records) and a human-readable ``.info`` summary. This
module renders the latter two from an :class:`AssemblyResult`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping

from repro.bio.seq import reverse_complement
from repro.cap3.assembler import AssemblyResult
from repro.util.iolib import atomic_write

__all__ = ["format_ace", "write_ace", "format_info"]

_WRAP = 60


def _wrap(seq: str) -> str:
    return "\n".join(seq[i : i + _WRAP] for i in range(0, len(seq), _WRAP))


def format_ace(result: AssemblyResult, reads: Mapping[str, str]) -> str:
    """Render the assembly as ACE text.

    ``reads`` maps read id → original sequence (needed for ``RD``
    records). Singlets are not part of ACE output, matching CAP3.
    """
    total_reads = sum(len(c.members) for c in result.contigs)
    blocks = [f"AS {len(result.contigs)} {total_reads}", ""]
    for contig in result.contigs:
        placements = contig.placements or tuple(
            (rid, 0, False) for rid in contig.members
        )
        blocks.append(
            f"CO {contig.id} {len(contig.seq)} {len(placements)} 0 U"
        )
        blocks.append(_wrap(contig.seq))
        blocks.append("")
        for read_id, offset, flipped in placements:
            strand = "C" if flipped else "U"
            # ACE offsets are 1-based relative to the consensus.
            blocks.append(f"AF {read_id} {strand} {offset + 1}")
        blocks.append("")
        for read_id, _offset, flipped in placements:
            seq = reads[read_id]
            if flipped:
                seq = reverse_complement(seq)
            blocks.append(f"RD {read_id} {len(seq)} 0 0")
            blocks.append(_wrap(seq))
            blocks.append(f"QA 1 {len(seq)} 1 {len(seq)}")
            blocks.append("")
    return "\n".join(blocks).rstrip() + "\n"


def write_ace(
    result: AssemblyResult, reads: Mapping[str, str], path: str | Path
) -> Path:
    """Write :func:`format_ace` output atomically."""
    return atomic_write(path, format_ace(result, reads))


def format_info(result: AssemblyResult) -> str:
    """The ``.info``-style membership summary CAP3 prints.

    One block per contig listing its reads, then the singlet roster.
    """
    lines = ["******************* Contig list *******************"]
    for contig in result.contigs:
        lines.append(f"{contig.id}  length={len(contig.seq)}  "
                     f"reads={len(contig.members)}")
        placements = contig.placements or tuple(
            (rid, 0, False) for rid in contig.members
        )
        for read_id, offset, flipped in sorted(placements, key=lambda p: p[1]):
            strand = "-" if flipped else "+"
            lines.append(f"    {read_id} {strand} at {offset}")
    lines.append("")
    lines.append(f"Singlets: {len(result.singlets)}")
    for record in result.singlets:
        lines.append(f"    {record.id} length={len(record)}")
    return "\n".join(lines) + "\n"
