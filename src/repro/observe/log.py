"""JSONL event-log persistence — monitord's ``*.jobstate.log``, typed.

Each event is one self-contained JSON line, so logs stream, append,
tail, and survive crashes. The schema is a **superset** of the attempt
schema in :mod:`repro.wms.monitor`: terminal events (``job.finish`` /
``job.evict``) carry every field of the old per-attempt lines plus an
``event`` discriminator and an event timestamp ``t``. Consequently:

* :func:`repro.wms.monitor.read_trace` reads an event log and recovers
  exactly the attempts (it skips non-terminal lines);
* :func:`read_events` reads an *old* attempt-only log and synthesises
  the terminal events, so pre-existing logs keep working.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable, Iterator

from repro.dagman.events import JobAttempt, JobStatus, ResourceProfile
from repro.observe.bus import EventBus
from repro.observe.events import EventKind, RunEvent

__all__ = [
    "EventLogWriter",
    "event_to_json",
    "event_to_json_line",
    "event_from_json",
    "serialize_event",
    "write_events",
    "read_events",
    "iter_events",
]

#: The per-attempt fields shared with :mod:`repro.wms.monitor`.
ATTEMPT_FIELDS = (
    "job_name",
    "transformation",
    "site",
    "machine",
    "attempt",
    "submit_time",
    "setup_start",
    "exec_start",
    "exec_end",
)


#: One-slot serialization memo. A run's bus fans each event out to
#: several persistence subscribers (event log, write-ahead journal);
#: caching the last event's flattened dict and compact line means the
#: flatten + serialize work happens once per event, not once per
#: subscriber. Holding a strong reference to the event itself makes the
#: ``is`` check sound (an id can't be recycled while we still hold it).
_memo: tuple[RunEvent, dict, str] | None = None


def serialize_event(event: RunEvent) -> tuple[dict, str]:
    """The flattened dict *and* compact JSON line for *event*, memoized
    per event object (see the memo above). Both values may be shared
    across callers — treat them as read-only."""
    global _memo
    memo = _memo
    if memo is not None and memo[0] is event:
        return memo[1], memo[2]
    data = _flatten(event)
    line = json.dumps(data, separators=(",", ":"))
    _memo = (event, data, line)
    return data, line


def event_to_json(event: RunEvent) -> dict:
    """Flatten one event to a JSON-able dict (one log line).

    The result may be shared across callers (see the memo above) —
    treat it as read-only; copy before mutating.
    """
    return serialize_event(event)[0]


def event_to_json_line(event: RunEvent) -> str:
    """One compact JSON line (no newline) for *event*, memo-shared with
    :func:`event_to_json` so co-subscribers serialize each event once."""
    return serialize_event(event)[1]


def _flatten(event: RunEvent) -> dict:
    out: dict[str, object] = {"event": event.kind.value, "t": event.time}
    for name in ("job_name", "transformation", "site", "machine", "attempt"):
        value = getattr(event, name)
        if value is not None:
            out[name] = value
    if event.record is not None:
        for name in ATTEMPT_FIELDS:
            out[name] = getattr(event.record, name)
        out["status"] = event.record.status.value
        if event.record.error:
            out["error"] = event.record.error
        if event.record.profile is not None:
            out["profile"] = event.record.profile.to_json()
    if event.detail:
        for key, value in event.detail.items():
            out.setdefault(key, value)
    return out


def _record_from(data: dict) -> JobAttempt:
    profile = data.get("profile")
    return JobAttempt(
        status=JobStatus(data["status"]),
        error=data.get("error"),
        profile=(
            ResourceProfile.from_json(profile)
            if isinstance(profile, dict)
            else None
        ),
        **{name: data[name] for name in ATTEMPT_FIELDS},
    )


def event_from_json(data: dict) -> RunEvent:
    """Parse one log line back into a :class:`RunEvent`.

    Lines without an ``event`` key are legacy attempt records from
    :func:`repro.wms.monitor.write_trace`; they become the terminal
    event of that attempt (``job.finish`` or ``job.evict``).
    """
    known = {
        "event", "t", "job_name", "transformation", "site", "machine",
        "attempt", "status", "error", "profile", *ATTEMPT_FIELDS,
    }
    detail = {k: v for k, v in data.items() if k not in known}
    if "event" not in data:  # legacy monitor.py line
        record = _record_from(data)
        kind = (
            EventKind.EVICT
            if record.status is JobStatus.EVICTED
            else EventKind.FINISH
        )
        return RunEvent(
            kind,
            record.exec_end,
            job_name=record.job_name,
            transformation=record.transformation,
            site=record.site,
            machine=record.machine,
            attempt=record.attempt,
            record=record,
            detail={"status": record.status.value},
        )
    kind = EventKind(data["event"])
    if "status" in data:
        detail["status"] = data["status"]
    return RunEvent(
        kind,
        data["t"],
        job_name=data.get("job_name"),
        transformation=data.get("transformation"),
        site=data.get("site"),
        machine=data.get("machine"),
        attempt=data.get("attempt"),
        record=_record_from(data) if kind in (EventKind.FINISH, EventKind.EVICT) else None,
        detail=detail,
    )


class EventLogWriter:
    """Bus subscriber that appends one JSON line per event.

    Lines are flushed per event so a concurrent ``repro-status
    --follow`` (or plain ``tail -f``) sees them as they happen.
    """

    def __init__(self, path: str | Path, bus: EventBus | None = None) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: IO[str] | None = open(self.path, "a", encoding="utf-8")
        self._unsubscribe = bus.subscribe(self) if bus is not None else None

    def __call__(self, event: RunEvent) -> None:
        if self._fh is None:
            raise ValueError(f"event log {self.path} is closed")
        self._fh.write(event_to_json_line(event) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "EventLogWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def write_events(path: str | Path, events: Iterable[RunEvent]) -> int:
    """Write a whole event stream as JSONL; returns the event count."""
    events = list(events)
    payload = "".join(event_to_json_line(e) + "\n" for e in events)
    from repro.util.iolib import atomic_write

    atomic_write(path, payload)
    return len(events)


def iter_events(path: str | Path) -> Iterator[RunEvent]:
    """Stream events from a JSONL log (legacy attempt logs included)."""
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            if line.strip():
                yield event_from_json(json.loads(line))


def read_events(path: str | Path) -> list[RunEvent]:
    """Load a JSONL event log (or legacy attempt log) into memory."""
    return list(iter_events(path))
