"""Per-invocation resource profiling — kickstart's ``<usage>`` block.

``pegasus-kickstart`` records not just the payload's duration but its
CPU split, memory high-water mark and I/O counters; this module is our
equivalent, feeding :class:`~repro.dagman.events.ResourceProfile` (the
schema lives with :class:`~repro.dagman.events.JobAttempt` so every
layer below observe can carry it).

Two producers:

* **measured** — :class:`RusageProbe` wraps a real payload invocation
  in :func:`resource.getrusage` deltas (the local backend's workers);
  on platforms without :mod:`resource` (Windows) it degrades to
  ``time.process_time`` for CPU and zeros elsewhere.
* **modelled** — :func:`modelled_profile` derives deterministic
  equivalents for the discrete-event simulators from a
  per-transformation coefficient table, so simulated runs produce the
  same report shapes as real ones (clearly labelled
  ``source="modelled"``).
"""

from __future__ import annotations

import time

from repro.dagman.events import ResourceProfile

try:  # POSIX only; the fallback keeps Windows runs working.
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platform
    _resource = None  # type: ignore[assignment]

__all__ = ["RusageProbe", "modelled_profile", "MODEL_COEFFICIENTS"]


class RusageProbe:
    """Start/stop rusage sampler around one payload invocation.

    CPU times are per-thread where the OS supports it
    (``RUSAGE_THREAD``, Linux) so concurrent thread-pool payloads do
    not bill each other; the RSS high-water mark is necessarily
    process-wide either way (that is what ``ru_maxrss`` means).

    >>> probe = RusageProbe()
    >>> _ = sum(range(1000))
    >>> profile = probe.stop()
    >>> profile.cpu_user_s >= 0 and profile.source == "measured"
    True
    """

    def __init__(self) -> None:
        if _resource is not None:
            self._who = getattr(
                _resource, "RUSAGE_THREAD", _resource.RUSAGE_SELF
            )
            self._start = _resource.getrusage(self._who)
        else:  # pragma: no cover - non-POSIX platform
            self._start_cpu = time.process_time()

    def stop(self) -> ResourceProfile:
        """Snapshot the deltas since construction."""
        if _resource is None:  # pragma: no cover - non-POSIX platform
            return ResourceProfile(
                cpu_user_s=max(0.0, time.process_time() - self._start_cpu),
            )
        end = _resource.getrusage(self._who)
        # ru_maxrss is a high-water mark, not a rate: report the final
        # value (a delta would be 0 for any payload smaller than what
        # the process already touched, which is a lie in the report).
        return ResourceProfile(
            cpu_user_s=max(0.0, end.ru_utime - self._start.ru_utime),
            cpu_sys_s=max(0.0, end.ru_stime - self._start.ru_stime),
            max_rss_kb=int(end.ru_maxrss),
            read_ops=max(0, end.ru_inblock - self._start.ru_inblock),
            write_ops=max(0, end.ru_oublock - self._start.ru_oublock),
        )


#: Per-transformation coefficients for model-derived profiles:
#: (user CPU fraction of the exec window, system CPU fraction,
#: RSS high-water in KB, read ops/s, write ops/s). Memory figures
#: follow the workload: BLAST-style alignment holds the protein
#: database resident; CAP3 assembly peaks with the largest cluster;
#: list/merge/concat tasks stream.
MODEL_COEFFICIENTS: dict[str, tuple[float, float, int, float, float]] = {
    "create_transcript_list": (0.55, 0.20, 96_000, 160.0, 40.0),
    "create_alignment_list": (0.55, 0.20, 128_000, 200.0, 40.0),
    "split_alignments": (0.60, 0.25, 180_000, 240.0, 160.0),
    "run_cap3": (0.93, 0.04, 420_000, 60.0, 30.0),
    "merge_joined": (0.50, 0.30, 140_000, 220.0, 220.0),
    "merge_unjoined": (0.50, 0.30, 140_000, 220.0, 220.0),
    "concat_final": (0.40, 0.35, 72_000, 260.0, 260.0),
    "stage_in": (0.05, 0.25, 24_000, 400.0, 400.0),
    "stage_out": (0.05, 0.25, 24_000, 400.0, 400.0),
    "cleanup": (0.02, 0.10, 8_000, 20.0, 60.0),
}

_DEFAULT_COEFFICIENTS = (0.85, 0.08, 64_000, 120.0, 60.0)


def modelled_profile(
    transformation: str,
    exec_s: float,
    *,
    speed: float = 1.0,
) -> ResourceProfile | None:
    """Deterministic model-derived profile for a simulated attempt.

    ``exec_s`` is the attempt's realized kickstart window; ``speed`` is
    the machine's relative speed (a faster machine does the same CPU
    work in less wall time, so utilization stays roughly constant while
    absolute CPU seconds shrink with the window). Returns ``None`` for
    attempts that never executed (``exec_s <= 0``) — matching the real
    backend, where a dead-on-arrival attempt has no usage block.

    Transformation names are matched on their stem before any planner
    decoration (``run_cap3_003`` → ``run_cap3``).
    """
    if exec_s <= 0:
        return None
    key = transformation
    if key not in MODEL_COEFFICIENTS:
        for stem in MODEL_COEFFICIENTS:
            if key.startswith(stem):
                key = stem
                break
    f_user, f_sys, rss_kb, read_rate, write_rate = MODEL_COEFFICIENTS.get(
        key, _DEFAULT_COEFFICIENTS
    )
    return ResourceProfile(
        cpu_user_s=round(exec_s * f_user, 6),
        cpu_sys_s=round(exec_s * f_sys, 6),
        # Bigger inputs per wall-second on fast machines: nudge the
        # high-water mark with speed so heterogeneity shows up.
        max_rss_kb=int(rss_kb * (0.9 + 0.1 * max(speed, 0.0))),
        read_ops=int(exec_s * read_rate),
        write_ops=int(exec_s * write_rate),
        source="modelled",
    )
