"""Counters, gauges, and histograms over the event bus.

A tiny Prometheus-shaped registry: metrics are named, optionally
labelled, and cheap enough to update on every event. The registry is a
plain in-process object — ``snapshot()`` renders everything to JSON-able
primitives for export next to the event log.

:func:`instrument` wires the standard workflow metrics onto a bus:
per-kind event counters, retry/eviction counters, an in-flight gauge,
queue-depth/busy-slot gauges fed by utilization samples, and per-
transformation kickstart/waiting histograms.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.observe.bus import EventBus
from repro.observe.events import EventKind, RunEvent

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "instrument",
    "merge_summaries",
]

Labels = tuple[tuple[str, str], ...]


def _labels(labels: Mapping[str, str] | None) -> Labels:
    return tuple(sorted((labels or {}).items()))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that goes up and down (queue depth, busy slots)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Streaming distribution summary (kept sorted for percentiles)."""

    __slots__ = ("_sorted", "sum")

    def __init__(self) -> None:
        self._sorted: list[float] = []
        self.sum = 0.0

    def observe(self, value: float) -> None:
        insort(self._sorted, value)
        self.sum += value

    @property
    def count(self) -> int:
        return len(self._sorted)

    @property
    def mean(self) -> float:
        return self.sum / len(self._sorted) if self._sorted else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError("p must be in [0, 100]")
        if not self._sorted:
            return 0.0
        rank = min(len(self._sorted) - 1, round(p / 100 * (len(self._sorted) - 1)))
        return self._sorted[rank]

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.percentile(100),
        }


def merge_summaries(summaries: Iterable[Mapping[str, float]]) -> dict[str, float]:
    """Combine histogram summaries into one roll-up.

    Labelled histograms (``kickstart_s{transformation=…}``) are
    per-label; reports often want the overall view too. ``mean`` is
    count-weighted (sum of sums over sum of counts — a plain average of
    means would let a 1-observation label outvote a 300-observation
    one); percentiles are upper-bounded by the max over labels, which is
    exact for ``max`` and conservative for p50/p95/p99.
    """
    merged = {"count": 0.0, "sum": 0.0, "mean": 0.0,
              "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    for s in summaries:
        merged["count"] += s.get("count", 0)
        merged["sum"] += s.get("sum", 0.0)
        for key in ("p50", "p95", "p99", "max"):
            merged[key] = max(merged[key], s.get(key, 0.0))
    if merged["count"]:
        merged["mean"] = merged["sum"] / merged["count"]
    return merged


@dataclass(frozen=True)
class _Key:
    name: str
    labels: Labels


class MetricsRegistry:
    """Named, labelled metrics with lazy creation.

    >>> reg = MetricsRegistry()
    >>> reg.counter("retries").inc()
    >>> reg.counter("retries").value
    1.0
    """

    def __init__(self) -> None:
        self._counters: dict[_Key, Counter] = {}
        self._gauges: dict[_Key, Gauge] = {}
        self._histograms: dict[_Key, Histogram] = {}

    def counter(self, name: str, labels: Mapping[str, str] | None = None) -> Counter:
        return self._counters.setdefault(_Key(name, _labels(labels)), Counter())

    def gauge(self, name: str, labels: Mapping[str, str] | None = None) -> Gauge:
        return self._gauges.setdefault(_Key(name, _labels(labels)), Gauge())

    def histogram(self, name: str, labels: Mapping[str, str] | None = None) -> Histogram:
        return self._histograms.setdefault(_Key(name, _labels(labels)), Histogram())

    @staticmethod
    def _render_key(key: _Key) -> str:
        if not key.labels:
            return key.name
        inner = ",".join(f"{k}={v}" for k, v in key.labels)
        return f"{key.name}{{{inner}}}"

    def snapshot(self) -> dict[str, object]:
        """Everything, as JSON-able primitives (sorted for determinism)."""
        return {
            "counters": {
                self._render_key(k): c.value
                for k, c in sorted(self._counters.items(), key=lambda i: self._render_key(i[0]))
            },
            "gauges": {
                self._render_key(k): g.value
                for k, g in sorted(self._gauges.items(), key=lambda i: self._render_key(i[0]))
            },
            "histograms": {
                self._render_key(k): h.summary()
                for k, h in sorted(self._histograms.items(), key=lambda i: self._render_key(i[0]))
            },
        }


def instrument(bus: EventBus, registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Subscribe the standard workflow metrics to ``bus``.

    Maintained live, from events alone:

    * ``events_total{kind=…}`` — counter per event kind;
    * ``retries_total`` / ``evictions_total`` / ``failures_total`` /
      ``timeouts_total`` / ``faults_injected_total``;
    * ``cache_hits_total{kind=…}`` / ``cache_misses_total{kind=…}`` —
      content-addressed result cache traffic;
    * ``jobs_in_flight`` — gauge (submits minus terminals);
    * ``queue_idle`` / ``slots_busy`` — gauges from utilization samples;
    * ``kickstart_s{transformation=…}``, ``waiting_s``,
      ``download_install_s`` — histograms from terminal records;
    * ``service_submissions_total{tenant=…}`` /
      ``service_rejections_total{tenant=…}`` /
      ``service_workflows_done_total{tenant=…}`` — WaaS front-end
      traffic, plus ``service_turnaround_s{tenant=…}`` and
      ``service_queue_wait_s{tenant=…}`` histograms (the per-tenant
      SLO distributions) from ``service.workflow_done`` details.
    """
    registry = registry or MetricsRegistry()

    def on_event(event: RunEvent) -> None:
        registry.counter("events_total", {"kind": event.kind.value}).inc()
        if event.kind is EventKind.SUBMIT:
            registry.gauge("jobs_in_flight").inc()
        elif event.kind is EventKind.RETRY:
            registry.counter("retries_total").inc()
        elif event.kind is EventKind.EVICT:
            registry.counter("evictions_total").inc()
        elif event.kind is EventKind.TIMEOUT:
            registry.counter("timeouts_total").inc()
        elif event.kind is EventKind.FAULT:
            registry.counter("faults_injected_total").inc()
        elif event.kind is EventKind.CACHE_HIT:
            registry.counter(
                "cache_hits_total",
                {"kind": str(event.detail.get("kind", ""))},
            ).inc()
        elif event.kind is EventKind.CACHE_MISS:
            registry.counter(
                "cache_misses_total",
                {"kind": str(event.detail.get("kind", ""))},
            ).inc()
        elif event.kind is EventKind.SERVICE_SUBMIT:
            registry.counter(
                "service_submissions_total",
                {"tenant": str(event.detail.get("tenant", ""))},
            ).inc()
        elif event.kind is EventKind.SERVICE_REJECT:
            registry.counter(
                "service_rejections_total",
                {"tenant": str(event.detail.get("tenant", ""))},
            ).inc()
        elif event.kind is EventKind.SERVICE_WORKFLOW_DONE:
            tenant = {"tenant": str(event.detail.get("tenant", ""))}
            registry.counter("service_workflows_done_total", tenant).inc()
            registry.histogram("service_turnaround_s", tenant).observe(
                float(event.detail.get("turnaround_s", 0.0))  # type: ignore[arg-type]
            )
            registry.histogram("service_queue_wait_s", tenant).observe(
                float(event.detail.get("queue_wait_s", 0.0))  # type: ignore[arg-type]
            )
        elif event.kind is EventKind.SAMPLE:
            registry.gauge("queue_idle").set(float(event.detail.get("idle", 0)))  # type: ignore[arg-type]
            registry.gauge("slots_busy").set(float(event.detail.get("busy", 0)))  # type: ignore[arg-type]
        if event.is_terminal and event.record is not None:
            record = event.record
            registry.gauge("jobs_in_flight").dec()
            if not record.status.is_success:
                registry.counter("failures_total").inc()
            registry.histogram(
                "kickstart_s", {"transformation": record.transformation}
            ).observe(record.kickstart_time)
            registry.histogram("waiting_s").observe(record.waiting_time)
            if record.download_install_time > 0:
                registry.histogram("download_install_s").observe(
                    record.download_install_time
                )

    bus.subscribe(on_event)
    return registry
