"""Makespan attribution: where did this run's wall time actually go?

The paper's whole argument (Figs. 4/5) is an *attribution* claim —
Sandhills beats OSG not on kickstart time but because waiting,
download/install and failure/retry overheads dominate OSG's makespan.
This module turns a :class:`~repro.dagman.events.WorkflowTrace` into
that claim's numbers: it walks the **realized critical path** (the chain
of attempts whose completions actually gated each other, via
:func:`repro.wms.statistics.critical_path` over final attempts) and
decomposes the end-to-end makespan into five mutually exclusive,
collectively exhaustive buckets:

==============  ======================================================
bucket          meaning (time on the critical path spent …)
==============  ======================================================
``waiting``     queued for a slot (paper's "Waiting Time")
``setup``       downloading/installing software (paper's
                "Download/Install Time"; OSG-only)
``exec``        running the payload (paper's "Kickstart Time")
``retry_lost``  redoing work: failed/evicted attempts of a path job
                plus any held-retry delay before its final attempt
``idle``        none of the above — scheduler latency between a
                parent finishing and the child's first submit
==============  ======================================================

The decomposition is exact by construction: the path's segments tile
``[first submit, last completion]`` with no gaps or overlaps, so the
buckets **sum to the makespan** (the invariant the property tests pin).

Each bucket also yields a *what-if shrink estimate* — "what would the
makespan be if X were free?" — by deleting that bucket's path segments.
It is a first-order estimate: shrinking one chain can promote a
different chain to critical, so the true answer is ≥ the estimate; for the
ranking story (which overhead to attack first) first order is exactly
what pegasus-statistics style tooling reports.

Without a DAG (bare event logs), the chain is inferred greedily from
timestamps alone — each step hops to the latest-finishing attempt that
started earlier — which preserves the sum invariant and is a good
proxy whenever dependencies follow time order (any DAGMan run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.dagman.events import JobAttempt, WorkflowTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dagman.dag import Dag

__all__ = [
    "BUCKETS",
    "PathSegment",
    "MakespanAttribution",
    "attribute_makespan",
    "aggregate_components",
]

#: Bucket names, in report order.
BUCKETS = ("waiting", "setup", "exec", "retry_lost", "idle")

_EPS = 1e-9


@dataclass(frozen=True)
class PathSegment:
    """One tile of the critical-path timeline."""

    start: float
    end: float
    bucket: str
    job_name: str | None = None  # None for idle gaps between jobs
    transformation: str | None = None
    site: str | None = None
    attempt: int | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class MakespanAttribution:
    """The answer to "where did the makespan go?"."""

    makespan_s: float
    start_s: float
    end_s: float
    #: Bucket name -> seconds on the critical path (sums to makespan).
    buckets: dict[str, float]
    #: The tiling itself, in time order.
    segments: list[PathSegment] = field(default_factory=list)
    #: The jobs on the realized critical path, in execution order.
    path_jobs: list[str] = field(default_factory=list)
    #: "critical-path" (DAG-guided) or "timeline" (greedy fallback).
    method: str = "critical-path"

    def what_if_free(self, bucket: str) -> float:
        """Estimated makespan if ``bucket`` cost nothing (first order:
        its path segments deleted, everything else unchanged)."""
        if bucket not in self.buckets:
            raise KeyError(f"unknown bucket: {bucket!r}")
        return self.makespan_s - self.buckets[bucket]

    def what_if(self) -> dict[str, float]:
        """All buckets' shrink estimates at once."""
        return {b: self.what_if_free(b) for b in BUCKETS}

    def ranked(self) -> list[tuple[str, float]]:
        """Buckets sorted by cost, biggest first (the bottleneck list)."""
        return sorted(
            self.buckets.items(), key=lambda kv: (-kv[1], kv[0])
        )

    def share(self, bucket: str) -> float:
        """Bucket's fraction of the makespan (0 when makespan is 0)."""
        if self.makespan_s <= 0:
            return 0.0
        return self.buckets[bucket] / self.makespan_s

    def by_transformation(self) -> dict[str, dict[str, float]]:
        """Path seconds per transformation per bucket (idle has no
        transformation and is omitted)."""
        out: dict[str, dict[str, float]] = {}
        for seg in self.segments:
            if seg.transformation is None:
                continue
            row = out.setdefault(
                seg.transformation, {b: 0.0 for b in BUCKETS}
            )
            row[seg.bucket] += seg.duration
        return out

    def by_site(self) -> dict[str, dict[str, float]]:
        """Path seconds per execution site per bucket."""
        out: dict[str, dict[str, float]] = {}
        for seg in self.segments:
            if seg.site is None:
                continue
            row = out.setdefault(seg.site, {b: 0.0 for b in BUCKETS})
            row[seg.bucket] += seg.duration
        return out


def _final_attempts(trace: WorkflowTrace) -> dict[str, JobAttempt]:
    """Each job's last attempt (retries can only move exec_end later,
    so this is also each job's latest-finishing attempt)."""
    final: dict[str, JobAttempt] = {}
    for a in trace:
        prior = final.get(a.job_name)
        if prior is None or a.attempt > prior.attempt:
            final[a.job_name] = a
    return final


def _chain_from_dag(trace: WorkflowTrace, dag: "Dag") -> list[JobAttempt]:
    from repro.wms.statistics import critical_path

    return critical_path(trace, dag, attempts="final")


def _chain_from_timeline(trace: WorkflowTrace) -> list[JobAttempt]:
    """DAG-free fallback: hop backward to the latest-finishing job that
    was first submitted strictly before the current one."""
    final = _final_attempts(trace)
    if not final:
        return []
    first_submit = {
        name: min(a.submit_time for a in trace.for_job(name))
        for name in final
    }
    current = max(final.values(), key=lambda a: a.exec_end)
    chain = [current]
    while True:
        cutoff = first_submit[current.job_name]
        candidates = [
            a for name, a in final.items()
            if name not in {c.job_name for c in chain}
            and first_submit[name] < cutoff - _EPS
        ]
        if not candidates:
            break
        # The gating proxy: whoever finished last among earlier starters.
        current = max(candidates, key=lambda a: a.exec_end)
        chain.append(current)
    chain.reverse()
    return chain


def attribute_makespan(
    trace: WorkflowTrace, dag: "Dag | None" = None
) -> MakespanAttribution:
    """Decompose the trace's makespan along its realized critical path.

    Pass the executed ``dag`` (a :class:`repro.dagman.dag.Dag`) for the
    true dependency-guided path; without it a timestamp-greedy chain is
    used (``method="timeline"``). Either way the returned buckets tile
    the makespan exactly.
    """
    if len(trace) == 0:
        return MakespanAttribution(
            makespan_s=0.0, start_s=0.0, end_s=0.0,
            buckets={b: 0.0 for b in BUCKETS},
            method="critical-path" if dag is not None else "timeline",
        )
    chain = (
        _chain_from_dag(trace, dag)
        if dag is not None
        else _chain_from_timeline(trace)
    )
    start_s = min(a.submit_time for a in trace)
    end_s = max(a.exec_end for a in trace)

    buckets = {b: 0.0 for b in BUCKETS}
    segments: list[PathSegment] = []
    cursor = start_s

    def tile(until: float, bucket: str, a: JobAttempt | None) -> None:
        nonlocal cursor
        if until <= cursor + _EPS:
            return
        seg = PathSegment(
            start=cursor,
            end=until,
            bucket=bucket,
            job_name=a.job_name if a is not None else None,
            transformation=a.transformation if a is not None else None,
            site=a.site if a is not None else None,
            attempt=a.attempt if a is not None else None,
        )
        segments.append(seg)
        buckets[bucket] += seg.duration
        cursor = until

    first_submit = {
        a.job_name: min(x.submit_time for x in trace.for_job(a.job_name))
        for a in chain
    }
    for a in chain:
        # Gap between the previous path job finishing and this job's
        # first submit: scheduler latency, not any job's fault.
        tile(min(first_submit[a.job_name], end_s), "idle", None)
        # Everything from the job's first submit to its final attempt's
        # submit was consumed by failed attempts and retry holds.
        tile(min(a.submit_time, end_s), "retry_lost", a)
        tile(min(a.setup_start, end_s), "waiting", a)
        tile(min(a.exec_start, end_s), "setup", a)
        tile(min(a.exec_end, end_s), "exec", a)
    # A pathological chain that stops short of the last completion (only
    # possible for the timeline fallback on overlapping-start traces)
    # closes with an idle tile so the sum invariant still holds.
    tile(end_s, "idle", None)

    return MakespanAttribution(
        makespan_s=end_s - start_s,
        start_s=start_s,
        end_s=end_s,
        buckets=buckets,
        segments=segments,
        path_jobs=[a.job_name for a in chain],
        method="critical-path" if dag is not None else "timeline",
    )


def aggregate_components(trace: WorkflowTrace) -> dict[str, float]:
    """Whole-trace (not path-restricted) component totals — the Fig. 5
    cumulative view: every attempt's waiting/setup/exec summed, plus the
    total time sunk into non-final failed attempts (``retry_lost``).

    These do *not* sum to the makespan (parallel attempts overlap);
    they answer "how much aggregate machine time went to each
    component", the companion question to the critical-path "how much
    wall time".
    """
    out = {
        "waiting": 0.0,
        "setup": 0.0,
        "exec": 0.0,
        "retry_lost": 0.0,
    }
    for a in trace:
        out["waiting"] += a.waiting_time
        out["setup"] += a.download_install_time
        out["exec"] += a.kickstart_time
        if not a.status.is_success:
            out["retry_lost"] += a.total_time
    return out
