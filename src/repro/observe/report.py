"""``repro-report``: deep performance attribution and run comparison.

Two subcommands over run artifacts (a submit directory, a bare
``events.jsonl``/``trace.jsonl`` log, or a previously saved report):

* ``repro-report analyze RUN`` — build the makespan-attribution report
  (:mod:`repro.observe.analysis` buckets + what-if estimates, kickstart
  percentiles, per-transformation/site tables, resource-profile
  roll-up) and render it as Markdown and/or JSON;
* ``repro-report compare BASE NEW`` — align two runs and report deltas
  (makespan, attribution buckets, kickstart percentiles, retry counts)
  with configurable ``--fail-on`` regression thresholds, so CI can gate
  a PR on "makespan must not regress more than 20 %".

Threshold specs are ``metric=limit`` where ``limit`` is either a
percentage (``makespan=5%`` — fail when NEW exceeds BASE by more than
5 %) or an absolute amount (``retries=3`` — fail when NEW exceeds BASE
by more than 3). All gated metrics are "higher is worse".
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

from repro.dagman.events import JobStatus, WorkflowTrace
from repro.observe.analysis import (
    BUCKETS,
    aggregate_components,
    attribute_makespan,
)
from repro.observe.metrics import Histogram
from repro.util.units import format_duration

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dagman.dag import Dag

__all__ = [
    "REPORT_SCHEMA",
    "COMPARE_SCHEMA",
    "build_report",
    "load_report",
    "dag_from_plan_meta",
    "render_markdown",
    "compare_reports",
    "render_compare_markdown",
    "parse_fail_on",
    "check_thresholds",
    "main",
]

REPORT_SCHEMA = "repro-report/1"
COMPARE_SCHEMA = "repro-report-compare/1"


# --------------------------------------------------------------------------
# loading


def dag_from_plan_meta(meta: dict) -> "Dag":
    """Rebuild an executable :class:`~repro.dagman.dag.Dag` from the
    ``plan.json`` a submit directory carries (same schema ``repro-plan``
    writes and ``repro-run`` reads)."""
    from repro.dagman.dag import Dag, DagJob

    dag = Dag(name=f"blast2cap3-n{meta.get('n')}-{meta.get('site')}")
    for name, spec in meta["jobs"].items():
        dag.add_job(
            DagJob(
                name=name,
                transformation=spec["transformation"],
                runtime=spec["runtime"],
                needs_setup=spec["needs_setup"],
                retries=spec["retries"],
                timeout_s=spec.get("timeout_s"),
                requirements=spec.get("requirements"),
                priority=spec.get("priority", 0),
            )
        )
    for parent, child in meta["edges"]:
        dag.add_edge(parent, child)
    return dag


def _try_read_events(path: Path) -> "list | None":
    """The full event stream when ``path`` is an observe event log
    (``None`` for classic attempt logs, which carry no lifecycle
    events to fold into spans)."""
    from repro.observe.log import read_events

    try:
        events = read_events(path)
    except (KeyError, ValueError):
        return None
    return events or None


def _load_trace_and_dag(
    path: Path,
) -> tuple[WorkflowTrace, "Dag | None", dict | None, "list | None", str]:
    """(trace, dag, metrics, events, label) from a run directory or
    log file."""
    from repro.wms.monitor import read_trace

    dag = None
    metrics = None
    events_list = None
    if path.is_dir():
        events = path / "events.jsonl"
        trace_log = path / "trace.jsonl"
        source = events if events.exists() else trace_log
        if not source.exists():
            raise FileNotFoundError(
                f"no events.jsonl or trace.jsonl under {path}"
            )
        trace = read_trace(source)
        if events.exists():
            events_list = _try_read_events(events)
        plan = path / "plan.json"
        if plan.exists():
            dag = dag_from_plan_meta(json.loads(plan.read_text()))
        metrics_path = path / "metrics.json"
        if metrics_path.exists():
            metrics = json.loads(metrics_path.read_text())
        return trace, dag, metrics, events_list, path.name or str(path)
    # A bare JSONL log (classic trace or observe event log).
    trace = read_trace(path)
    return trace, None, None, _try_read_events(path), path.stem


def load_report(path: str | Path, *, label: str | None = None) -> dict:
    """Load ``path`` into a report dict, whatever it is.

    * a directory — a submit/run directory (``events.jsonl`` or
      ``trace.jsonl``, plus ``plan.json``/``metrics.json`` when
      present);
    * a ``*.jsonl`` file — an event or attempt log;
    * a ``*.json`` file — a report previously saved by ``analyze``
      (checked via its ``schema`` field), e.g. a committed baseline.
    """
    path = Path(path)
    if path.is_file() and path.suffix == ".json":
        data = json.loads(path.read_text())
        if data.get("schema") != REPORT_SCHEMA:
            raise ValueError(
                f"{path} is not a {REPORT_SCHEMA} report "
                f"(schema={data.get('schema')!r})"
            )
        if label:
            data["label"] = label
        return data
    trace, dag, metrics, events, inferred = _load_trace_and_dag(path)
    return build_report(
        trace, dag=dag, metrics=metrics, events=events,
        label=label or inferred,
    )


# --------------------------------------------------------------------------
# report building


def _distribution(values: list[float]) -> dict[str, float]:
    hist = Histogram()
    for v in values:
        hist.observe(v)
    return hist.summary()


def _profile_rollup(trace: WorkflowTrace) -> dict | None:
    profiled = trace.profiled()
    if not profiled:
        return None
    wall = sum(a.kickstart_time for a in profiled)
    cpu_user = sum(a.profile.cpu_user_s for a in profiled)  # type: ignore[union-attr]
    cpu_sys = sum(a.profile.cpu_sys_s for a in profiled)  # type: ignore[union-attr]
    sources: dict[str, int] = {}
    for a in profiled:
        sources[a.profile.source] = sources.get(a.profile.source, 0) + 1  # type: ignore[union-attr]
    return {
        "attempts_profiled": len(profiled),
        "cpu_user_s": round(cpu_user, 6),
        "cpu_sys_s": round(cpu_sys, 6),
        "cpu_utilization": (
            round((cpu_user + cpu_sys) / wall, 4) if wall > 0 else 0.0
        ),
        "peak_rss_kb": trace.peak_rss_kb(),
        "read_ops": sum(a.profile.read_ops for a in profiled),  # type: ignore[union-attr]
        "write_ops": sum(a.profile.write_ops for a in profiled),  # type: ignore[union-attr]
        "sources": sources,
    }


def _trace_section(events: list, at: object) -> dict | None:
    """Span cross-check: fold the event stream into causal spans,
    re-derive the critical path purely from spans and links, and
    compare bucket-for-bucket against the event-record attribution.
    The two decompositions come from independent code paths, so
    agreement is a strong self-check on both."""
    from repro.observe.trace import (
        critical_path_from_spans,
        spans_from_events,
    )

    spans = spans_from_events(events)
    if not spans:
        return None
    cp = critical_path_from_spans(spans)
    deltas = {
        b: cp.buckets[b] - at.buckets[b]  # type: ignore[attr-defined]
        for b in BUCKETS
    }
    max_delta = max(abs(v) for v in deltas.values())
    tolerance = max(
        1e-6,
        0.001 * max(cp.makespan_s, at.makespan_s),  # type: ignore[attr-defined]
    )
    return {
        "spans": len(spans),
        "trace_id": spans[0].trace_id,
        "makespan_s": cp.makespan_s,
        "buckets": {b: cp.buckets[b] for b in BUCKETS},
        "tiling_total_s": cp.total(),
        "path_jobs": cp.path_jobs,
        "max_bucket_delta_s": max_delta,
        "agrees_with_attribution": max_delta <= tolerance,
    }


def build_report(
    trace: WorkflowTrace,
    *,
    dag: "Dag | None" = None,
    metrics: Mapping[str, object] | None = None,
    events: "list | None" = None,
    label: str = "run",
) -> dict:
    """One run's full attribution report as JSON-able primitives.

    ``events`` (the full lifecycle stream, when the run recorded one)
    adds a ``trace`` section: the span-derived critical path
    cross-checked against the attribution buckets.
    """
    at = attribute_makespan(trace, dag)
    successes = trace.successful()

    per_transformation: dict[str, dict[str, float]] = {}
    groups: dict[str, list] = {}
    for a in successes:
        groups.setdefault(a.transformation, []).append(a)
    for name in sorted(groups):
        attempts = groups[name]
        per_transformation[name] = {
            "count": len(attempts),
            "kickstart_mean": sum(a.kickstart_time for a in attempts) / len(attempts),
            "kickstart_max": max(a.kickstart_time for a in attempts),
            "waiting_mean": sum(a.waiting_time for a in attempts) / len(attempts),
            "setup_mean": sum(a.download_install_time for a in attempts) / len(attempts),
        }

    per_site: dict[str, dict[str, float]] = {}
    for a in trace:
        row = per_site.setdefault(
            a.site, {"attempts": 0, "failures": 0, "kickstart_total": 0.0}
        )
        row["attempts"] += 1
        if not a.status.is_success:
            row["failures"] += 1
        else:
            row["kickstart_total"] += a.kickstart_time

    # Group the path tiling per job for the report's path table.
    path_rows: dict[str, dict] = {}
    for seg in at.segments:
        if seg.job_name is None:
            continue
        row = path_rows.setdefault(seg.job_name, {
            "job": seg.job_name,
            "transformation": seg.transformation,
            "site": seg.site,
            "attempt": seg.attempt,
            **{b: 0.0 for b in BUCKETS},
        })
        row[seg.bucket] += seg.duration

    report = {
        "schema": REPORT_SCHEMA,
        "label": label,
        "workflow": getattr(dag, "name", None),
        "method": at.method,
        "makespan_s": at.makespan_s,
        "attribution": {b: at.buckets[b] for b in BUCKETS},
        "attribution_share": {b: at.share(b) for b in BUCKETS},
        "what_if": at.what_if(),
        "bottlenecks": [list(item) for item in at.ranked()],
        "critical_path": [
            path_rows[name] for name in at.path_jobs if name in path_rows
        ],
        "cumulative": aggregate_components(trace),
        "counts": {
            "attempts": len(trace),
            "jobs_succeeded": len(successes),
            "failures": len(trace.failures()),
            "retries": trace.retry_count,
            "evictions": sum(
                1 for a in trace if a.status is JobStatus.EVICTED
            ),
            "timeouts": sum(
                1 for a in trace if a.status is JobStatus.TIMEOUT
            ),
        },
        "kickstart": _distribution([a.kickstart_time for a in successes]),
        "waiting": _distribution([a.waiting_time for a in successes]),
        "setup": _distribution(
            [
                a.download_install_time
                for a in successes
                if a.download_install_time > 0
            ]
        ),
        "profile": _profile_rollup(trace),
        "per_transformation": per_transformation,
        "per_site": per_site,
    }
    if metrics is not None:
        report["metrics"] = metrics
    if events:
        section = _trace_section(events, at)
        if section is not None:
            report["trace"] = section
    return report


# --------------------------------------------------------------------------
# markdown rendering


def _fmt_s(value: float) -> str:
    return f"{value:,.1f}"


def render_markdown(report: dict) -> str:
    """The human half of the report (the JSON is the machine half)."""
    makespan = float(report["makespan_s"])
    attribution = report["attribution"]
    share = report["attribution_share"]
    what_if = report["what_if"]
    lines = [
        f"# Makespan attribution — {report['label']}",
        "",
        f"Makespan **{format_duration(makespan)}** ({makespan:,.0f} s), "
        f"decomposed along the realized critical path "
        f"(method: `{report['method']}`).",
        "",
        "| bucket | seconds | share | makespan if free |",
        "|---|---:|---:|---:|",
    ]
    for bucket, seconds in report["bottlenecks"]:
        lines.append(
            f"| {bucket} | {_fmt_s(float(seconds))} "
            f"| {100 * float(share[bucket]):.1f}% "
            f"| {_fmt_s(float(what_if[bucket]))} |"
        )
    check = sum(float(attribution[b]) for b in attribution)
    lines += [
        "",
        f"_Buckets sum to {check:,.1f} s = makespan (exact tiling)._",
        "",
        "## Critical path",
        "",
        "| job | transformation | site | attempt "
        "| retry_lost | waiting | setup | exec |",
        "|---|---|---|---:|---:|---:|---:|---:|",
    ]
    for row in report["critical_path"]:
        lines.append(
            f"| {row['job']} | {row['transformation']} | {row['site']} "
            f"| {row['attempt']} | {_fmt_s(row['retry_lost'])} "
            f"| {_fmt_s(row['waiting'])} | {_fmt_s(row['setup'])} "
            f"| {_fmt_s(row['exec'])} |"
        )
    cumulative = report["cumulative"]
    counts = report["counts"]
    kick = report["kickstart"]
    lines += [
        "",
        "## Cumulative components (all attempts, machine-time view)",
        "",
        "| waiting | download/install | exec | retry-lost |",
        "|---:|---:|---:|---:|",
        "| " + " | ".join(
            _fmt_s(float(cumulative[k]))
            for k in ("waiting", "setup", "exec", "retry_lost")
        ) + " |",
        "",
        "## Kickstart distribution (successful attempts)",
        "",
        "| count | mean | p50 | p95 | p99 | max |",
        "|---:|---:|---:|---:|---:|---:|",
        f"| {int(kick['count'])} | {_fmt_s(kick['mean'])} "
        f"| {_fmt_s(kick['p50'])} | {_fmt_s(kick['p95'])} "
        f"| {_fmt_s(kick['p99'])} | {_fmt_s(kick['max'])} |",
        "",
        f"Attempts {counts['attempts']}, succeeded "
        f"{counts['jobs_succeeded']}, failures {counts['failures']}, "
        f"retries {counts['retries']}, evictions {counts['evictions']}, "
        f"timeouts {counts['timeouts']}.",
    ]
    trace_section = report.get("trace")
    if trace_section:
        agrees = (
            "agrees with"
            if trace_section["agrees_with_attribution"]
            else "**DISAGREES** with"
        )
        buckets = trace_section["buckets"]
        lines += [
            "",
            "## Trace-derived critical path (span cross-check)",
            "",
            f"{trace_section['spans']} spans "
            f"(trace `{trace_section['trace_id']}`); span tiling sums to "
            f"{_fmt_s(trace_section['tiling_total_s'])} s over a "
            f"{_fmt_s(trace_section['makespan_s'])} s makespan and "
            f"{agrees} the event-record attribution "
            f"(max bucket delta "
            f"{trace_section['max_bucket_delta_s']:.3f} s).",
            "",
            "| " + " | ".join(BUCKETS) + " |",
            "|" + "---:|" * len(BUCKETS),
            "| " + " | ".join(
                _fmt_s(float(buckets[b])) for b in BUCKETS
            ) + " |",
        ]
    profile = report.get("profile")
    if profile:
        lines += [
            "",
            "## Resource usage (kickstart profiles)",
            "",
            f"{profile['attempts_profiled']} profiled attempts: "
            f"CPU {profile['cpu_user_s']:,.1f}s user + "
            f"{profile['cpu_sys_s']:,.1f}s system "
            f"({100 * profile['cpu_utilization']:.0f}% of exec wall), "
            f"peak RSS {profile['peak_rss_kb'] / 1024:,.0f} MB, "
            f"I/O {profile['read_ops']:,} reads / "
            f"{profile['write_ops']:,} writes "
            f"(sources: {profile['sources']}).",
        ]
    return "\n".join(lines)


# --------------------------------------------------------------------------
# comparison

#: Metric name -> extractor over a report dict. All "higher is worse".
_METRIC_PATHS: dict[str, tuple[str, ...]] = {
    "makespan": ("makespan_s",),
    **{bucket: ("attribution", bucket) for bucket in BUCKETS},
    "cumulative_exec": ("cumulative", "exec"),
    "cumulative_waiting": ("cumulative", "waiting"),
    "cumulative_setup": ("cumulative", "setup"),
    "cumulative_retry_lost": ("cumulative", "retry_lost"),
    "failures": ("counts", "failures"),
    "retries": ("counts", "retries"),
    "evictions": ("counts", "evictions"),
    "timeouts": ("counts", "timeouts"),
    "kickstart_mean": ("kickstart", "mean"),
    "kickstart_p50": ("kickstart", "p50"),
    "kickstart_p95": ("kickstart", "p95"),
    "kickstart_p99": ("kickstart", "p99"),
    "kickstart_max": ("kickstart", "max"),
    "cpu_s": ("profile", "cpu_user_s"),
    "peak_rss_kb": ("profile", "peak_rss_kb"),
    # Engine/scheduler throughput (bench_engine_throughput): costs, not
    # rates, so "higher is worse" holds like every other metric here.
    "engine_us_per_event": ("engine", "us_per_event"),
    "engine_us_per_job": ("engine", "us_per_job"),
    # Write-ahead journal costs (bench_crash_resume): journaling
    # overhead on a run, and recovery replay latency.
    "journal_overhead_pct": ("journal", "overhead_pct"),
    "journal_replay_ms_per_1k": ("journal", "replay_ms_per_1k"),
    # Multi-tenant service-layer costs (bench_service_load): wall
    # seconds per completed workflow (inverse of sustained
    # workflows/min, so "higher is worse" holds), tenant SLO tails,
    # and matchmaking cost per dispatched job.
    "service_seconds_per_workflow": ("service", "seconds_per_workflow"),
    "service_p95_turnaround_s": ("service", "p95_turnaround_s"),
    "service_p95_queue_wait_s": ("service", "p95_queue_wait_s"),
    "service_matchmaker_us_per_dispatch": (
        "service", "matchmaker_us_per_dispatch"
    ),
    # Span-tracing cost (bench_observability_smoke): extra wall % when
    # a SpanTracer + AnomalyMonitor join a fully-observed run (recorder
    # + metrics + status view + event log — what repro-run attaches).
    "tracing_overhead_pct": ("tracing", "overhead_pct"),
}


def _metric(report: dict, name: str) -> float:
    node = report
    for key in _METRIC_PATHS[name]:
        if not isinstance(node, Mapping) or key not in node:
            return 0.0
        node = node[key]
    return float(node)


def compare_reports(base: dict, new: dict) -> dict:
    """Align two reports and compute the full delta table."""
    metrics: dict = {}
    for name in _METRIC_PATHS:
        b, n = _metric(base, name), _metric(new, name)
        metrics[name] = {
            "base": b,
            "new": n,
            "delta": n - b,
            "pct": ((n - b) / b * 100.0) if b else None,
        }
    per_transformation: dict = {}
    base_t = base.get("per_transformation") or {}
    new_t = new.get("per_transformation") or {}
    for name in sorted(set(base_t) | set(new_t)):
        b_row, n_row = base_t.get(name), new_t.get(name)
        per_transformation[name] = {
            "base_kickstart_mean": b_row["kickstart_mean"] if b_row else None,
            "new_kickstart_mean": n_row["kickstart_mean"] if n_row else None,
            "base_count": b_row["count"] if b_row else 0,
            "new_count": n_row["count"] if n_row else 0,
        }
    return {
        "schema": COMPARE_SCHEMA,
        "base": base.get("label"),
        "new": new.get("label"),
        "metrics": metrics,
        "per_transformation": per_transformation,
    }


def parse_fail_on(specs: list[str]) -> dict[str, tuple[str, float]]:
    """``["makespan=5%", "retries=3"]`` → thresholds by metric.

    Each value is ``(kind, limit)`` with kind ``"pct"`` or ``"abs"``.
    Unknown metrics and malformed limits raise ``ValueError`` (the CLI
    maps that to exit code 2).
    """
    thresholds: dict[str, tuple[str, float]] = {}
    for spec in specs:
        metric, sep, limit = spec.partition("=")
        metric = metric.strip()
        if not sep or metric not in _METRIC_PATHS:
            known = ", ".join(sorted(_METRIC_PATHS))
            raise ValueError(
                f"bad --fail-on {spec!r}: want METRIC=LIMIT with METRIC "
                f"one of {known}"
            )
        limit = limit.strip()
        try:
            if limit.endswith("%"):
                thresholds[metric] = ("pct", float(limit[:-1]))
            else:
                thresholds[metric] = ("abs", float(limit.rstrip("s")))
        except ValueError:
            raise ValueError(
                f"bad --fail-on limit in {spec!r}: want e.g. 5% or 120"
            ) from None
    return thresholds


def check_thresholds(
    comparison: dict,
    thresholds: Mapping[str, tuple[str, float]],
) -> list[str]:
    """Human-readable descriptions of every exceeded threshold."""
    violations = []
    metrics = comparison["metrics"]
    for name, (kind, limit) in sorted(thresholds.items()):
        row = metrics[name]
        base, new = row["base"], row["new"]
        allowed = base * limit / 100.0 if kind == "pct" else limit
        if new - base > allowed:
            shown = f"{limit:g}%" if kind == "pct" else f"{limit:g}"
            violations.append(
                f"{name}: {new:,.1f} exceeds base {base:,.1f} "
                f"by {new - base:,.1f} (> allowed {shown})"
            )
    return violations


def render_compare_markdown(
    comparison: dict,
    *,
    thresholds: Mapping[str, tuple[str, float]] | None = None,
    violations: list[str] | None = None,
) -> str:
    metrics = comparison["metrics"]
    thresholds = thresholds or {}
    lines = [
        f"# Run comparison — `{comparison['base']}` → `{comparison['new']}`",
        "",
        "| metric | base | new | Δ | Δ% | gate |",
        "|---|---:|---:|---:|---:|---|",
    ]
    for name, row in metrics.items():
        if row["base"] == 0 and row["new"] == 0 and name not in thresholds:
            continue  # don't spam all-zero rows
        pct = f"{row['pct']:+.1f}%" if row["pct"] is not None else "—"
        if name in thresholds:
            kind, limit = thresholds[name]
            shown = f"{limit:g}%" if kind == "pct" else f"±{limit:g}"
            gate = f"≤ {shown}"
        else:
            gate = ""
        lines.append(
            f"| {name} | {row['base']:,.1f} | {row['new']:,.1f} "
            f"| {row['delta']:+,.1f} | {pct} | {gate} |"
        )
    if violations:
        lines += ["", "## REGRESSIONS", ""]
        lines += [f"* **{v}**" for v in violations]
    elif thresholds:
        lines += ["", "All gated metrics within thresholds."]
    return "\n".join(lines)


# --------------------------------------------------------------------------
# CLI


def _write_outputs(
    args: argparse.Namespace, payload: dict, markdown: str
) -> None:
    from repro.util.iolib import atomic_write

    if args.json_out:
        atomic_write(Path(args.json_out), json.dumps(payload, indent=2))
    if args.markdown_out:
        atomic_write(Path(args.markdown_out), markdown + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-report",
        description="Makespan attribution and differential run comparison.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser(
        "analyze", help="attribute one run's makespan"
    )
    analyze.add_argument(
        "run", help="run directory, events/trace .jsonl, or saved report"
    )
    analyze.add_argument("--label", default=None)
    analyze.add_argument("--json", dest="json_out", default=None,
                         help="also save the machine-readable report here")
    analyze.add_argument("--markdown", dest="markdown_out", default=None,
                         help="also save the rendered Markdown here")
    analyze.add_argument("--quiet", action="store_true",
                         help="suppress stdout (files only)")

    compare = sub.add_parser(
        "compare", help="diff two runs and gate on regressions"
    )
    compare.add_argument("base", help="baseline run dir / log / report")
    compare.add_argument("new", help="candidate run dir / log / report")
    compare.add_argument(
        "--fail-on", action="append", default=[], metavar="METRIC=LIMIT",
        help="regression gate, e.g. makespan=5%% or retries=3 "
             "(repeatable; exit 1 when any is exceeded)",
    )
    compare.add_argument("--json", dest="json_out", default=None)
    compare.add_argument("--markdown", dest="markdown_out", default=None)
    compare.add_argument("--quiet", action="store_true")

    args = parser.parse_args(argv)
    try:
        if args.command == "analyze":
            report = load_report(args.run, label=args.label)
            markdown = render_markdown(report)
            _write_outputs(args, report, markdown)
            if not args.quiet:
                print(markdown)
            return 0

        base = load_report(args.base)
        new = load_report(args.new)
        thresholds = parse_fail_on(args.fail_on)
        comparison = compare_reports(base, new)
        violations = check_thresholds(comparison, thresholds)
        comparison["violations"] = violations
        markdown = render_compare_markdown(
            comparison, thresholds=thresholds, violations=violations
        )
        _write_outputs(args, comparison, markdown)
        if not args.quiet:
            print(markdown)
        if violations:
            print(
                f"repro-report: {len(violations)} regression(s) exceeded "
                "--fail-on thresholds",
                file=sys.stderr,
            )
            return 1
        return 0
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro-report: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
