"""Chrome trace-event export: open any run in Perfetto / about://tracing.

Emits the `Trace Event Format`_ JSON object form. Mapping:

* **process** (pid) = execution site — Sandhills is one process, an OSG
  run fans out into one per contributing site;
* **thread** (tid) = machine/slot within the site;
* complete (``"ph": "X"``) events per attempt phase — ``waiting``,
  ``setup`` (OSG's download/install), and ``exec`` — so the paper's
  three per-job time components are literally the coloured bars;
* counter (``"ph": "C"``) events from utilization samples — busy/idle
  over time as a stacked area track;
* instant (``"ph": "i"``) events for the resilience layer's lifecycle
  points (``job.timeout``, ``job.held``, ``fault.injected``,
  ``blacklist.add``, ``rescue.round``) when the live event stream is
  passed via ``events=`` — faults and recovery are visible in Perfetto
  instead of silently dropped;
* flow (``"ph": "s"``/``"f"``) arrows linking each failed/evicted
  attempt to its retry, so a job's whole retry chain reads as one
  connected story across machines;
* attempts that carry a :class:`~repro.dagman.events.ResourceProfile`
  expose it in the exec slice's ``args`` (click a bar to see CPU split,
  RSS high-water mark and I/O counts).

Timestamps are microseconds as the format requires; the source clock is
the backend's (virtual seconds × 1e6 for simulated runs).

.. _Trace Event Format: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.dagman.events import WorkflowTrace
from repro.observe.events import EventKind, RunEvent
from repro.observe.sampler import UtilizationSample

__all__ = ["chrome_trace", "write_chrome_trace"]

_US = 1e6  # seconds -> microseconds

#: Resilience event kinds rendered as instant events, with their scope:
#: "t" (thread — pinned to the machine the event happened on) or "g"
#: (global — a vertical line across the whole trace).
_INSTANT_KINDS: dict[EventKind, str] = {
    EventKind.TIMEOUT: "t",
    EventKind.HELD: "t",
    EventKind.FAULT: "t",
    EventKind.BLACKLIST: "g",
    EventKind.RESCUE: "g",
}


def chrome_trace(
    trace: WorkflowTrace,
    *,
    samples: Iterable[UtilizationSample] | None = None,
    events: Iterable[RunEvent] | None = None,
    workflow: str = "workflow",
) -> dict:
    """Render a trace (plus optional utilization samples and live
    events) to the trace-event JSON object. ``json.dump`` the result,
    or use :func:`write_chrome_trace`."""
    out: list[dict] = []
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}

    def pid(site: str) -> int:
        if site not in pids:
            pids[site] = len(pids) + 1
            out.append({
                "ph": "M", "name": "process_name", "pid": pids[site], "tid": 0,
                "args": {"name": f"site:{site}"},
            })
        return pids[site]

    def tid(site: str, machine: str) -> int:
        key = (site, machine)
        if key not in tids:
            tids[key] = len(tids) + 1
            out.append({
                "ph": "M", "name": "thread_name", "pid": pid(site),
                "tid": tids[key], "args": {"name": machine},
            })
        return tids[key]

    for a in sorted(trace, key=lambda a: (a.submit_time, a.job_name, a.attempt)):
        p, t = pid(a.site), tid(a.site, a.machine)
        label = f"{a.job_name}#{a.attempt}"
        args = {
            "job": a.job_name,
            "transformation": a.transformation,
            "attempt": a.attempt,
            "status": a.status.value,
        }
        if a.error:
            args["error"] = a.error
        if a.profile is not None:
            args["profile"] = a.profile.to_json()
        phases = (
            ("waiting", a.submit_time, a.waiting_time),
            ("setup", a.setup_start, a.download_install_time),
            ("exec", a.exec_start, a.kickstart_time),
        )
        for cat, start, dur in phases:
            if dur <= 0 and cat != "exec":
                continue  # no distinct phase; keep exec even if instant
            out.append({
                "ph": "X",
                "name": f"{label} {cat}" if cat != "exec" else label,
                "cat": cat,
                "pid": p,
                "tid": t,
                "ts": start * _US,
                "dur": dur * _US,
                "args": args,
            })

    # Retry chains: a flow arrow from each non-final attempt's end to
    # the next attempt's submit, so Perfetto draws the requeue hop
    # (often onto a different machine or site).
    by_job: dict[str, list] = {}
    for a in trace:
        by_job.setdefault(a.job_name, []).append(a)
    flow_id = 0
    for job_name in sorted(by_job):
        # Order by submit time first: rescue rounds restart attempt
        # numbering at 1, so a merged multi-round trace sorted by
        # attempt alone would zig-zag backwards in time and the arrows
        # straddling a --resume boundary would be dropped.
        attempts = sorted(by_job[job_name], key=lambda a: (a.submit_time, a.attempt))
        for prev, nxt in zip(attempts, attempts[1:]):
            flow_id += 1
            common = {"name": "retry", "cat": "retry", "id": flow_id}
            out.append({
                "ph": "s", **common,
                "pid": pid(prev.site), "tid": tid(prev.site, prev.machine),
                "ts": prev.exec_end * _US,
            })
            out.append({
                "ph": "f", "bp": "e", **common,
                "pid": pid(nxt.site), "tid": tid(nxt.site, nxt.machine),
                "ts": nxt.submit_time * _US,
            })

    for e in events or ():
        scope = _INSTANT_KINDS.get(e.kind)
        if scope is None:
            continue
        detail = {k: v for k, v in e.detail.items()}
        if e.job_name is not None:
            detail.setdefault("job", e.job_name)
        if e.attempt is not None:
            detail.setdefault("attempt", e.attempt)
        record = {
            "ph": "i",
            "name": e.kind.value,
            "cat": "resilience",
            "s": scope,
            "ts": e.time * _US,
            "args": detail,
        }
        if scope == "t" and e.site is not None and e.machine is not None:
            record["pid"] = pid(e.site)
            record["tid"] = tid(e.site, e.machine)
        else:
            # Scheduler-scoped (held/rescue) or global events live on
            # the meta track shared with the utilization counters.
            record["s"] = "g" if scope == "g" else "p"
            record["pid"] = 0
            record["tid"] = 0
        out.append(record)

    for s in samples or ():
        out.append({
            "ph": "C", "name": "utilization", "pid": 0, "tid": 0,
            "ts": s.time * _US, "args": {"busy": s.busy, "idle": s.idle},
        })

    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": {"workflow": workflow, "attempts": len(trace)},
    }


def write_chrome_trace(
    path: str | Path,
    trace: WorkflowTrace,
    *,
    samples: Iterable[UtilizationSample] | None = None,
    events: Iterable[RunEvent] | None = None,
    workflow: str = "workflow",
) -> Path:
    """Write the trace-event JSON next to the run's other artifacts."""
    from repro.util.iolib import atomic_write

    path = Path(path)
    payload = json.dumps(
        chrome_trace(trace, samples=samples, events=events, workflow=workflow)
    )
    atomic_write(path, payload)
    return path
