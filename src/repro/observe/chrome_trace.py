"""Chrome trace-event export: open any run in Perfetto / about://tracing.

Emits the `Trace Event Format`_ JSON object form. Mapping:

* **process** (pid) = execution site — Sandhills is one process, an OSG
  run fans out into one per contributing site;
* **thread** (tid) = machine/slot within the site;
* complete (``"ph": "X"``) events per attempt phase — ``waiting``,
  ``setup`` (OSG's download/install), and ``exec`` — so the paper's
  three per-job time components are literally the coloured bars;
* counter (``"ph": "C"``) events from utilization samples — busy/idle
  over time as a stacked area track.

Timestamps are microseconds as the format requires; the source clock is
the backend's (virtual seconds × 1e6 for simulated runs).

.. _Trace Event Format: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.dagman.events import WorkflowTrace
from repro.observe.sampler import UtilizationSample

__all__ = ["chrome_trace", "write_chrome_trace"]

_US = 1e6  # seconds -> microseconds


def chrome_trace(
    trace: WorkflowTrace,
    *,
    samples: Iterable[UtilizationSample] | None = None,
    workflow: str = "workflow",
) -> dict:
    """Render a trace (plus optional utilization samples) to the
    trace-event JSON object. ``json.dump`` the result, or use
    :func:`write_chrome_trace`."""
    events: list[dict] = []
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}

    def pid(site: str) -> int:
        if site not in pids:
            pids[site] = len(pids) + 1
            events.append({
                "ph": "M", "name": "process_name", "pid": pids[site], "tid": 0,
                "args": {"name": f"site:{site}"},
            })
        return pids[site]

    def tid(site: str, machine: str) -> int:
        key = (site, machine)
        if key not in tids:
            tids[key] = len(tids) + 1
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid(site),
                "tid": tids[key], "args": {"name": machine},
            })
        return tids[key]

    for a in sorted(trace, key=lambda a: (a.submit_time, a.job_name, a.attempt)):
        p, t = pid(a.site), tid(a.site, a.machine)
        label = f"{a.job_name}#{a.attempt}"
        args = {
            "job": a.job_name,
            "transformation": a.transformation,
            "attempt": a.attempt,
            "status": a.status.value,
        }
        if a.error:
            args["error"] = a.error
        phases = (
            ("waiting", a.submit_time, a.waiting_time),
            ("setup", a.setup_start, a.download_install_time),
            ("exec", a.exec_start, a.kickstart_time),
        )
        for cat, start, dur in phases:
            if dur <= 0 and cat != "exec":
                continue  # no distinct phase; keep exec even if instant
            events.append({
                "ph": "X",
                "name": f"{label} {cat}" if cat != "exec" else label,
                "cat": cat,
                "pid": p,
                "tid": t,
                "ts": start * _US,
                "dur": dur * _US,
                "args": args,
            })

    for s in samples or ():
        events.append({
            "ph": "C", "name": "utilization", "pid": 0, "tid": 0,
            "ts": s.time * _US, "args": {"busy": s.busy, "idle": s.idle},
        })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"workflow": workflow, "attempts": len(trace)},
    }


def write_chrome_trace(
    path: str | Path,
    trace: WorkflowTrace,
    *,
    samples: Iterable[UtilizationSample] | None = None,
    workflow: str = "workflow",
) -> Path:
    """Write the trace-event JSON next to the run's other artifacts."""
    from repro.util.iolib import atomic_write

    path = Path(path)
    payload = json.dumps(
        chrome_trace(trace, samples=samples, workflow=workflow)
    )
    atomic_write(path, payload)
    return path
