"""``repro.observe`` — the live observability layer.

The paper's evaluation speaks pegasus-monitord's language (wall time,
kickstart, waiting, download/install); this package is the substrate
those numbers and the live view both come from:

* :mod:`repro.observe.events` — the typed lifecycle event taxonomy;
* :mod:`repro.observe.bus` — the subscriber API every backend emits to;
* :mod:`repro.observe.metrics` — counters / gauges / histograms;
* :mod:`repro.observe.sampler` — periodic utilization time series;
* :mod:`repro.observe.log` — JSONL event log (monitord's jobstate.log);
* :mod:`repro.observe.chrome_trace` — Perfetto-loadable trace export;
* :mod:`repro.observe.status` — ``pegasus-status`` style live render;
* :mod:`repro.observe.profile` — kickstart resource profiling (rusage
  capture for real runs, calibrated models for simulated ones);
* :mod:`repro.observe.analysis` — critical-path makespan attribution;
* :mod:`repro.observe.trace` — causal span tracing + OTLP/Perfetto export;
* :mod:`repro.observe.anomaly` — online anomaly detectors (stragglers,
  queue-wait spikes, blacklist storms, SLO burn);
* :mod:`repro.observe.report` — ``repro-report`` analyze/compare CLI.

One run, fully observed::

    bus = EventBus()
    recorder = EventRecorder(bus)
    metrics = instrument(bus)
    result, planned = simulate_paper_run(300, "osg", bus=bus,
                                         sample_interval_s=120.0)
    write_events("events.jsonl", recorder.events)
    write_chrome_trace("trace.json", result.trace)
"""

from repro.observe.analysis import (
    MakespanAttribution,
    aggregate_components,
    attribute_makespan,
)
from repro.observe.anomaly import (
    AnomalyMonitor,
    BlacklistStormDetector,
    QueueWaitDetector,
    RollingStats,
    SloBurnDetector,
    StragglerDetector,
)
from repro.observe.bus import (
    EventBus,
    EventRecorder,
    TraceCollector,
    events_to_trace,
)
from repro.observe.chrome_trace import chrome_trace, write_chrome_trace
from repro.observe.events import (
    TERMINAL_KINDS,
    EventKind,
    RunEvent,
    attempt_events,
)
from repro.observe.log import (
    EventLogWriter,
    iter_events,
    read_events,
    write_events,
)
from repro.observe.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    instrument,
    merge_summaries,
)
from repro.observe.profile import RusageProbe, modelled_profile
from repro.observe.sampler import UtilizationSample, UtilizationSampler
from repro.observe.status import StatusView, render_status
from repro.observe.trace import (
    Span,
    SpanCriticalPath,
    SpanLink,
    SpanTracer,
    critical_path_from_spans,
    derive_span_id,
    derive_trace_id,
    spans_created,
    spans_from_events,
    to_otlp_json,
    to_perfetto_json,
    write_otlp_trace,
    write_perfetto_trace,
)

__all__ = [
    "MakespanAttribution",
    "aggregate_components",
    "attribute_makespan",
    "EventBus",
    "EventRecorder",
    "TraceCollector",
    "events_to_trace",
    "chrome_trace",
    "write_chrome_trace",
    "TERMINAL_KINDS",
    "EventKind",
    "RunEvent",
    "attempt_events",
    "EventLogWriter",
    "iter_events",
    "read_events",
    "write_events",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "instrument",
    "merge_summaries",
    "RusageProbe",
    "modelled_profile",
    "build_report",
    "compare_reports",
    "load_report",
    "UtilizationSample",
    "UtilizationSampler",
    "StatusView",
    "render_status",
    "AnomalyMonitor",
    "BlacklistStormDetector",
    "QueueWaitDetector",
    "RollingStats",
    "SloBurnDetector",
    "StragglerDetector",
    "Span",
    "SpanCriticalPath",
    "SpanLink",
    "SpanTracer",
    "critical_path_from_spans",
    "derive_span_id",
    "derive_trace_id",
    "spans_created",
    "spans_from_events",
    "to_otlp_json",
    "to_perfetto_json",
    "write_otlp_trace",
    "write_perfetto_trace",
]

_REPORT_EXPORTS = ("build_report", "compare_reports", "load_report")


def __getattr__(name: str) -> object:
    # Lazy: repro.observe.report is also a __main__ entry point
    # (``python -m repro.observe.report``); importing it eagerly here
    # would make runpy warn about the double import.
    if name in _REPORT_EXPORTS:
        from repro.observe import report

        return getattr(report, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
