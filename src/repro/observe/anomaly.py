"""Online anomaly detection over the lifecycle event stream.

``repro-report`` explains a run *after* it finishes; this module
watches it *while* it runs. An :class:`AnomalyMonitor` subscribes to
the :class:`~repro.observe.bus.EventBus`, feeds every event through a
small catalog of streaming detectors, and re-emits each finding as an
``anomaly.*`` event on the same bus — so the live status view
(:mod:`repro.observe.status` renders an ALERTS pane), the event log,
and any tenant dashboard all see findings the moment they fire, not at
post-mortem time.

Detector catalog:

=========================  =========================================
detector                   fires when …
=========================  =========================================
:class:`StragglerDetector` a *still-running* attempt exceeds
                           ``factor ×`` its transformation's rolling
                           mean exec time (the planner's expected
                           runtime — stamped on ``job.submit`` as
                           ``expected_s`` — seeds the baseline, and
                           the :data:`~repro.observe.profile.
                           MODEL_COEFFICIENTS` CPU fractions annotate
                           the alert with how compute-bound the
                           transformation is modelled to be)
:class:`QueueWaitDetector` a submit→match wait blows past the site's
                           rolling baseline (queue depth attached)
:class:`BlacklistStormDetector`
                           the circuit breaker fires repeatedly
                           inside a sliding window — a site, not a
                           machine, is probably sick
:class:`SloBurnDetector`   too many of a tenant's recent workflows
                           missed the turnaround target (burn rate
                           over the PR 9 SLO histograms' stream)
=========================  =========================================

All detectors are deterministic, allocation-light, and advance purely
on event timestamps (virtual time under the simulators) — no wall
clock, no threads. Like the span tracer, the monitor ignores its own
``anomaly.*`` output and ``trace.span`` events on input, so tracer and
monitor can share one bus without feedback loops.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Mapping, Protocol

from repro.observe.bus import EventBus
from repro.observe.events import EventKind, RunEvent
from repro.observe.profile import MODEL_COEFFICIENTS

__all__ = [
    "AnomalyMonitor",
    "BlacklistStormDetector",
    "QueueWaitDetector",
    "RollingStats",
    "SloBurnDetector",
    "StragglerDetector",
]


def _cpu_fraction(transformation: str | None) -> float | None:
    """Modelled CPU share (user+sys) for a transformation stem, from
    the kickstart profile model — context for straggler triage."""
    if not transformation:
        return None
    key = transformation
    if key not in MODEL_COEFFICIENTS:
        for stem in MODEL_COEFFICIENTS:
            if key.startswith(stem):
                key = stem
                break
    coeffs = MODEL_COEFFICIENTS.get(key)
    if coeffs is None:
        return None
    return round(coeffs[0] + coeffs[1], 4)


@dataclass
class RollingStats:
    """Streaming mean/variance (Welford), optionally seeded with a
    prior observation so detection works from the very first event."""

    count: int = 0
    mean: float = 0.0
    _m2: float = field(default=0.0, repr=False)

    def seed(self, prior: float, weight: int = 1) -> None:
        """Treat ``prior`` as ``weight`` pre-observations (idempotent
        after real data arrives — only seeds an empty baseline)."""
        if self.count == 0 and weight > 0:
            self.count = weight
            self.mean = prior

    def observe(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0


class StragglerDetector:
    """Flag attempts that run far past their transformation baseline.

    On ``job.exec_start`` each attempt gets a deadline —
    ``max(min_s, factor × baseline mean)`` past its start — pushed on
    a min-heap. Every event's timestamp advances the clock; deadlines
    that expire while their attempt is *still running* fire one
    ``anomaly.straggler`` each (within the attempt, not after it).
    Successful completions feed the baseline; the planner's
    ``expected_s`` (stamped on submit) seeds it.
    """

    def __init__(self, *, factor: float = 3.0, min_s: float = 1.0) -> None:
        self.factor = factor
        self.min_s = min_s
        self.baselines: dict[str, RollingStats] = {}
        self._running: dict[tuple[str, int], RunEvent] = {}
        self._flagged: set[tuple[str, int]] = set()
        self._deadlines: list[tuple[float, str, int]] = []

    def _baseline(self, transformation: str | None) -> RollingStats:
        key = transformation or "?"
        stats = self.baselines.get(key)
        if stats is None:
            stats = self.baselines[key] = RollingStats()
        return stats

    def update(self, event: RunEvent) -> list[RunEvent]:
        alerts = self._expire(event.time)
        kind = event.kind
        if kind is EventKind.SUBMIT:
            expected = event.detail.get("expected_s")
            if isinstance(expected, (int, float)) and expected > 0:
                self._baseline(event.transformation).seed(float(expected))
        elif kind is EventKind.EXEC_START and event.job_name is not None:
            key = (event.job_name, event.attempt or 1)
            self._running[key] = event
            stats = self._baseline(event.transformation)
            if stats.count > 0:
                deadline = event.time + max(
                    self.min_s, self.factor * stats.mean
                )
                heapq.heappush(self._deadlines, (deadline, *key))
        elif kind in (EventKind.FINISH, EventKind.EVICT):
            key = (event.job_name or "", event.attempt or 1)
            self._running.pop(key, None)
            self._flagged.discard(key)
            record = event.record
            if record is not None and record.status.is_success:
                self._baseline(event.transformation).observe(
                    record.kickstart_time
                )
        return alerts

    def _expire(self, now: float) -> list[RunEvent]:
        alerts: list[RunEvent] = []
        while self._deadlines and self._deadlines[0][0] <= now:
            deadline, job, attempt = heapq.heappop(self._deadlines)
            key = (job, attempt)
            started = self._running.get(key)
            if started is None or key in self._flagged:
                continue
            self._flagged.add(key)
            stats = self._baseline(started.transformation)
            elapsed = now - started.time
            alerts.append(
                RunEvent(
                    EventKind.ANOMALY_STRAGGLER,
                    now,
                    job_name=job,
                    transformation=started.transformation,
                    site=started.site,
                    machine=started.machine,
                    attempt=attempt,
                    detail={
                        "elapsed_s": round(elapsed, 3),
                        "expected_s": round(stats.mean, 3),
                        "factor": self.factor,
                        "deadline_s": round(deadline, 3),
                        "modelled_cpu_frac": _cpu_fraction(
                            started.transformation
                        ),
                    },
                )
            )
        return alerts


class QueueWaitDetector:
    """Flag submit→match waits far above the site's rolling baseline."""

    def __init__(
        self,
        *,
        factor: float = 3.0,
        min_s: float = 60.0,
        min_samples: int = 5,
    ) -> None:
        self.factor = factor
        self.min_s = min_s
        self.min_samples = min_samples
        self.baselines: dict[str, RollingStats] = {}
        self._pending: dict[tuple[str, int], float] = {}

    def update(self, event: RunEvent) -> list[RunEvent]:
        kind = event.kind
        if kind is EventKind.SUBMIT and event.job_name is not None:
            self._pending[(event.job_name, event.attempt or 1)] = event.time
            return []
        if kind is not EventKind.MATCH or event.job_name is None:
            return []
        submitted = self._pending.pop(
            (event.job_name, event.attempt or 1), None
        )
        if submitted is None:
            return []
        wait = event.time - submitted
        site = event.site or "?"
        stats = self.baselines.setdefault(site, RollingStats())
        threshold = max(self.min_s, self.factor * stats.mean)
        fire = stats.count >= self.min_samples and wait > threshold
        stats.observe(wait)
        if not fire:
            return []
        detail: dict[str, object] = {
            "wait_s": round(wait, 3),
            "baseline_s": round(stats.mean, 3),
            "factor": self.factor,
        }
        if "queue_depth" in event.detail:
            detail["queue_depth"] = event.detail["queue_depth"]
        return [
            RunEvent(
                EventKind.ANOMALY_QUEUE_WAIT,
                event.time,
                job_name=event.job_name,
                transformation=event.transformation,
                site=event.site,
                machine=event.machine,
                attempt=event.attempt,
                detail=detail,
            )
        ]


class BlacklistStormDetector:
    """Flag bursts of circuit-breaker trips inside a sliding window."""

    def __init__(
        self, *, threshold: int = 3, window_s: float = 600.0
    ) -> None:
        self.threshold = threshold
        self.window_s = window_s
        self._times: Deque[float] = deque()
        self._quiet_until = float("-inf")

    def update(self, event: RunEvent) -> list[RunEvent]:
        if event.kind is not EventKind.BLACKLIST:
            return []
        now = event.time
        self._times.append(now)
        while self._times and self._times[0] < now - self.window_s:
            self._times.popleft()
        if len(self._times) < self.threshold or now < self._quiet_until:
            return []
        self._quiet_until = now + self.window_s  # one alert per storm
        return [
            RunEvent(
                EventKind.ANOMALY_BLACKLIST_STORM,
                now,
                job_name=event.job_name,
                site=event.site,
                machine=event.machine,
                detail={
                    "count": len(self._times),
                    "window_s": self.window_s,
                    "threshold": self.threshold,
                },
            )
        ]


class SloBurnDetector:
    """Flag tenants burning their SLO budget: the miss fraction over
    the last ``window`` completed workflows crossed ``burn_threshold``
    (with hysteresis — one alert per sustained burn, re-armed once the
    rate drops back under the threshold)."""

    def __init__(
        self,
        *,
        target_s: float = 3600.0,
        targets: Mapping[str, float] | None = None,
        window: int = 20,
        burn_threshold: float = 0.5,
        min_count: int = 5,
    ) -> None:
        self.target_s = target_s
        self.targets = dict(targets) if targets else {}
        self.window = window
        self.burn_threshold = burn_threshold
        self.min_count = min_count
        self._misses: dict[str, Deque[bool]] = {}
        self._burning: set[str] = set()

    def update(self, event: RunEvent) -> list[RunEvent]:
        if event.kind is not EventKind.SERVICE_WORKFLOW_DONE:
            return []
        tenant = str(event.detail.get("tenant", "?"))
        turnaround = event.detail.get("turnaround_s")
        if not isinstance(turnaround, (int, float)):
            return []
        target = self.targets.get(tenant, self.target_s)
        window = self._misses.setdefault(
            tenant, deque(maxlen=self.window)
        )
        window.append(float(turnaround) > target)
        if len(window) < self.min_count:
            return []
        burn = sum(window) / len(window)
        if burn < self.burn_threshold:
            self._burning.discard(tenant)
            return []
        if tenant in self._burning:
            return []
        self._burning.add(tenant)
        return [
            RunEvent(
                EventKind.ANOMALY_SLO_BURN,
                event.time,
                detail={
                    "tenant": tenant,
                    "burn_rate": round(burn, 4),
                    "target_s": target,
                    "window": len(window),
                },
            )
        ]


class _Detector(Protocol):
    def update(self, event: RunEvent) -> list[RunEvent]: ...


class AnomalyMonitor:
    """Compose the detector catalog into one bus subscriber.

    Findings accumulate in :attr:`alerts` and — when attached to an
    active bus — are re-emitted as ``anomaly.*`` events so downstream
    subscribers (status view, event log, journal consumers) see them
    inline with the lifecycle stream.
    """

    def __init__(
        self,
        bus: EventBus | None = None,
        *,
        straggler: StragglerDetector | None = None,
        queue_wait: QueueWaitDetector | None = None,
        blacklist: BlacklistStormDetector | None = None,
        slo: SloBurnDetector | None = None,
    ) -> None:
        self.straggler = straggler or StragglerDetector()
        self.queue_wait = queue_wait or QueueWaitDetector()
        self.blacklist = blacklist or BlacklistStormDetector()
        self.slo = slo or SloBurnDetector()
        self.detectors = (
            self.straggler,
            self.queue_wait,
            self.blacklist,
            self.slo,
        )
        self.alerts: list[RunEvent] = []
        self._bus = bus
        # Kind-routed dispatch: only the detectors that consume a kind
        # see it (one dict probe per event instead of fanning every
        # event through the whole catalog). The bool marks routes that
        # bypass the straggler, whose deadline clock must still advance
        # (when deadlines are armed) so in-flight stragglers are
        # flagged by whatever event crosses their deadline.
        self._routes: dict[
            EventKind, tuple[tuple[_Detector, ...], bool]
        ] = {
            EventKind.SUBMIT: ((self.straggler, self.queue_wait), False),
            EventKind.EXEC_START: ((self.straggler,), False),
            EventKind.FINISH: ((self.straggler,), False),
            EventKind.EVICT: ((self.straggler,), False),
            EventKind.MATCH: ((self.queue_wait,), True),
            EventKind.BLACKLIST: ((self.blacklist,), True),
            EventKind.SERVICE_WORKFLOW_DONE: ((self.slo,), True),
        }
        # The straggler's deadline heap is mutated in place (heapq)
        # and never rebound, so bind it once for the per-event armed
        # check — the common case (no deadline pending expiry) is one
        # dict probe plus one truthiness test.
        self._deadlines = self.straggler._deadlines
        self._expire = self.straggler._expire
        if bus is not None:
            bus.subscribe(self)

    def __call__(self, event: RunEvent) -> None:
        entry = self._routes.get(event.kind)
        if entry is None:
            # Unrouted kinds — including our own ``anomaly.*`` output
            # and the tracer's ``trace.span``, which can never reach a
            # detector (no feedback loops) — still advance the
            # straggler's deadline clock while deadlines are armed.
            if self._deadlines:
                alerts = self._expire(event.time)
                if alerts:
                    self._publish(alerts)
            return
        detectors, expire = entry
        if expire and self._deadlines:
            alerts = self._expire(event.time)
            if alerts:
                self._publish(alerts)
        for detector in detectors:
            alerts = detector.update(event)
            if alerts:
                self._publish(alerts)

    def _publish(self, alerts: list[RunEvent]) -> None:
        for alert in alerts:
            self.alerts.append(alert)
            if self._bus is not None and self._bus.active:
                self._bus.emit(alert)
