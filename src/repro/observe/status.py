"""``pegasus-status`` style live view over an event stream.

:func:`render_status` is a pure function events → text, so the same
code serves the one-shot CLI call, the ``--follow`` tail loop, and the
tests. It reports DAGMan's state histogram, the jobs currently on the
platform (with how long they have been there), the run's headline
counters, and an ALERTS pane tailing the online ``anomaly.*`` detector
stream — everything the paper's user would watch during the
10⁴-second OSG runs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.observe.events import EventKind, RunEvent

__all__ = ["StatusView", "render_status"]


class StatusView:
    """Incremental digest of an event stream (feed events in order)."""

    def __init__(self, *, total_jobs: int | None = None) -> None:
        self.total_jobs = total_jobs
        self.states: dict[str, str] = {}
        self.in_flight: dict[str, tuple[int, float, str]] = {}  # name -> (attempt, since, phase)
        self.done: set[str] = set()
        self.failures = 0
        self.retries = 0
        self.evictions = 0
        self.timeouts = 0
        self.held = 0
        self.faults_injected = 0
        self.blacklisted = 0
        self.rescue_rounds = 0
        self.last_time = 0.0
        self.workflow_done: bool | None = None  # success flag once ended
        #: every ``anomaly.*`` event seen, in arrival order (the
        #: ALERTS pane renders the tail of this)
        self.alerts: list[RunEvent] = []

    def update(self, event: RunEvent) -> None:
        self.last_time = max(self.last_time, event.time)
        kind = event.kind
        name = event.job_name
        if kind.value.startswith("anomaly."):
            self.alerts.append(event)
            return
        if kind is EventKind.STATE_CHANGE and name is not None:
            self.states[name] = str(event.detail.get("to", "?"))
        elif kind is EventKind.SUBMIT and name is not None:
            self.in_flight[name] = (event.attempt or 1, event.time, "queued")
        elif kind in (EventKind.MATCH, EventKind.SETUP_START, EventKind.EXEC_START):
            if name in self.in_flight:
                attempt, since, _ = self.in_flight[name]
                phase = {
                    EventKind.MATCH: "matched",
                    EventKind.SETUP_START: "setup",
                    EventKind.EXEC_START: "running",
                }[kind]
                self.in_flight[name] = (attempt, since, phase)
        elif kind in (EventKind.FINISH, EventKind.EVICT) and name is not None:
            self.in_flight.pop(name, None)
            record = event.record
            if record is not None and record.status.is_success:
                self.done.add(name)
            else:
                self.failures += 1
            if kind is EventKind.EVICT:
                self.evictions += 1
        elif kind is EventKind.RETRY:
            self.retries += 1
        elif kind is EventKind.TIMEOUT:
            self.timeouts += 1
        elif kind is EventKind.HELD:
            self.held += 1
        elif kind is EventKind.FAULT:
            self.faults_injected += 1
        elif kind is EventKind.BLACKLIST:
            self.blacklisted += 1
        elif kind is EventKind.RESCUE:
            self.rescue_rounds += 1
            # A resubmit starts the next round: finished jobs stay DONE,
            # but the headline flips back to RUNNING.
            if event.detail.get("resubmitting"):
                self.workflow_done = None
        elif kind is EventKind.WORKFLOW_END:
            self.workflow_done = bool(event.detail.get("success", False))

    def feed(self, events: Iterable[RunEvent]) -> "StatusView":
        for event in events:
            self.update(event)
        return self

    # -- rendering ------------------------------------------------------

    def state_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for state in self.states.values():
            counts[state] = counts.get(state, 0) + 1
        return counts

    def render(self, *, max_in_flight: int = 10, max_alerts: int = 5) -> str:
        total = self.total_jobs if self.total_jobs is not None else len(self.states)
        done = len(self.done)
        pct = 100.0 * done / total if total else 0.0
        if self.workflow_done is None:
            headline = "RUNNING"
        else:
            headline = "SUCCEEDED" if self.workflow_done else "FAILED"
        lines = [
            f"[{headline}] t={self.last_time:,.0f}s  "
            f"{done}/{total} jobs done ({pct:.1f}%)  "
            f"{self.failures} failed attempts, {self.evictions} evictions, "
            f"{self.retries} retries",
        ]
        resilience_bits = []
        if self.timeouts:
            resilience_bits.append(f"timeouts={self.timeouts}")
        if self.held:
            resilience_bits.append(f"held={self.held}")
        if self.faults_injected:
            resilience_bits.append(f"faults={self.faults_injected}")
        if self.blacklisted:
            resilience_bits.append(f"blacklisted={self.blacklisted}")
        if self.rescue_rounds:
            resilience_bits.append(f"rescue_rounds={self.rescue_rounds}")
        if resilience_bits:
            lines.append("resilience: " + "  ".join(resilience_bits))
        counts = self.state_counts()
        if counts:
            lines.append(
                "states: "
                + "  ".join(f"{k}={v}" for k, v in sorted(counts.items()))
            )
        if self.in_flight:
            lines.append(f"in flight ({len(self.in_flight)}):")
            shown: Sequence[tuple[str, tuple[int, float, str]]] = sorted(
                self.in_flight.items(), key=lambda i: i[1][1]
            )[:max_in_flight]
            for name, (attempt, since, phase) in shown:
                age = self.last_time - since
                lines.append(
                    f"  {name:<28s} #{attempt}  {phase:<8s} "
                    f"(for {age:,.0f}s)"
                )
            if len(self.in_flight) > max_in_flight:
                lines.append(f"  … {len(self.in_flight) - max_in_flight} more")
        if self.alerts:
            lines.append(f"ALERTS ({len(self.alerts)}):")
            for alert in self.alerts[-max_alerts:]:
                subject = alert.job_name or str(
                    alert.detail.get("tenant")
                    or alert.site
                    or "-"
                )
                why = "  ".join(
                    f"{k}={v}"
                    for k, v in alert.detail.items()
                    if k != "tenant" and not isinstance(v, (dict, list))
                )[:60]
                lines.append(
                    f"  t={alert.time:,.0f}s  {alert.kind.value:<18s} "
                    f"{subject:<24s} {why}"
                )
            if len(self.alerts) > max_alerts:
                lines.append(f"  … {len(self.alerts) - max_alerts} earlier")
        return "\n".join(lines)


def render_status(
    events: Iterable[RunEvent], *, total_jobs: int | None = None,
    max_in_flight: int = 10, max_alerts: int = 5,
) -> str:
    """One-shot render of an event stream's current status."""
    view = StatusView(total_jobs=total_jobs).feed(events)
    return view.render(max_in_flight=max_in_flight, max_alerts=max_alerts)
