"""The lifecycle event taxonomy — one vocabulary for every backend.

Where :class:`repro.dagman.events.JobAttempt` is the *post-hoc* record
of one try, a :class:`RunEvent` is the *live* unit of observability: a
timestamped point in a run's life, emitted the moment it happens (in
virtual time on the simulators, in wall time on the local backend).

The taxonomy mirrors pegasus-monitord's netlogger events:

========================  ==============================================
kind                      meaning
========================  ==============================================
``workflow.start``        DAGMan released the initial ready set
``workflow.end``          nothing more can run (success or not)
``job.submit``            DAGMan handed one attempt to the platform
``job.match``             a slot/instance was chosen for the attempt
``job.setup_start``       slot acquired; staging / download-install began
``job.exec_start``        the payload started
``job.finish``            terminal: payload succeeded or failed
``job.evict``             terminal: preempted by the resource owner
``job.retry``             DAGMan re-queued a failed/evicted job
``job.state_change``      a DAGMan node changed state (ready, done, …)
``platform.sample``       periodic utilization sample (busy/idle counts)
``job.timeout``           the attempt exceeded ``DagJob.timeout_s`` and
                          was killed (a ``job.finish`` with a
                          ``timeout`` record follows)
``job.held``              DAGMan parked a retry to wait out a
                          :class:`~repro.resilience.retry.RetryPolicy`
                          delay (``detail`` has delay/until)
``fault.injected``        the chaos layer fired a fault
                          (``detail["fault"]`` names it)
``blacklist.add``         the circuit breaker blocked a machine or site
``rescue.round``          ``run_with_recovery()`` wrote a rescue DAG
                          and is resubmitting
``cache.hit``             a content-addressed result was served from
                          the :mod:`repro.core.cache` store
                          (``detail`` has kind/key)
``cache.miss``            a result was absent (or corrupt) in the store
                          and is being recomputed
``journal.snapshot``      the write-ahead journal compacted its state
                          into ``snapshot.json`` and rotated segments
                          (``detail`` has seq/segment/records)
``journal.resume``        a run is continuing from a recovered journal
                          (``detail`` has replayed/done/torn/clock)
``service.submit``        a tenant handed a DAG to the WaaS front-end
                          (``detail`` has tenant/workflow/jobs)
``service.admit``         admission control accepted the workflow and
                          queued it for fair-share release
``service.reject``        admission control refused the workflow
                          (``detail["reason"]`` says why — infeasible
                          requirements, quota, unknown tenant)
``service.workflow_done`` a tenant workflow finished (``detail`` has
                          tenant/workflow/succeeded plus turnaround_s
                          and queue_wait_s for SLO accounting)
``trace.span``            the causal tracer closed a span
                          (``detail`` has span/kind/trace_id/span_id;
                          see :mod:`repro.observe.trace`)
``anomaly.straggler``     an attempt is running far past its
                          per-transformation baseline (``detail`` has
                          elapsed_s/expected_s/factor)
``anomaly.queue_wait``    an attempt waited in queue far longer than
                          the site's rolling baseline (``detail`` has
                          wait_s/baseline_s/queue_depth)
``anomaly.blacklist``     blacklist storm: the circuit breaker fired
                          repeatedly inside a short window (``detail``
                          has count/window_s)
``anomaly.slo_burn``      a tenant is burning its SLO budget: too many
                          recent workflows missed the turnaround
                          target (``detail`` has burn_rate/target_s)
========================  ==============================================

Terminal events (``job.finish`` / ``job.evict``) carry the full
:class:`JobAttempt` in :attr:`RunEvent.record`, so a stream of events is
a strict superset of a :class:`~repro.dagman.events.WorkflowTrace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping

from repro.dagman.events import JobAttempt, JobStatus

__all__ = ["EventKind", "RunEvent", "TERMINAL_KINDS", "attempt_events"]


class EventKind(Enum):
    """What happened (see the module docstring for the taxonomy)."""

    WORKFLOW_START = "workflow.start"
    WORKFLOW_END = "workflow.end"
    SUBMIT = "job.submit"
    MATCH = "job.match"
    SETUP_START = "job.setup_start"
    EXEC_START = "job.exec_start"
    FINISH = "job.finish"
    EVICT = "job.evict"
    RETRY = "job.retry"
    STATE_CHANGE = "job.state_change"
    SAMPLE = "platform.sample"
    TIMEOUT = "job.timeout"
    HELD = "job.held"
    FAULT = "fault.injected"
    BLACKLIST = "blacklist.add"
    RESCUE = "rescue.round"
    CACHE_HIT = "cache.hit"
    CACHE_MISS = "cache.miss"
    JOURNAL_SNAPSHOT = "journal.snapshot"
    JOURNAL_RESUME = "journal.resume"
    SERVICE_SUBMIT = "service.submit"
    SERVICE_ADMIT = "service.admit"
    SERVICE_REJECT = "service.reject"
    SERVICE_WORKFLOW_DONE = "service.workflow_done"
    TRACE_SPAN = "trace.span"
    ANOMALY_STRAGGLER = "anomaly.straggler"
    ANOMALY_QUEUE_WAIT = "anomaly.queue_wait"
    ANOMALY_BLACKLIST_STORM = "anomaly.blacklist"
    ANOMALY_SLO_BURN = "anomaly.slo_burn"


#: Kinds that end one attempt and carry its full :class:`JobAttempt`.
TERMINAL_KINDS = frozenset({EventKind.FINISH, EventKind.EVICT})


@dataclass(frozen=True)
class RunEvent:
    """One timestamped point in a run's life.

    ``time`` is on the emitting backend's clock (virtual seconds for the
    simulators, seconds since environment creation for the local
    backend). Job-scoped kinds fill ``job_name``/``attempt``; terminal
    kinds additionally carry the finished :class:`JobAttempt` in
    ``record``. ``detail`` holds kind-specific extras (state-change
    from/to, sample busy/idle counts, …).
    """

    kind: EventKind
    time: float
    job_name: str | None = None
    transformation: str | None = None
    site: str | None = None
    machine: str | None = None
    attempt: int | None = None
    record: JobAttempt | None = field(default=None, compare=False)
    detail: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind in TERMINAL_KINDS and self.record is None:
            raise ValueError(f"{self.kind.value} events must carry a record")

    @property
    def is_terminal(self) -> bool:
        """True for events that end one attempt (finish/evict)."""
        return self.kind in TERMINAL_KINDS


def attempt_events(record: JobAttempt) -> list[RunEvent]:
    """Reconstruct the lifecycle events of one finished attempt.

    Backends that only learn an attempt's timings at completion (the
    local process/thread pools report through a completion queue) use
    this to emit the same event sequence the simulators emit live —
    each event stamped with the attempt's own timestamps, so exporters
    and metrics see one consistent stream regardless of backend.

    ``job.setup_start`` is emitted only when a distinct setup phase
    exists (``setup_start < exec_start``); platforms with pre-installed
    software go straight from waiting to execution.
    """
    common = dict(
        job_name=record.job_name,
        transformation=record.transformation,
        site=record.site,
        machine=record.machine,
        attempt=record.attempt,
    )
    events = []
    if record.setup_start < record.exec_start:
        events.append(
            RunEvent(EventKind.SETUP_START, record.setup_start, **common)
        )
    events.append(RunEvent(EventKind.EXEC_START, record.exec_start, **common))
    if record.status is JobStatus.TIMEOUT:
        # The watchdog fired at exec_end; the terminal record follows.
        events.append(
            RunEvent(
                EventKind.TIMEOUT,
                record.exec_end,
                detail={"error": record.error} if record.error else {},
                **common,
            )
        )
    terminal = (
        EventKind.EVICT
        if record.status is JobStatus.EVICTED
        else EventKind.FINISH
    )
    events.append(
        RunEvent(
            terminal,
            record.exec_end,
            record=record,
            detail={"status": record.status.value},
            **common,
        )
    )
    return events
