"""Periodic utilization sampling on the virtual clock.

Statistics derived from attempt records answer "how long did things
take"; the sampler answers "what did the platform look like over time"
— busy slots and queue depth at a fixed cadence, the data behind
pegasus-plots' host-over-time chart and the Chrome-trace counter track.

The sampler rides the simulator's own event queue. It reschedules
itself only while *other* work is pending, so a draining simulation
still terminates: when the sampler fires and nothing else is queued,
it records one final sample and stops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.observe.bus import EventBus
from repro.observe.events import EventKind, RunEvent
from repro.sim.engine import Simulator

__all__ = ["UtilizationSample", "UtilizationSampler"]


class _Sampleable(Protocol):
    """What the sampler reads from a platform each tick."""

    def queue_status(self) -> dict[str, int]: ...


@dataclass(frozen=True)
class UtilizationSample:
    """One reading: platform occupancy at one instant."""

    time: float
    busy: int
    idle: int


class UtilizationSampler:
    """Sample ``platform.queue_status()`` every ``interval_s`` virtual
    seconds, recording locally and (optionally) emitting
    ``platform.sample`` events on a bus.

    Start it *after* the workload has seeded the queue — each tick
    reschedules only while other work is pending, so a sampler started
    on an idle simulator records one sample and stops:

    >>> from repro.sim.engine import Simulator
    >>> class Fake:
    ...     def queue_status(self):
    ...         return {"idle": 2, "running": 3}
    >>> sim = Simulator()
    >>> _ = sim.schedule(25.0, lambda: None)  # the workload
    >>> sampler = UtilizationSampler(sim, Fake(), interval_s=10.0).start()
    >>> sim.run()
    >>> [(s.time, s.busy) for s in sampler.samples]
    [(0.0, 3), (10.0, 3), (20.0, 3), (30.0, 3)]
    """

    def __init__(
        self,
        simulator: Simulator,
        platform: _Sampleable,
        *,
        interval_s: float = 60.0,
        bus: EventBus | None = None,
        site: str | None = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.simulator = simulator
        self.platform = platform
        self.interval_s = interval_s
        self.bus = bus
        self.site = site or getattr(
            getattr(platform, "config", None), "name", None
        )
        self.samples: list[UtilizationSample] = []
        self._stopped = False

    def start(self) -> "UtilizationSampler":
        """Take the first sample now and begin the periodic schedule."""
        self._tick()
        return self

    def stop(self) -> None:
        """Stop sampling (the pending tick becomes a no-op)."""
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped:
            return
        status = self.platform.queue_status()
        sample = UtilizationSample(
            time=self.simulator.now,
            busy=status.get("running", 0),
            idle=status.get("idle", 0),
        )
        self.samples.append(sample)
        if self.bus is not None:
            self.bus.emit(
                RunEvent(
                    EventKind.SAMPLE,
                    sample.time,
                    site=self.site,
                    detail={"busy": sample.busy, "idle": sample.idle},
                )
            )
        # Reschedule only while other work is pending; otherwise the
        # sampler would keep an otherwise-drained simulation alive.
        if self.simulator.pending > 0:
            self.simulator.schedule(self.interval_s, self._tick)
