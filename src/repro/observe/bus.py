"""The event bus: one subscriber API over every execution path.

The bus is deliberately synchronous and unbuffered — ``emit`` calls each
subscriber inline, in subscription order, on the emitting thread. Under
the simulators that thread is the single driver thread (virtual-time
determinism is preserved); the local backend emits from its driver
thread too (completions are marshalled there before any callback runs),
so subscribers never need locks.

Two stock subscribers cover the common cases:

* :class:`EventRecorder` — keep every event in memory (tests, ad-hoc
  analysis);
* :class:`TraceCollector` — fold terminal events back into a
  :class:`~repro.dagman.events.WorkflowTrace`, making the bus a strict
  superset of the old ``on_attempt`` hook and the single source of
  truth for ``pegasus-statistics`` style reporting.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.dagman.events import WorkflowTrace
from repro.observe.events import EventKind, RunEvent

__all__ = ["EventBus", "EventRecorder", "TraceCollector", "events_to_trace"]

Subscriber = Callable[[RunEvent], None]


class EventBus:
    """Synchronous publish/subscribe hub for :class:`RunEvent`.

    >>> bus = EventBus()
    >>> seen = []
    >>> unsubscribe = bus.subscribe(seen.append, kinds=(EventKind.SUBMIT,))
    >>> bus.emit(RunEvent(EventKind.SUBMIT, 0.0, job_name="j1"))
    >>> bus.emit(RunEvent(EventKind.WORKFLOW_END, 1.0))
    >>> [e.job_name for e in seen]
    ['j1']

    Hot-path notes: the subscriber list is snapshotted into a tuple on
    every (un)subscribe, so ``emit`` iterates a stable tuple with no
    per-event list copy, and a bus with no subscribers costs one counter
    increment. Emitters that would *construct* an event only to throw it
    away should check :attr:`active` first — the scheduler and all
    platform models do, which is why per-event overhead vanishes
    entirely when nothing listens.
    """

    __slots__ = ("_subscribers", "_snapshot", "_emitted")

    def __init__(self) -> None:
        self._subscribers: list[tuple[Subscriber, frozenset[EventKind] | None]] = []
        self._snapshot: tuple[tuple[Subscriber, frozenset[EventKind] | None], ...] = ()
        self._emitted = 0

    @property
    def emitted(self) -> int:
        """Total events published so far."""
        return self._emitted

    @property
    def active(self) -> bool:
        """True when at least one subscriber is attached.

        Emitters use this to skip event *construction* on a deaf bus;
        events skipped that way are never published, so they do not
        count toward :attr:`emitted`.
        """
        return bool(self._snapshot)

    def subscribe(
        self,
        subscriber: Subscriber,
        *,
        kinds: Iterable[EventKind] | None = None,
    ) -> Callable[[], None]:
        """Register ``subscriber``; returns an unsubscribe callable.

        ``kinds`` filters delivery to the given event kinds (all kinds
        when omitted).
        """
        entry = (
            subscriber,
            frozenset(kinds) if kinds is not None else None,
        )
        self._subscribers.append(entry)
        self._snapshot = tuple(self._subscribers)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(entry)
            except ValueError:
                pass  # already unsubscribed
            else:
                self._snapshot = tuple(self._subscribers)

        return unsubscribe

    def emit(self, event: RunEvent) -> None:
        """Deliver ``event`` to every matching subscriber, in order."""
        self._emitted += 1
        snapshot = self._snapshot
        if not snapshot:
            return  # deaf bus: count and move on
        for subscriber, kinds in snapshot:
            if kinds is None or event.kind in kinds:
                subscriber(event)

    def emit_batch(self, events: Iterable[RunEvent]) -> None:
        """Deliver several events with one subscriber-snapshot lookup.

        Equivalent to calling :meth:`emit` per event (same delivery
        order, same counting), but the snapshot is resolved once —
        platform models use this where one completion produces a burst
        (timeout + terminal, or a reconstructed attempt lifecycle).
        """
        snapshot = self._snapshot
        count = 0
        if not snapshot:
            for _ in events:
                count += 1
            self._emitted += count
            return
        for event in events:
            count += 1
            for subscriber, kinds in snapshot:
                if kinds is None or event.kind in kinds:
                    subscriber(event)
        self._emitted += count


class EventRecorder:
    """Subscriber that keeps every delivered event in memory."""

    def __init__(
        self, bus: EventBus | None = None, **subscribe_kwargs: Any
    ) -> None:
        self.events: list[RunEvent] = []
        if bus is not None:
            bus.subscribe(self, **subscribe_kwargs)

    def __call__(self, event: RunEvent) -> None:
        self.events.append(event)

    def of_kind(self, *kinds: EventKind) -> list[RunEvent]:
        """The recorded events of the given kinds, in arrival order."""
        wanted = frozenset(kinds)
        return [e for e in self.events if e.kind in wanted]

    def sequence(
        self, *, kinds: Iterable[EventKind] | None = None
    ) -> list[tuple[str, str | None]]:
        """The run as ``(kind.value, job_name)`` pairs — the
        timestamp-free shape used to compare runs across backends."""
        wanted = frozenset(kinds) if kinds is not None else None
        return [
            (e.kind.value, e.job_name)
            for e in self.events
            if wanted is None or e.kind in wanted
        ]


class TraceCollector:
    """Fold terminal events into a :class:`WorkflowTrace` as they land."""

    def __init__(self, bus: EventBus | None = None) -> None:
        self.trace = WorkflowTrace()
        if bus is not None:
            bus.subscribe(self, kinds=(EventKind.FINISH, EventKind.EVICT))

    def __call__(self, event: RunEvent) -> None:
        if event.is_terminal and event.record is not None:
            self.trace.add(event.record)


def events_to_trace(events: Iterable[RunEvent]) -> WorkflowTrace:
    """Rebuild the attempt trace from an event stream (terminal events
    carry the full records, so this is lossless)."""
    trace = WorkflowTrace()
    for event in events:
        if event.is_terminal and event.record is not None:
            trace.add(event.record)
    return trace
