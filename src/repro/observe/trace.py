"""Causal span tracing over the lifecycle event stream.

:mod:`repro.observe.events` records *what* happened; this module
records *why*. A :class:`SpanTracer` subscribes to the
:class:`~repro.observe.bus.EventBus` and folds the flat event stream
into a hierarchy of :class:`Span` objects with explicit causal links —
the shape pegasus-monitord feeds STAMPEDE, in modern trace clothing:

.. code-block:: text

    run ─┬─ service:<wf>  (WaaS admission / fair-share window)
         │     └─ admission
         └─ workflow[:<wf>]
               └─ job:<name>          ← link: released_by (parent's
                     └─ attempt n       final attempt freed this job)
                           ├─ waiting  ← link: retry_of (attempt n-1,
                           ├─ setup      incl. eviction → retry chains
                           └─ exec       and cross-rescue-round resumes)

Causal links (:class:`SpanLink`, ``attributes["relation"]``):

``released_by``
    a child job's span links the parent attempt whose completion
    flipped its pending-parent count to zero (the scheduler stamps
    ``released_by`` into the ``job.state_change`` → ready event).
``retry_of``
    attempt *n* links attempt *n-1* of the same job — including
    eviction→retry chains and the cross-round hop where a rescue
    resubmit restarts numbering at 1.
``rescue_continuation``
    a rescue round's workflow span links the previous round's.
``journal_resume``
    after ``repro-run --resume``, the resumed workflow span links the
    deterministic run-root span of the *same* trace: the trace id is
    persisted in the PR 8 write-ahead journal, so the pre-crash and
    post-resume exports join into one causally-connected trace.

IDs are W3C trace-context shaped (32-hex trace id, 16-hex span id) and
fully deterministic: derived by SHA-256 from the trace id, the span
name, and a per-name occurrence counter — no wall clock, no RNG, so a
given run always produces byte-identical traces and a resumed process
recreates the same run-root id its predecessor had.

Zero cost when detached: the tracer is just another bus subscriber, so
the PR 7 ``bus.active`` fast path still skips event *construction*
entirely when nothing listens; :func:`spans_created` exposes a process
counter the benchmarks assert stays flat on an untraced run. Near-zero
cost when attached: by default the tracer only *buffers* events during
the run (one list append each) and runs the causal fold once in
:meth:`SpanTracer.finish` — the record-cheap / process-at-export split
tracing backends use; ``announce=True`` opts into online folding so
each span close is re-emitted live as a ``trace.span`` event.

Exports: :func:`write_otlp_trace` (OTLP-JSON, one resourceSpans
envelope) and :func:`write_perfetto_trace` (Perfetto protobuf-JSON
TracePackets, machine-lane slices) complement the existing Chrome
trace; :func:`critical_path_from_spans` re-derives the PR 5 makespan
attribution purely from spans and their causal links, which
``repro-report analyze`` cross-checks against
:func:`~repro.observe.analysis.attribute_makespan`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

from repro.dagman.events import JobAttempt, JobStatus
from repro.observe.bus import EventBus
from repro.observe.events import EventKind, RunEvent

__all__ = [
    "Span",
    "SpanLink",
    "SpanTracer",
    "SpanCriticalPath",
    "critical_path_from_spans",
    "derive_span_id",
    "derive_trace_id",
    "spans_created",
    "spans_from_events",
    "to_otlp_json",
    "to_perfetto_json",
    "write_otlp_trace",
    "write_perfetto_trace",
]

_EPS = 1e-9

#: Process-wide count of Span objects ever constructed — the
#: zero-overhead benchmark guard asserts this stays flat across an
#: untraced run (proof the bus fast path kept span construction at 0).
_SPANS_CREATED = 0


def spans_created() -> int:
    """Total :class:`Span` objects constructed in this process."""
    return _SPANS_CREATED


def derive_trace_id(seed: str) -> str:
    """Deterministic 32-hex (W3C style) trace id from a seed string."""
    return hashlib.sha256(f"trace:{seed}".encode()).hexdigest()[:32]


def derive_span_id(trace_id: str, name: str, index: int) -> str:
    """Deterministic 16-hex span id: same trace/name/occurrence →
    same id, in any process (what makes resume continuations work)."""
    digest = hashlib.sha256(f"span:{trace_id}:{name}:{index}".encode())
    return digest.hexdigest()[:16]


@dataclass
class SpanLink:
    """A causal edge to another span (``attributes["relation"]``)."""

    trace_id: str
    span_id: str
    attributes: dict[str, object] = field(default_factory=dict)


@dataclass
class Span:
    """One timed unit of work in the causal hierarchy.

    ``kind`` is the level: ``run`` | ``workflow`` | ``service`` |
    ``job`` | ``attempt`` | ``phase``. ``end is None`` while open.
    """

    name: str
    kind: str
    trace_id: str
    span_id: str
    parent_span_id: str | None
    start: float
    end: float | None = None
    attributes: dict[str, object] = field(default_factory=dict)
    links: list[SpanLink] = field(default_factory=list)
    status: str = "unset"  # "unset" | "ok" | "error"

    def __post_init__(self) -> None:
        global _SPANS_CREATED
        _SPANS_CREATED += 1

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start


class _JobState:
    """Per-(scope, job) tracer bookkeeping (one rescue round's worth)."""

    __slots__ = ("span", "attempts", "final_attempt", "prev_final")

    def __init__(self, span: Span, prev_final: Span | None = None) -> None:
        self.span = span
        self.attempts: dict[int, Span] = {}
        self.final_attempt: Span | None = None
        self.prev_final = prev_final


class SpanTracer:
    """Bus subscriber that folds lifecycle events into causal spans.

    Attach with ``bus.subscribe(tracer)`` (or pass ``bus=``); call
    :meth:`finish` after the run to close any still-open spans. The
    same instance also works offline over a recorded event list (see
    :func:`spans_from_events`).

    With ``announce=True`` and an active bus, every span close emits a
    ``trace.span`` event — which the tracer itself ignores on input,
    as it does all ``anomaly.*`` kinds, so monitors and tracers can
    share one bus without feedback.
    """

    def __init__(
        self,
        trace_id: str | None = None,
        *,
        seed: str = "repro",
        bus: EventBus | None = None,
        announce: bool = False,
    ) -> None:
        self.trace_id = trace_id or derive_trace_id(seed)
        self.spans: list[Span] = []
        self._bus = bus
        self._announce = announce
        self._counts: dict[str, int] = {}
        self._run: Span | None = None
        self._workflows: dict[str, Span] = {}
        self._last_workflow: dict[str, Span] = {}
        self._jobs: dict[tuple[str, str], _JobState] = {}
        self._services: dict[str, Span] = {}
        self._admissions: dict[str, Span] = {}
        self._pending_release: dict[tuple[str, str], dict[str, object]] = {}
        self._pending_phases: list[tuple[Span, JobAttempt]] = []
        self._buffer: list[RunEvent] = []
        self._pending_resume: dict[str, object] | None = None
        self._pending_rescue: dict[str, object] | None = None
        self._last_time = 0.0
        # Per-kind dispatch: one dict probe on the hot path. Kinds
        # outside the span model — exec starts, utilization samples,
        # resilience instants, the tracer's own ``trace.span`` output
        # and the monitor's ``anomaly.*`` families — miss the table
        # and return immediately, so tracers and monitors can share a
        # bus without feedback loops.
        self._handlers: dict[EventKind, Callable[[RunEvent, float], None]] = {
            EventKind.WORKFLOW_START: self._h_workflow_start,
            EventKind.WORKFLOW_END: self._h_workflow_end,
            EventKind.SUBMIT: self._h_submit,
            EventKind.STATE_CHANGE: self._h_state_change,
            EventKind.FINISH: self._h_terminal,
            EventKind.EVICT: self._h_terminal,
            EventKind.MATCH: self._h_match,
            EventKind.RETRY: self._h_retry,
            EventKind.TIMEOUT: self._h_timeout,
            EventKind.RESCUE: self._h_rescue,
            EventKind.JOURNAL_RESUME: self._h_journal_resume,
            EventKind.SERVICE_SUBMIT: self._h_service_submit,
            EventKind.SERVICE_ADMIT: self._h_service_admit,
            EventKind.SERVICE_REJECT: self._h_service_reject,
            EventKind.SERVICE_WORKFLOW_DONE: self._h_service_done,
        }
        if bus is not None:
            bus.subscribe(self)

    # -- span plumbing ------------------------------------------------

    def _span(
        self,
        name: str,
        kind: str,
        parent: Span | None,
        start: float,
        attributes: dict[str, object] | None = None,
    ) -> Span:
        key = f"{kind}:{name}"
        index = self._counts.get(key, 0)
        self._counts[key] = index + 1
        span = Span(
            name=name,
            kind=kind,
            trace_id=self.trace_id,
            span_id=derive_span_id(self.trace_id, key, index),
            parent_span_id=parent.span_id if parent is not None else None,
            start=start,
            attributes=attributes if attributes is not None else {},
        )
        self.spans.append(span)
        return span

    def _close(self, span: Span, end: float, status: str = "ok") -> None:
        if span.end is not None:
            return
        span.end = max(end, span.start)
        span.status = status
        if self._announce and self._bus is not None and self._bus.active:
            self._bus.emit(
                RunEvent(
                    EventKind.TRACE_SPAN,
                    span.end,
                    job_name=(
                        str(span.attributes["job"])
                        if "job" in span.attributes
                        else None
                    ),
                    detail={
                        "span": span.name,
                        "span_kind": span.kind,
                        "trace_id": span.trace_id,
                        "span_id": span.span_id,
                        "duration_s": span.duration,
                        "status": status,
                    },
                )
            )

    def _ensure_run(self, t: float) -> Span:
        if self._run is None:
            self._run = self._span("run", "run", None, t)
        return self._run

    @property
    def run_root_span_id(self) -> str:
        """The deterministic run-root id for this trace (same in every
        process that shares the trace id — the resume link anchor)."""
        return derive_span_id(self.trace_id, "run:run", 0)

    # -- event handling ----------------------------------------------

    def __call__(self, event: RunEvent) -> None:
        # Ring-buffer discipline: while the run is live the tracer only
        # *records* (one append per event); the causal fold runs once in
        # :meth:`finish`, off the simulated run's hot path — the same
        # record-cheap / process-offline split real tracing backends
        # use. ``announce=True`` opts back into online folding, since
        # live ``trace.span`` emission needs spans to exist live.
        if self._announce:
            self._ingest(event)
        else:
            self._buffer.append(event)

    def _ingest(self, event: RunEvent) -> None:
        handler = self._handlers.get(event.kind)
        if handler is None:
            return  # outside the span model (see _handlers comment)
        t = event.time
        if t > self._last_time:
            self._last_time = t
        handler(event, t)

    @staticmethod
    def _scope(event: RunEvent) -> str:
        workflow = event.detail.get("workflow")
        return str(workflow) if workflow else ""

    def _h_workflow_start(self, event: RunEvent, t: float) -> None:
        self._on_workflow_start(
            event, self._ensure_run(t), self._scope(event), t
        )

    def _h_workflow_end(self, event: RunEvent, t: float) -> None:
        span = self._workflows.pop(self._scope(event), None)
        if span is not None:
            self._close(span, t)
            self._last_workflow[self._scope(event)] = span

    def _h_submit(self, event: RunEvent, t: float) -> None:
        self._on_submit(event, self._ensure_run(t), self._scope(event), t)

    def _h_state_change(self, event: RunEvent, t: float) -> None:
        self._ensure_run(t)
        self._on_state_change(event, self._scope(event), t)

    def _h_terminal(self, event: RunEvent, t: float) -> None:
        self._on_terminal(event, self._scope(event))

    def _h_match(self, event: RunEvent, t: float) -> None:
        self._on_match(event, self._scope(event), t)

    def _h_retry(self, event: RunEvent, t: float) -> None:
        state = self._jobs.get((self._scope(event), event.job_name or ""))
        if state is not None:
            retries = state.span.attributes.get("retries", 0)
            state.span.attributes["retries"] = int(retries) + 1  # type: ignore[call-overload]

    def _h_timeout(self, event: RunEvent, t: float) -> None:
        state = self._jobs.get((self._scope(event), event.job_name or ""))
        if state is not None and event.attempt in state.attempts:
            state.attempts[event.attempt].attributes["timeout"] = True

    def _h_rescue(self, event: RunEvent, t: float) -> None:
        self._pending_rescue = dict(event.detail)

    def _h_journal_resume(self, event: RunEvent, t: float) -> None:
        self._pending_resume = dict(event.detail)
        self._ensure_run(t).attributes["resumed"] = True

    def _h_service_submit(self, event: RunEvent, t: float) -> None:
        self._on_service_submit(
            event, self._ensure_run(t), self._scope(event), t
        )

    def _h_service_admit(self, event: RunEvent, t: float) -> None:
        scope = self._scope(event)
        admission = self._admissions.pop(scope, None)
        if admission is not None:
            self._close(admission, t)
        service = self._services.get(scope)
        if service is not None:
            service.attributes["admitted"] = True

    def _h_service_reject(self, event: RunEvent, t: float) -> None:
        scope = self._scope(event)
        admission = self._admissions.pop(scope, None)
        if admission is not None:
            admission.attributes["reason"] = str(
                event.detail.get("reason", "")
            )
            self._close(admission, t, status="error")
        service = self._services.pop(scope, None)
        if service is not None:
            self._close(service, t, status="error")

    def _h_service_done(self, event: RunEvent, t: float) -> None:
        service = self._services.pop(self._scope(event), None)
        if service is not None:
            succeeded = bool(event.detail.get("succeeded", True))
            for attr in ("succeeded", "turnaround_s", "queue_wait_s"):
                if attr in event.detail:
                    service.attributes[attr] = event.detail[attr]
            self._close(service, t, status="ok" if succeeded else "error")

    def _on_workflow_start(
        self, event: RunEvent, run: Span, scope: str, t: float
    ) -> None:
        parent: Span = self._services.get(scope, run)
        name = f"workflow:{scope}" if scope else "workflow"
        attrs: dict[str, object] = {}
        if scope:
            attrs["workflow"] = scope
        for extra in ("tenant", "jobs", "round"):
            if extra in event.detail:
                attrs[extra] = event.detail[extra]
        span = self._span(name, "workflow", parent, t, attrs)
        previous = self._last_workflow.get(scope)
        if previous is not None:
            link_attrs: dict[str, object] = {"relation": "rescue_continuation"}
            if self._pending_rescue is not None:
                for extra in ("round", "failed", "remaining"):
                    if extra in self._pending_rescue:
                        link_attrs[extra] = self._pending_rescue[extra]
            span.links.append(
                SpanLink(self.trace_id, previous.span_id, link_attrs)
            )
            self._pending_rescue = None
        if self._pending_resume is not None:
            link_attrs = {"relation": "journal_resume"}
            for extra in ("replayed", "done", "torn", "clock"):
                if extra in self._pending_resume:
                    link_attrs[extra] = self._pending_resume[extra]
            # The run-root id is deterministic per trace id, so this
            # link lands on the pre-crash process's root span.
            span.links.append(
                SpanLink(self.trace_id, self.run_root_span_id, link_attrs)
            )
            self._pending_resume = None
        self._workflows[scope] = span

    def _on_submit(
        self, event: RunEvent, run: Span, scope: str, t: float
    ) -> None:
        name = event.job_name or ""
        key = (scope, name)
        state = self._jobs.get(key)
        if state is None or state.span.end is not None:
            attrs: dict[str, object] = {"job": name}
            if event.transformation:
                attrs["transformation"] = event.transformation
            if event.site:
                attrs["site"] = event.site
            if "tenant" in event.detail:
                attrs["tenant"] = event.detail["tenant"]
            parent = self._workflows.get(scope) or run
            span = self._span(f"job:{name}", "job", parent, t, attrs)
            prev_final = state.final_attempt if state is not None else None
            if state is not None:
                # A rescue round re-running a failed job: new span,
                # explicitly chained to the previous round's.
                span.links.append(
                    SpanLink(
                        self.trace_id,
                        state.span.span_id,
                        {"relation": "rescue_continuation"},
                    )
                )
            release = self._pending_release.pop(key, None)
            if release is not None:
                parent_name = str(release.get("released_by", ""))
                span.attributes["released_by"] = parent_name
                parent_state = self._jobs.get((scope, parent_name))
                if (
                    parent_state is not None
                    and parent_state.final_attempt is not None
                ):
                    span.links.append(
                        SpanLink(
                            self.trace_id,
                            parent_state.final_attempt.span_id,
                            {
                                "relation": "released_by",
                                "parent": parent_name,
                            },
                        )
                    )
            state = _JobState(span, prev_final=prev_final)
            self._jobs[key] = state
        attempt = event.attempt or 1
        attrs = {"job": name, "attempt": attempt}
        if event.site:
            attrs["site"] = event.site
        if event.transformation:
            attrs["transformation"] = event.transformation
        if "expected_s" in event.detail:
            attrs["expected_s"] = event.detail["expected_s"]
        aspan = self._span(
            f"{name}/attempt-{attempt}", "attempt", state.span, t, attrs
        )
        previous = state.attempts.get(attempt - 1)
        if previous is None and attempt == 1:
            previous = state.prev_final  # cross-rescue-round retry
        if previous is not None:
            aspan.links.append(
                SpanLink(
                    self.trace_id,
                    previous.span_id,
                    {
                        "relation": "retry_of",
                        "prior_status": str(
                            previous.attributes.get("status", "")
                        ),
                    },
                )
            )
        state.attempts[attempt] = aspan

    def _on_state_change(self, event: RunEvent, scope: str, t: float) -> None:
        to = str(event.detail.get("to", ""))
        name = event.job_name or ""
        if to == "ready" and "released_by" in event.detail:
            self._pending_release[(scope, name)] = dict(event.detail)
        elif to in ("done", "failed", "unrunnable"):
            state = self._jobs.get((scope, name))
            if state is not None and state.span.end is None:
                self._close(
                    state.span, t, status="ok" if to == "done" else "error"
                )

    def _on_terminal(self, event: RunEvent, scope: str) -> None:
        record = event.record
        if record is None:
            return
        state = self._jobs.get((scope, event.job_name or ""))
        if state is None:
            return
        aspan = state.attempts.get(record.attempt)
        if aspan is None or aspan.end is not None:
            return
        aspan.attributes.update(
            machine=record.machine,
            status=record.status.value,
            submit_time=record.submit_time,
            setup_start=record.setup_start,
            exec_start=record.exec_start,
            exec_end=record.exec_end,
        )
        if record.error:
            aspan.attributes["error"] = record.error
        # Phase child spans are fully derivable from the timestamps
        # just stamped on the attempt, so their materialization is
        # deferred to finish() — off the run's hot path (they are the
        # bulk of a trace's span count and nothing reads them live).
        self._pending_phases.append((aspan, record))
        ok = record.status is JobStatus.SUCCEEDED
        self._close(aspan, record.exec_end, status="ok" if ok else "error")
        state.final_attempt = aspan

    def _materialize_phases(self) -> None:
        pending, self._pending_phases = self._pending_phases, []
        for aspan, record in pending:
            common: dict[str, object] = {
                "job": record.job_name,
                "attempt": record.attempt,
                "machine": record.machine,
                "site": record.site,
            }
            prefix = f"{record.job_name}/a{record.attempt}"
            if record.setup_start - record.submit_time > _EPS:
                waiting = self._span(
                    f"{prefix}/waiting",
                    "phase",
                    aspan,
                    record.submit_time,
                    {**common, "phase": "waiting"},
                )
                self._close(waiting, record.setup_start)
            if record.exec_start - record.setup_start > _EPS:
                setup = self._span(
                    f"{prefix}/setup",
                    "phase",
                    aspan,
                    record.setup_start,
                    {**common, "phase": "setup"},
                )
                self._close(setup, record.exec_start)
            execution = self._span(
                f"{prefix}/exec",
                "phase",
                aspan,
                record.exec_start,
                {**common, "phase": "exec"},
            )
            self._close(execution, record.exec_end)

    def _on_match(self, event: RunEvent, scope: str, t: float) -> None:
        state = self._jobs.get((scope, event.job_name or ""))
        if state is None:
            return
        aspan = state.attempts.get(event.attempt or 1)
        if aspan is None:
            return
        if event.machine:
            aspan.attributes["machine"] = event.machine
        aspan.attributes["match_time"] = t
        if "queue_depth" in event.detail:
            aspan.attributes["queue_depth"] = event.detail["queue_depth"]

    def _on_service_submit(
        self, event: RunEvent, run: Span, scope: str, t: float
    ) -> None:
        attrs: dict[str, object] = {}
        for extra in ("tenant", "workflow", "jobs"):
            if extra in event.detail:
                attrs[extra] = event.detail[extra]
        service = self._span(f"service:{scope}", "service", run, t, attrs)
        self._services[scope] = service
        self._admissions[scope] = self._span(
            f"service:{scope}/admission",
            "phase",
            service,
            t,
            {"phase": "admission"},
        )

    # -- lifecycle ----------------------------------------------------

    def finish(self, at: float | None = None) -> list[Span]:
        """Fold any buffered events into spans, close every still-open
        span (children before parents) and return the full span list.

        Until this is called, :attr:`spans` is empty unless the tracer
        was constructed with ``announce=True`` (online folding)."""
        buffered, self._buffer = self._buffer, []
        for event in buffered:
            self._ingest(event)
        self._materialize_phases()
        end = self._last_time if at is None else max(at, self._last_time)
        for span in reversed(self.spans):
            if span.end is None:
                self._close(span, end, status=span.status or "unset")
        return self.spans


def spans_from_events(
    events: Iterable[RunEvent],
    *,
    trace_id: str | None = None,
    seed: str = "events",
) -> list[Span]:
    """Offline folding: replay a recorded event stream into spans."""
    tracer = SpanTracer(trace_id=trace_id, seed=seed)
    for event in events:
        tracer(event)
    return tracer.finish()


# -- trace-derived critical path -------------------------------------


@dataclass
class SpanCriticalPath:
    """The makespan re-derived purely from spans and causal links.

    ``buckets`` uses the same five-way split as
    :class:`~repro.observe.analysis.MakespanAttribution` and tiles
    ``[start_s, end_s]`` exactly, so it can be cross-checked
    bucket-for-bucket against the event-record attribution.
    """

    makespan_s: float
    start_s: float
    end_s: float
    buckets: dict[str, float]
    path_jobs: list[str] = field(default_factory=list)

    def total(self) -> float:
        return sum(self.buckets.values())


def critical_path_from_spans(spans: Sequence[Span]) -> SpanCriticalPath:
    """Walk ``released_by`` links backward from the last-finishing
    attempt and tile the makespan into the standard five buckets.

    The chain hop uses the *causal* edge the scheduler recorded (which
    parent's completion released each job), so on a clean run it
    reproduces :func:`repro.wms.statistics.critical_path` — the parent
    that flips the pending count to zero is by definition the
    latest-finishing parent.
    """
    from repro.observe.analysis import BUCKETS

    buckets = {b: 0.0 for b in BUCKETS}
    attempts = [
        s
        for s in spans
        if s.kind == "attempt" and s.end is not None and "exec_end" in s.attributes
    ]
    if not attempts:
        return SpanCriticalPath(0.0, 0.0, 0.0, buckets)
    released_by = {
        str(s.attributes["job"]): str(s.attributes["released_by"])
        for s in spans
        if s.kind == "job" and "released_by" in s.attributes
    }

    def _num(span: Span, attr: str) -> float:
        return float(span.attributes[attr])  # type: ignore[arg-type]

    final: dict[str, Span] = {}
    first_submit: dict[str, float] = {}
    for s in attempts:
        job = str(s.attributes["job"])
        submit = _num(s, "submit_time")
        first_submit[job] = min(first_submit.get(job, submit), submit)
        prior = final.get(job)
        if prior is None or int(s.attributes["attempt"]) > int(  # type: ignore[call-overload]
            prior.attributes["attempt"]
        ):
            final[job] = s
    start_s = min(first_submit.values())
    end_s = max(_num(s, "exec_end") for s in attempts)

    current = max(
        final.values(),
        key=lambda s: (_num(s, "exec_end"), str(s.attributes["job"])),
    )
    chain = [current]
    seen = {str(current.attributes["job"])}
    while True:
        parent = released_by.get(str(chain[-1].attributes["job"]))
        if parent is None or parent in seen or parent not in final:
            break
        seen.add(parent)
        chain.append(final[parent])
    chain.reverse()

    cursor = start_s

    def tile(until: float, bucket: str) -> None:
        nonlocal cursor
        capped = min(until, end_s)
        if capped <= cursor + _EPS:
            return
        buckets[bucket] += capped - cursor
        cursor = capped

    for s in chain:
        job = str(s.attributes["job"])
        tile(first_submit[job], "idle")
        tile(_num(s, "submit_time"), "retry_lost")
        tile(_num(s, "setup_start"), "waiting")
        tile(_num(s, "exec_start"), "setup")
        tile(_num(s, "exec_end"), "exec")
    tile(end_s, "idle")

    return SpanCriticalPath(
        makespan_s=end_s - start_s,
        start_s=start_s,
        end_s=end_s,
        buckets=buckets,
        path_jobs=[str(s.attributes["job"]) for s in chain],
    )


# -- OTLP-JSON export -------------------------------------------------

_OTLP_STATUS = {
    "unset": "STATUS_CODE_UNSET",
    "ok": "STATUS_CODE_OK",
    "error": "STATUS_CODE_ERROR",
}


def _otlp_value(value: object) -> dict[str, object]:
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}  # proto3 JSON: int64 as string
    if isinstance(value, float):
        return {"doubleValue": value}
    return {"stringValue": str(value)}


def _otlp_attrs(attrs: Mapping[str, object]) -> list[dict[str, object]]:
    return [{"key": k, "value": _otlp_value(v)} for k, v in attrs.items()]


def to_otlp_json(
    spans: Sequence[Span],
    *,
    service_name: str = "repro",
    resource_attributes: Mapping[str, object] | None = None,
) -> dict[str, object]:
    """Render spans as one OTLP-JSON ``ExportTraceServiceRequest``
    (the ``resourceSpans`` envelope any OTLP/HTTP collector accepts)."""
    rendered: list[dict[str, object]] = []
    for s in spans:
        end = s.end if s.end is not None else s.start
        entry: dict[str, object] = {
            "traceId": s.trace_id,
            "spanId": s.span_id,
            "name": s.name,
            "kind": "SPAN_KIND_INTERNAL",
            "startTimeUnixNano": str(int(round(s.start * 1e9))),
            "endTimeUnixNano": str(int(round(end * 1e9))),
            "attributes": _otlp_attrs(
                {"repro.span_kind": s.kind, **s.attributes}
            ),
            "status": {"code": _OTLP_STATUS[s.status]},
        }
        if s.parent_span_id is not None:
            entry["parentSpanId"] = s.parent_span_id
        if s.links:
            entry["links"] = [
                {
                    "traceId": link.trace_id,
                    "spanId": link.span_id,
                    "attributes": _otlp_attrs(link.attributes),
                }
                for link in s.links
            ]
        rendered.append(entry)
    resource: dict[str, object] = {"service.name": service_name}
    if resource_attributes:
        resource.update(resource_attributes)
    return {
        "resourceSpans": [
            {
                "resource": {"attributes": _otlp_attrs(resource)},
                "scopeSpans": [
                    {
                        "scope": {
                            "name": "repro.observe.trace",
                            "version": "1",
                        },
                        "spans": rendered,
                    }
                ],
            }
        ]
    }


def write_otlp_trace(
    path: str | Path, spans: Sequence[Span], **kwargs: object
) -> Path:
    """Write :func:`to_otlp_json` output to ``path`` and return it."""
    out = Path(path)
    out.write_text(
        json.dumps(to_otlp_json(spans, **kwargs), indent=1) + "\n"  # type: ignore[arg-type]
    )
    return out


# -- Perfetto protobuf-JSON export -----------------------------------


def _perfetto_track(span: Span) -> str | None:
    """Track assignment; ``None`` drops the span from the lane view.

    Lanes must nest (Perfetto slices are begin/end stacks), so:
    machine lanes carry only the setup/exec occupancy phases (waiting
    happens *off* the machine and is omitted, as in the Chrome trace);
    job spans overlap arbitrarily and live only in the OTLP export.
    """
    if span.kind == "run":
        return "run"
    if span.kind == "workflow":
        scope = span.attributes.get("workflow")
        return f"workflow:{scope}" if scope else "workflow"
    if span.kind == "service":
        return f"service:{span.attributes.get('workflow', span.name)}"
    if span.kind == "phase":
        phase = span.attributes.get("phase")
        if phase == "admission":
            return f"service:{span.attributes.get('workflow', span.name)}"
        if phase in ("setup", "exec"):
            machine = span.attributes.get("machine")
            if machine:
                return f"{span.attributes.get('site', '')}/{machine}"
    return None


def to_perfetto_json(spans: Sequence[Span]) -> dict[str, object]:
    """Render spans as Perfetto protobuf-JSON ``TracePacket`` list
    (``traceconv`` / ui.perfetto.dev accept this shape directly)."""
    packets: list[dict[str, object]] = []
    track_uuids: dict[str, int] = {}

    def track(name: str) -> int:
        uuid = track_uuids.get(name)
        if uuid is None:
            uuid = len(track_uuids) + 1
            track_uuids[name] = uuid
            packets.append({"trackDescriptor": {"uuid": uuid, "name": name}})
        return uuid

    by_id = {s.span_id: s for s in spans}

    def depth(span: Span) -> int:
        d = 0
        parent = span.parent_span_id
        while parent is not None and d < 16:
            node = by_id.get(parent)
            if node is None:
                break
            d += 1
            parent = node.parent_span_id
        return d

    # (ts, 0=end first at equal ts, ±depth: parents open first and
    # close last) keeps every lane a well-formed slice stack.
    slices: list[tuple[float, int, int, int, Span]] = []
    for s in spans:
        if s.end is None:
            continue
        lane = _perfetto_track(s)
        if lane is None:
            continue
        uuid = track(lane)
        d = depth(s)
        slices.append((s.start, 1, d, uuid, s))
        slices.append((s.end, 0, -d, uuid, s))
    slices.sort(key=lambda item: (item[0], item[1], item[2]))
    for ts, begin, _, uuid, s in slices:
        ns = int(round(ts * 1e9))
        if begin:
            packets.append(
                {
                    "timestamp": ns,
                    "trustedPacketSequenceId": 1,
                    "trackEvent": {
                        "type": "TYPE_SLICE_BEGIN",
                        "trackUuid": uuid,
                        "name": s.name,
                    },
                }
            )
        else:
            packets.append(
                {
                    "timestamp": ns,
                    "trustedPacketSequenceId": 1,
                    "trackEvent": {
                        "type": "TYPE_SLICE_END",
                        "trackUuid": uuid,
                    },
                }
            )
    return {"packet": packets}


def write_perfetto_trace(path: str | Path, spans: Sequence[Span]) -> Path:
    """Write :func:`to_perfetto_json` output to ``path`` and return it."""
    out = Path(path)
    out.write_text(json.dumps(to_perfetto_json(spans), indent=1) + "\n")
    return out
