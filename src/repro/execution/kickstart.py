"""Kickstart: the per-invocation measurement wrapper.

Pegasus launches every remote job under ``pegasus-kickstart``, which
records the payload's actual duration and exit status — the paper's
"Kickstart Time" statistic is named after it. :func:`kickstart` is our
equivalent for Python payloads.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["KickstartRecord", "kickstart"]


@dataclass(frozen=True)
class KickstartRecord:
    """Outcome of one wrapped invocation."""

    duration_s: float
    success: bool
    result: Any = None
    error: str | None = None

    def __post_init__(self) -> None:
        if self.duration_s < 0:
            raise ValueError("duration must be >= 0")
        if self.success and self.error is not None:
            raise ValueError("successful records carry no error")


def kickstart(payload: Callable[[], Any]) -> KickstartRecord:
    """Invoke ``payload``, timing it and capturing any exception.

    Exceptions never propagate: a failing payload yields a record with
    ``success=False`` and the traceback text, which DAGMan turns into a
    failed attempt (and possibly a retry).
    """
    start = time.perf_counter()
    try:
        result = payload()
    except Exception:
        return KickstartRecord(
            duration_s=time.perf_counter() - start,
            success=False,
            error=traceback.format_exc(),
        )
    return KickstartRecord(
        duration_s=time.perf_counter() - start, success=True, result=result
    )
