"""Kickstart: the per-invocation measurement wrapper.

Pegasus launches every remote job under ``pegasus-kickstart``, which
records the payload's actual duration, exit status and resource usage —
the paper's "Kickstart Time" statistic is named after it.
:func:`kickstart` is our equivalent for Python payloads: alongside the
timing it captures a :class:`~repro.dagman.events.ResourceProfile`
(CPU split, RSS high-water mark, block-I/O counts) via
:class:`repro.observe.profile.RusageProbe`.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable

from repro.dagman.events import ResourceProfile
from repro.observe.profile import RusageProbe

__all__ = ["KickstartRecord", "kickstart"]


@dataclass(frozen=True)
class KickstartRecord:
    """Outcome of one wrapped invocation."""

    duration_s: float
    success: bool
    result: Any = None
    error: str | None = None
    #: Measured resource usage of the invocation (kickstart's
    #: ``<usage>`` block); None only when capture was disabled.
    profile: ResourceProfile | None = None

    def __post_init__(self) -> None:
        if self.duration_s < 0:
            raise ValueError("duration must be >= 0")
        if self.success and self.error is not None:
            raise ValueError("successful records carry no error")


def kickstart(
    payload: Callable[[], Any], *, profile: bool = True
) -> KickstartRecord:
    """Invoke ``payload``, timing and resource-profiling it.

    Exceptions never propagate: a failing payload yields a record with
    ``success=False`` and the traceback text, which DAGMan turns into a
    failed attempt (and possibly a retry). The usage profile is captured
    either way — a payload that dies after ten minutes of CPU burn still
    shows that burn in the report.
    """
    probe = RusageProbe() if profile else None
    start = time.perf_counter()
    try:
        result = payload()
    except Exception:
        return KickstartRecord(
            duration_s=time.perf_counter() - start,
            success=False,
            error=traceback.format_exc(),
            profile=probe.stop() if probe is not None else None,
        )
    return KickstartRecord(
        duration_s=time.perf_counter() - start,
        success=True,
        result=result,
        profile=probe.stop() if probe is not None else None,
    )
