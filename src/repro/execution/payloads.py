"""Picklable task payloads.

Thread pools cannot speed up the CPU-bound Python/NumPy payloads (the
GIL serialises them — measured 7x *slow-down* from contention), so the
local backend's parallel mode uses processes. Process pools need
picklable work units; a :class:`TaskCall` names its function by import
path (``"repro.core.tasks:run_cap3"``) plus plain-data arguments, so it
crosses the process boundary and still behaves like a zero-argument
callable on either side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from importlib import import_module
from typing import Any, Callable, Mapping

__all__ = ["TaskCall", "noop"]


def noop() -> None:
    """A do-nothing payload (stage-in/out jobs on a shared filesystem)."""
    return None


@dataclass(frozen=True)
class TaskCall:
    """A deferred, picklable function call.

    ``target`` is ``"package.module:function"``; ``args``/``kwargs``
    must themselves be picklable (paths as strings, params as plain
    dataclasses).
    """

    target: str
    args: tuple = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        module, sep, func = self.target.partition(":")
        if not sep or not module or not func:
            raise ValueError(
                f"target must look like 'pkg.module:function', got "
                f"{self.target!r}"
            )

    def resolve(self) -> Callable[..., Any]:
        """Import and return the target function."""
        module_name, _, func_name = self.target.partition(":")
        module = import_module(module_name)
        try:
            fn = getattr(module, func_name)
        except AttributeError:
            raise ImportError(
                f"{module_name!r} has no attribute {func_name!r}"
            ) from None
        if not callable(fn):
            raise TypeError(f"{self.target!r} is not callable")
        return fn

    def __call__(self) -> Any:
        return self.resolve()(*self.args, **dict(self.kwargs))
