"""The local execution backend: real payloads, real wall clock.

Two pool flavours:

* ``executor="process"`` (the performance mode) — payloads run in a
  ``ProcessPoolExecutor``, sidestepping the GIL; payloads must be
  picklable (see :class:`repro.execution.payloads.TaskCall`). Profiling
  drove this choice: CPU-bound NumPy/Python task bodies under a thread
  pool ran ~7x *slower* than serial from GIL contention.
* ``executor="thread"`` — payloads run on threads; any callable works
  (tests and closures), parallel speedup limited to I/O-bound work.

Either way, *all scheduling decisions* (DAGMan callbacks, new
submissions) happen on the driver thread via a completion queue —
DAGMan's state machine needs no locks and behaves identically under
this backend and the single-threaded simulators.
"""

from __future__ import annotations

import queue
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Literal

from repro.dagman.dag import DagJob
from repro.dagman.events import JobAttempt, JobStatus
from repro.execution.kickstart import KickstartRecord, kickstart
from repro.observe.bus import EventBus
from repro.observe.events import attempt_events

__all__ = ["LocalEnvironment"]


def _run_payload(payload: Callable[[], Any]) -> tuple[float, bool, str | None]:
    """Worker-side wrapper: returns (duration, success, error)."""
    record: KickstartRecord = kickstart(payload)
    return record.duration_s, record.success, record.error


class LocalEnvironment:
    """Run DAG jobs' Python payloads locally (an ``ExecutionEnvironment``).

    ``site`` labels the trace records; ``max_workers`` is the local
    parallelism (the "multiple computational nodes" of the paper,
    scaled down to one machine's cores).
    """

    def __init__(
        self,
        *,
        max_workers: int = 4,
        site: str = "local",
        executor: Literal["thread", "process"] = "thread",
        bus: EventBus | None = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if executor not in ("thread", "process"):
            raise ValueError(f"unknown executor kind: {executor!r}")
        self.site = site
        self.bus = bus
        self.max_workers = max_workers
        self.executor_kind = executor
        self._pool: Executor
        if executor == "process":
            self._pool = ProcessPoolExecutor(max_workers=max_workers)
        else:
            self._pool = ThreadPoolExecutor(
                max_workers=max_workers, thread_name_prefix="repro-worker"
            )
        self._completions: "queue.Queue[tuple[Callable[[JobAttempt], None], JobAttempt]]" = (
            queue.Queue()
        )
        self._in_flight = 0
        self._epoch = time.monotonic()

    @property
    def now(self) -> float:
        """Seconds since this environment was created."""
        return time.monotonic() - self._epoch

    def submit(
        self,
        job: DagJob,
        on_complete: Callable[[JobAttempt], None],
        *,
        attempt: int = 1,
    ) -> None:
        if job.payload is None:
            raise ValueError(
                f"job {job.name!r} has no payload bound; the local backend "
                "runs real callables (use the simulator for modelled jobs)"
            )
        submit_time = self.now
        self._in_flight += 1

        def record_completion(duration: float, success: bool,
                              error: str | None) -> None:
            end = self.now
            start = max(submit_time, end - duration)
            attempt_record = JobAttempt(
                job_name=job.name,
                transformation=job.transformation,
                site=self.site,
                machine=f"{self.site}-{self.executor_kind}pool",
                attempt=attempt,
                submit_time=submit_time,
                setup_start=start,
                exec_start=start,
                exec_end=end,
                status=(
                    JobStatus.SUCCEEDED if success else JobStatus.FAILED
                ),
                error=error,
            )
            self._completions.put((on_complete, attempt_record))

        future = self._pool.submit(_run_payload, job.payload)

        def on_done(fut) -> None:
            try:
                duration, success, error = fut.result()
            except Exception as exc:  # unpicklable payload, pool death …
                record_completion(0.0, False, f"{type(exc).__name__}: {exc}")
            else:
                record_completion(duration, success, error)

        future.add_done_callback(on_done)

    def run_until_complete(self) -> None:
        """Process completions (on this thread) until nothing is running.

        Lifecycle events are emitted here — on the driver thread, never
        from pool callbacks — so bus subscribers need no locks. The
        timings come from the attempt record, so the emitted sequence
        matches what the simulators emit live.
        """
        while self._in_flight > 0:
            on_complete, record = self._completions.get()
            self._in_flight -= 1
            if self.bus is not None:
                for event in attempt_events(record):
                    self.bus.emit(event)
            on_complete(record)

    def shutdown(self) -> None:
        """Release the worker pool."""
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "LocalEnvironment":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
