"""The local execution backend: real payloads, real wall clock.

Two pool flavours:

* ``executor="process"`` (the performance mode) — payloads run in a
  ``ProcessPoolExecutor``, sidestepping the GIL; payloads must be
  picklable (see :class:`repro.execution.payloads.TaskCall`). Profiling
  drove this choice: CPU-bound NumPy/Python task bodies under a thread
  pool ran ~7x *slower* than serial from GIL contention.
* ``executor="thread"`` — payloads run on threads; any callable works
  (tests and closures), parallel speedup limited to I/O-bound work.

Either way, *all scheduling decisions* (DAGMan callbacks, new
submissions) happen on the driver thread via an action queue —
DAGMan's state machine needs no locks and behaves identically under
this backend and the single-threaded simulators.

Resilience hooks (mirroring the simulators):

* ``DagJob.timeout_s`` arms a **watchdog** (``threading.Timer``) per
  attempt: if the payload has not completed by then, a ``TIMEOUT``
  attempt record is delivered immediately and the stuck worker is
  abandoned — a hung payload cannot wedge ``run_until_complete()``;
* an optional :class:`~repro.resilience.faults.FaultInjector` wraps
  payloads (:meth:`FaultInjector.wrap_local`) so the same chaos plans
  that drive the simulators fail/slow/hang real local runs;
* ``call_later`` runs a function on the driver thread after a
  wall-clock delay — delayed retries (``job.held``) park here without
  blocking a worker.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Callable, Literal

from repro.dagman.dag import DagJob
from repro.dagman.events import JobAttempt, JobStatus, ResourceProfile
from repro.execution.kickstart import KickstartRecord, kickstart
from repro.observe.bus import EventBus
from repro.observe.events import attempt_events

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.faults import FaultInjector

__all__ = ["LocalEnvironment"]


def _run_payload(
    payload: Callable[[], Any],
) -> tuple[float, bool, str | None, "ResourceProfile | None"]:
    """Worker-side wrapper: returns (duration, success, error, profile).

    Runs in the pool worker (its own process under ``executor=
    "process"``), so the rusage probe inside :func:`kickstart` bills
    exactly this payload's CPU/RSS/I/O to the attempt record.
    """
    record: KickstartRecord = kickstart(payload)
    return record.duration_s, record.success, record.error, record.profile


class LocalEnvironment:
    """Run DAG jobs' Python payloads locally (an ``ExecutionEnvironment``).

    ``site`` labels the trace records; ``max_workers`` is the local
    parallelism (the "multiple computational nodes" of the paper,
    scaled down to one machine's cores). ``injector`` wraps payloads
    with chaos faults; ``hang_sleep_s`` bounds how long an injected
    hang actually sleeps (workers eventually unwedge in tests).
    """

    def __init__(
        self,
        *,
        max_workers: int = 4,
        site: str = "local",
        executor: Literal["thread", "process"] = "thread",
        bus: EventBus | None = None,
        injector: "FaultInjector | None" = None,
        hang_sleep_s: float = 5.0,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if executor not in ("thread", "process"):
            raise ValueError(f"unknown executor kind: {executor!r}")
        self.site = site
        self.bus = bus
        self.injector = injector
        self.hang_sleep_s = hang_sleep_s
        self.max_workers = max_workers
        self.executor_kind = executor
        self._pool: Executor
        if executor == "process":
            self._pool = ProcessPoolExecutor(max_workers=max_workers)
        else:
            self._pool = ThreadPoolExecutor(
                max_workers=max_workers, thread_name_prefix="repro-worker"
            )
        #: Thunks executed on the driver thread (completions, timers).
        self._actions: "queue.Queue[Callable[[], None]]" = queue.Queue()
        self._in_flight = 0
        self._pending_timers = 0
        self._closed = False
        #: True once a watchdog abandoned a stuck worker: shutdown must
        #: not wait for the pool, or it would block on the hung payload.
        self._abandoned = False
        self.timeout_count = 0
        self._epoch = time.monotonic()

    @property
    def now(self) -> float:
        """Seconds since this environment was created."""
        return time.monotonic() - self._epoch

    def submit(
        self,
        job: DagJob,
        on_complete: Callable[[JobAttempt], None],
        *,
        attempt: int = 1,
    ) -> None:
        if self._closed:
            raise RuntimeError(
                f"cannot submit job {job.name!r}: this LocalEnvironment is "
                "shut down (submit() after shutdown()/context exit); create "
                "a new environment for a new run"
            )
        if job.payload is None:
            raise ValueError(
                f"job {job.name!r} has no payload bound; the local backend "
                "runs real callables (use the simulator for modelled jobs)"
            )
        payload = job.payload
        if self.injector is not None:
            payload = self.injector.wrap_local(
                job, attempt=attempt, now=self.now,
                hang_sleep_s=self.hang_sleep_s,
            )
        submit_time = self.now
        self._in_flight += 1
        machine = f"{self.site}-{self.executor_kind}pool"

        # First-completion-wins between the worker callback and the
        # watchdog: whoever settles delivers the attempt record, the
        # loser is dropped.
        settle_lock = threading.Lock()
        settled = False

        def settle() -> bool:
            nonlocal settled
            with settle_lock:
                if settled:
                    return False
                settled = True
                return True

        def deliver(record: JobAttempt) -> None:
            def thunk() -> None:
                self._in_flight -= 1
                if self.bus is not None:
                    for event in attempt_events(record):
                        self.bus.emit(event)
                on_complete(record)

            self._actions.put(thunk)

        def record_completion(duration: float, success: bool,
                              error: str | None,
                              profile: "ResourceProfile | None") -> None:
            end = self.now
            start = max(submit_time, end - duration)
            deliver(
                JobAttempt(
                    job_name=job.name,
                    transformation=job.transformation,
                    site=self.site,
                    machine=machine,
                    attempt=attempt,
                    submit_time=submit_time,
                    setup_start=start,
                    exec_start=start,
                    exec_end=end,
                    status=(
                        JobStatus.SUCCEEDED if success else JobStatus.FAILED
                    ),
                    error=error,
                    profile=profile,
                )
            )

        future = self._pool.submit(_run_payload, payload)

        watchdog: threading.Timer | None = None
        if job.timeout_s is not None:

            def on_timeout() -> None:
                if not settle():
                    return
                if not future.cancel():
                    # The payload is running (possibly hung); we cannot
                    # kill a pool worker per-job, so abandon it — its
                    # eventual result (if any) is dropped at settle().
                    self._abandoned = True
                self.timeout_count += 1
                end = self.now
                deliver(
                    JobAttempt(
                        job_name=job.name,
                        transformation=job.transformation,
                        site=self.site,
                        machine=machine,
                        attempt=attempt,
                        submit_time=submit_time,
                        setup_start=submit_time,
                        exec_start=submit_time,
                        exec_end=end,
                        status=JobStatus.TIMEOUT,
                        error=(
                            "killed after exceeding timeout of "
                            f"{job.timeout_s:g}s"
                        ),
                    )
                )

            watchdog = threading.Timer(job.timeout_s, on_timeout)
            watchdog.daemon = True
            watchdog.start()

        def on_done(fut) -> None:
            if watchdog is not None:
                watchdog.cancel()
            if not settle():
                return  # the watchdog already delivered a TIMEOUT record
            try:
                duration, success, error, profile = fut.result()
            except Exception as exc:  # unpicklable payload, pool death …
                record_completion(
                    0.0, False, f"{type(exc).__name__}: {exc}", None
                )
            else:
                record_completion(duration, success, error, profile)

        future.add_done_callback(on_done)

    def worker_pids(self) -> list[int]:
        """PIDs of the live pool workers (process executor only).

        Best-effort by design: a ``ProcessPoolExecutor`` spawns workers
        lazily, so before the first submit this is empty, and thread
        pools have no separate PIDs at all. The write-ahead journal
        records the result (``repro.resilience.journal``) so a resumed
        run can reap orphaned workers whose manager died under them.
        """
        processes = getattr(self._pool, "_processes", None)
        if not processes:
            return []
        return sorted(processes.keys())

    def call_later(self, delay_s: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` on the driver thread after ``delay_s`` wall seconds.

        ``run_until_complete`` stays alive while timers are pending, so
        a held retry (delayed requeue) cannot strand the run.
        """
        self._pending_timers += 1

        def thunk() -> None:
            self._pending_timers -= 1
            fn()

        timer = threading.Timer(delay_s, lambda: self._actions.put(thunk))
        timer.daemon = True
        timer.start()

    def run_until_complete(self) -> None:
        """Process actions (on this thread) until nothing is pending.

        Lifecycle events are emitted here — on the driver thread, never
        from pool callbacks — so bus subscribers need no locks. The
        timings come from the attempt record, so the emitted sequence
        matches what the simulators emit live.
        """
        while self._in_flight > 0 or self._pending_timers > 0:
            self._actions.get()()

    def shutdown(self) -> None:
        """Release the worker pool. Idempotent; further ``submit()``
        calls raise ``RuntimeError``."""
        self._closed = True
        # A watchdog-abandoned worker may be stuck in its payload:
        # waiting would block until that payload returns (never, for a
        # true hang), so skip the join and let the pool wind down on
        # its own once the worker unwedges.
        self._pool.shutdown(wait=not self._abandoned)

    def __enter__(self) -> "LocalEnvironment":
        return self

    def __exit__(self, exc_type, *exc_info) -> None:
        # Deliver whatever already ran rather than dropping completions
        # on the floor (their records would otherwise vanish and the
        # scheduler would believe the jobs never finished). Skipped when
        # unwinding an exception: draining could block indefinitely.
        if exc_type is None:
            self.run_until_complete()
        self.shutdown()
