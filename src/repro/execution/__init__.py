"""Real execution backends.

:mod:`repro.execution.local` runs DAG jobs' Python payloads on the local
machine (thread pool), emitting the same :class:`repro.dagman.events.JobAttempt`
records as the platform simulators — so statistics, the analyzer, and
DAGMan behave identically over real and simulated runs.
:mod:`repro.execution.kickstart` wraps each payload invocation to
capture timing and errors, like Pegasus' kickstart wrapper.
"""

from repro.execution.kickstart import KickstartRecord, kickstart
from repro.execution.local import LocalEnvironment

__all__ = ["KickstartRecord", "kickstart", "LocalEnvironment"]
