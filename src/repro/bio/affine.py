"""Affine-gap pairwise alignment (Gotoh's three-state DP).

Real BLAST and CAP3 score gaps affinely — a gap of length L costs
``open + extend*(L-1)``, making one long indel far cheaper than many
short ones. This module adds the Gotoh recurrence beside the linear-gap
kernels in :mod:`repro.bio.alignment`, with the same three modes
(global / local / overlap) and the same NumPy row strategy:

* ``M`` (match state) and ``Ix`` (gap in B) rows depend only on the
  previous row — plain vector operations;
* ``Iy`` (gap in A) has the within-row dependency
  ``Iy[j] = max(M[j-1]+open, Iy[j-1]+extend)``, but since ``M``'s row is
  already complete when ``Iy`` is computed, the row collapses to the
  prefix-scan identity ``Iy[j] = max_k (U[k] + extend*(j-k))`` with
  ``U[j] = M[j-1] + open`` — one ``np.maximum.accumulate``.

Traceback walks the explicit state matrices, so gap runs are recovered
exactly (no re-derivation ambiguity as with the linear kernel).
"""

from __future__ import annotations

import numpy as np

from repro.bio.alignment import AlignmentMode, AlignmentResult
from repro.bio.matrices import ScoringMatrix, blosum62, dna_matrix

__all__ = ["affine_align", "affine_global", "affine_local", "affine_overlap"]

_NEG = np.int64(-(2**40))  # effectively -inf, immune to overflow in adds


def _fill(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    sub: np.ndarray,
    open_: int,
    extend: int,
    mode: AlignmentMode,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    la, lb = len(a_codes), len(b_codes)
    M = np.full((la + 1, lb + 1), _NEG, dtype=np.int64)
    Ix = np.full((la + 1, lb + 1), _NEG, dtype=np.int64)
    Iy = np.full((la + 1, lb + 1), _NEG, dtype=np.int64)
    j_idx = np.arange(lb + 1, dtype=np.int64)

    M[0, 0] = 0
    if mode is AlignmentMode.GLOBAL:
        if lb:
            Iy[0, 1:] = open_ + extend * (j_idx[1:] - 1)
    elif mode is AlignmentMode.OVERLAP:
        # Free leading skip of A (M[i][0] = 0); leading gaps in B cost.
        M[1:, 0] = 0
        if lb:
            Iy[0, 1:] = open_ + extend * (j_idx[1:] - 1)
    else:  # LOCAL: a fresh alignment can start anywhere.
        M[:, 0] = 0
        M[0, :] = 0

    sub_rows = sub[np.ix_(a_codes, b_codes)].astype(np.int64)
    scan_offsets = extend * j_idx

    for i in range(1, la + 1):
        prev_best = np.maximum(np.maximum(M[i - 1], Ix[i - 1]), Iy[i - 1])
        # Match state: diagonal predecessor from any state.
        M[i, 1:] = prev_best[:-1] + sub_rows[i - 1]
        if mode is AlignmentMode.LOCAL:
            np.maximum(M[i, 1:], 0, out=M[i, 1:])
        elif mode is AlignmentMode.OVERLAP:
            M[i, 0] = 0
        # Gap in B (vertical): previous row only.
        Ix[i, 1:] = np.maximum(M[i - 1, 1:] + open_, Ix[i - 1, 1:] + extend)
        if mode is AlignmentMode.GLOBAL and i >= 1:
            Ix[i, 0] = open_ + extend * (i - 1)
        # Gap in A (horizontal): prefix scan over the completed M row.
        U = np.full(lb + 1, _NEG, dtype=np.int64)
        U[1:] = M[i, :-1] + open_
        running = np.maximum.accumulate(U - scan_offsets)
        Iy[i, 1:] = (running + scan_offsets)[1:]
    return M, Ix, Iy


def affine_align(
    a: str,
    b: str,
    *,
    mode: AlignmentMode,
    matrix: ScoringMatrix | None = None,
    gap_open: int = -11,
    gap_extend: int = -1,
) -> AlignmentResult:
    """Gotoh alignment of ``a`` vs ``b`` with affine gap costs.

    ``gap_open`` is the cost of a gap's first character, ``gap_extend``
    of each further character (both negative; ``gap_extend`` must not
    be more expensive than ``gap_open``). Defaults match blastx's 11/1.
    """
    if gap_open >= 0 or gap_extend >= 0:
        raise ValueError("gap penalties must be negative")
    if gap_extend < gap_open:
        raise ValueError("gap_extend must cost no more than gap_open")
    if matrix is None:
        matrix = blosum62()
    a_codes = matrix.encode(a)
    b_codes = matrix.encode(b)
    M, Ix, Iy = _fill(a_codes, b_codes, matrix.matrix, gap_open, gap_extend, mode)
    H = np.maximum(np.maximum(M, Ix), Iy)
    la, lb = len(a), len(b)

    if mode is AlignmentMode.GLOBAL:
        end = (la, lb)
    elif mode is AlignmentMode.LOCAL:
        end = tuple(int(x) for x in np.unravel_index(np.argmax(M), M.shape))
        if M[end] <= 0:
            return AlignmentResult(mode, 0, 0, 0, 0, 0, "", "")
    else:  # OVERLAP
        j_best = int(np.argmax(H[la, :]))
        i_best = int(np.argmax(H[:, lb]))
        end = (la, j_best) if H[la, j_best] >= H[i_best, lb] else (i_best, lb)

    return _traceback(
        a, b, a_codes, b_codes, matrix.matrix,
        gap_open, gap_extend, M, Ix, Iy, end, mode,
    )


def _traceback(
    a, b, a_codes, b_codes, sub, open_, extend, M, Ix, Iy, end, mode
) -> AlignmentResult:
    i, j = end
    H_end = int(max(M[end], Ix[end], Iy[end]))
    # Start in whichever state achieves the end score.
    if M[i, j] == H_end:
        state = "M"
    elif Ix[i, j] == H_end:
        state = "X"
    else:
        state = "Y"
    if mode is AlignmentMode.LOCAL:
        state = "M"  # local ends on a match by construction (argmax of M)

    out_a: list[str] = []
    out_b: list[str] = []

    def at_start(i: int, j: int, state: str) -> bool:
        if state != "M":
            return False
        if mode is AlignmentMode.LOCAL:
            return M[i, j] == 0
        if mode is AlignmentMode.OVERLAP:
            return j == 0
        return i == 0 and j == 0

    while not at_start(i, j, state):
        if state == "M":
            score = M[i, j]
            prev = score - sub[a_codes[i - 1], b_codes[j - 1]]
            out_a.append(a[i - 1])
            out_b.append(b[j - 1])
            i -= 1
            j -= 1
            if M[i, j] == prev:
                state = "M"
            elif Ix[i, j] == prev:
                state = "X"
            elif Iy[i, j] == prev:
                state = "Y"
            elif mode in (AlignmentMode.LOCAL, AlignmentMode.OVERLAP) and prev == 0:
                state = "M"  # fresh start cell
            else:  # pragma: no cover - guarded by DP construction
                raise AssertionError(f"M-traceback stuck at ({i}, {j})")
        elif state == "X":  # gap in B: consume a[i-1]
            score = Ix[i, j]
            out_a.append(a[i - 1])
            out_b.append("-")
            if i >= 1 and M[i - 1, j] + open_ == score:
                state = "M"
            else:
                state = "X"
            i -= 1
            if i == 0 and state == "X":
                # boundary gap column (global mode)
                if j == 0:
                    break
        else:  # state == "Y": gap in A: consume b[j-1]
            score = Iy[i, j]
            out_a.append("-")
            out_b.append(b[j - 1])
            if j >= 1 and M[i, j - 1] + open_ == score:
                state = "M"
            else:
                state = "Y"
            j -= 1
            if j == 0 and state == "Y":
                break

    return AlignmentResult(
        mode=mode,
        score=H_end,
        a_start=i,
        a_end=end[0],
        b_start=j,
        b_end=end[1],
        aligned_a="".join(reversed(out_a)),
        aligned_b="".join(reversed(out_b)),
    )


def affine_global(a: str, b: str, **kwargs) -> AlignmentResult:
    """Needleman–Wunsch with affine gaps."""
    return affine_align(a, b, mode=AlignmentMode.GLOBAL, **kwargs)


def affine_local(a: str, b: str, **kwargs) -> AlignmentResult:
    """Smith–Waterman with affine gaps."""
    return affine_align(a, b, mode=AlignmentMode.LOCAL, **kwargs)


def affine_overlap(
    a: str,
    b: str,
    *,
    matrix: ScoringMatrix | None = None,
    gap_open: int = -8,
    gap_extend: int = -2,
) -> AlignmentResult:
    """Dovetail (suffix–prefix) alignment with affine gaps, DNA scoring
    by default (the CAP3 configuration)."""
    if matrix is None:
        matrix = dna_matrix()
    return affine_align(
        a, b, mode=AlignmentMode.OVERLAP, matrix=matrix,
        gap_open=gap_open, gap_extend=gap_extend,
    )
