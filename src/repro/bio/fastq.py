"""FASTQ reading and writing (Sanger/Illumina-1.8 Phred+33 quality).

Used by the Fig. 1 transcriptome pipeline example: the preprocessing
stage consumes raw Illumina-like paired reads, which our data generator
emits as FASTQ.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, TextIO

__all__ = [
    "FastqRecord",
    "read_fastq",
    "write_fastq",
    "phred_to_quality",
    "quality_to_phred",
]

#: ASCII offset for Sanger / Illumina 1.8+ quality encoding.
PHRED_OFFSET = 33

#: Highest Phred score representable in the encoding.
MAX_PHRED = 93


def phred_to_quality(scores: Iterable[int]) -> str:
    """Encode integer Phred scores as a quality string.

    >>> phred_to_quality([0, 40])
    '!I'
    """
    chars = []
    for q in scores:
        if not 0 <= q <= MAX_PHRED:
            raise ValueError(f"Phred score out of range: {q}")
        chars.append(chr(q + PHRED_OFFSET))
    return "".join(chars)


def quality_to_phred(quality: str) -> list[int]:
    """Decode a quality string into integer Phred scores.

    >>> quality_to_phred('!I')
    [0, 40]
    """
    scores = []
    for c in quality:
        q = ord(c) - PHRED_OFFSET
        if not 0 <= q <= MAX_PHRED:
            raise ValueError(f"quality character out of range: {c!r}")
        scores.append(q)
    return scores


@dataclass(frozen=True)
class FastqRecord:
    """One FASTQ entry; ``quality`` must match ``seq`` in length."""

    id: str
    seq: str
    quality: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.id:
            raise ValueError("FASTQ record id must be non-empty")
        if len(self.seq) != len(self.quality):
            raise ValueError(
                f"sequence/quality length mismatch for {self.id!r}: "
                f"{len(self.seq)} vs {len(self.quality)}"
            )

    def __len__(self) -> int:
        return len(self.seq)

    def phred(self) -> list[int]:
        """Integer Phred scores for this read."""
        return quality_to_phred(self.quality)

    def mean_quality(self) -> float:
        """Arithmetic mean Phred score (0.0 for an empty read)."""
        scores = self.phred()
        return sum(scores) / len(scores) if scores else 0.0

    def format(self) -> str:
        """Render as four-line FASTQ text."""
        header = self.description if self.description else self.id
        return f"@{header}\n{self.seq}\n+\n{self.quality}\n"


def _open_text(source: str | Path | TextIO) -> tuple[TextIO, bool]:
    if isinstance(source, (str, Path)):
        from repro.util.iolib import open_text_auto

        return open_text_auto(source), True
    return source, False


def read_fastq(source: str | Path | TextIO) -> Iterator[FastqRecord]:
    """Stream :class:`FastqRecord` objects from four-line FASTQ."""
    handle, owned = _open_text(source)
    try:
        while True:
            header = handle.readline()
            if not header:
                return
            header = header.rstrip("\n")
            if not header.strip():
                continue
            if not header.startswith("@"):
                raise ValueError(f"expected '@' header, got {header!r}")
            seq = handle.readline().rstrip("\n")
            plus = handle.readline().rstrip("\n")
            quality = handle.readline().rstrip("\n")
            if not plus.startswith("+"):
                raise ValueError(f"expected '+' separator, got {plus!r}")
            desc = header[1:].strip()
            if not desc:
                raise ValueError("empty FASTQ header")
            yield FastqRecord(
                id=desc.split()[0], seq=seq, quality=quality, description=desc
            )
    finally:
        if owned:
            handle.close()


def write_fastq(
    dest: str | Path | TextIO, records: Iterable[FastqRecord]
) -> int:
    """Write records as FASTQ; returns the count. Path writes are atomic
    and ``.gz`` paths are compressed."""
    if isinstance(dest, (str, Path)):
        from repro.util.iolib import atomic_open

        with atomic_open(dest) as handle:
            return write_fastq(handle, records)
    count = 0
    for record in records:
        dest.write(record.format())
        count += 1
    return count
