"""Read quality processing: the "data cleaning" preprocessing stage.

Fig. 1 of the paper shows a general transcriptome assembly pipeline whose
preprocessing stage performs data cleaning and filtering (the paper cites
tools like Sickle/Scythe-style trimmers). This module implements the two
standard operations those tools perform:

* **quality trimming** — sliding-window trim of low-quality 3' ends, plus
  hard clipping of leading/trailing bases below a floor; and
* **filtering** — dropping reads that end up too short or whose mean
  quality is too low, and masking/dropping excessive ``N`` content.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.bio.fastq import FastqRecord

__all__ = ["TrimParams", "trim_record", "quality_filter", "QualityReport"]


@dataclass(frozen=True)
class TrimParams:
    """Knobs for :func:`trim_record` and :func:`quality_filter`.

    Defaults match common Illumina RNA-seq practice (Q20 window, 50 bp
    minimum surviving length).
    """

    window: int = 4
    min_window_mean: float = 20.0
    min_base_quality: int = 3
    min_length: int = 50
    min_mean_quality: float = 20.0
    max_n_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.min_length < 1:
            raise ValueError("min_length must be >= 1")
        if not 0.0 <= self.max_n_fraction <= 1.0:
            raise ValueError("max_n_fraction must be in [0, 1]")


def trim_record(record: FastqRecord, params: TrimParams = TrimParams()) -> FastqRecord:
    """Trim a read: hard-clip terminal bases below ``min_base_quality``,
    then cut the 3' end at the first sliding window whose mean quality
    falls below ``min_window_mean``.

    Returns a (possibly empty) trimmed record; filtering decisions are
    left to :func:`quality_filter`.
    """
    scores = record.phred()
    start, end = 0, len(scores)
    while start < end and scores[start] < params.min_base_quality:
        start += 1
    while end > start and scores[end - 1] < params.min_base_quality:
        end -= 1

    # Sliding 3' window cut, scanning left to right like sickle does.
    w = params.window
    cut = end
    for i in range(start, max(start, end - w + 1)):
        window = scores[i : i + w]
        if sum(window) / len(window) < params.min_window_mean:
            cut = i
            break
    end = min(end, cut)
    if start >= end:
        start = end = 0
    return FastqRecord(
        id=record.id,
        seq=record.seq[start:end],
        quality=record.quality[start:end],
        description=record.description,
    )


@dataclass
class QualityReport:
    """Counters emitted by :func:`quality_filter`."""

    total: int = 0
    passed: int = 0
    too_short: int = 0
    low_quality: int = 0
    too_many_n: int = 0

    @property
    def dropped(self) -> int:
        return self.total - self.passed


def quality_filter(
    records: Iterable[FastqRecord],
    params: TrimParams = TrimParams(),
    *,
    report: QualityReport | None = None,
) -> Iterator[FastqRecord]:
    """Trim and filter a read stream, yielding surviving reads.

    Pass a :class:`QualityReport` to collect drop counters; the report is
    filled in-place as the stream is consumed.
    """
    stats = report if report is not None else QualityReport()
    for record in records:
        stats.total += 1
        trimmed = trim_record(record, params)
        if len(trimmed) < params.min_length:
            stats.too_short += 1
            continue
        if trimmed.mean_quality() < params.min_mean_quality:
            stats.low_quality += 1
            continue
        n_fraction = trimmed.seq.upper().count("N") / len(trimmed)
        if n_fraction > params.max_n_fraction:
            stats.too_many_n += 1
            continue
        stats.passed += 1
        yield trimmed
