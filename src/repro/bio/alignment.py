"""Pairwise alignment kernels: global, local, and overlap (dovetail) DP.

These are the computational core under both substrates: the BLASTX-like
search (:mod:`repro.blast`) uses local alignment for gapped extension,
and the CAP3-like assembler (:mod:`repro.cap3`) uses overlap alignment to
score suffix–prefix joins between transcripts.

All three modes share one dynamic-programming engine with a *linear* gap
penalty. Rows are computed with NumPy: the vertical/diagonal candidates
are vectorised directly, and the within-row horizontal dependency is
resolved with the classic prefix-scan identity

    H[i][j] = max(T[j], max_{k<j}(T[k] + g*(j-k)))
            = max(T[j], (running_max(T[k] - g*k)) + g*j)

which turns the row recurrence into ``np.maximum.accumulate``. This keeps
the kernels pure NumPy (no compiled extension) while staying fast enough
for the laptop-scale real executions in the examples and tests; the
paper-scale runs go through the discrete-event simulator instead.

Traceback recomputes predecessor choices from the stored score matrix,
which is exact for linear gap penalties.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.bio.matrices import ScoringMatrix, blosum62, dna_matrix

__all__ = [
    "AlignmentMode",
    "AlignmentResult",
    "align",
    "global_align",
    "local_align",
    "overlap_align",
]

class AlignmentMode(Enum):
    """Which boundary conditions the DP uses."""

    GLOBAL = "global"  # Needleman–Wunsch: full A vs full B
    LOCAL = "local"  # Smith–Waterman: best segment pair
    OVERLAP = "overlap"  # dovetail: suffix of A against prefix of B


@dataclass(frozen=True)
class AlignmentResult:
    """The outcome of a pairwise alignment.

    Coordinates are 0-based half-open into the *original* strings:
    ``a[a_start:a_end]`` is the aligned span of A. ``aligned_a`` and
    ``aligned_b`` are gapped strings of equal length.
    """

    mode: AlignmentMode
    score: int
    a_start: int
    a_end: int
    b_start: int
    b_end: int
    aligned_a: str
    aligned_b: str

    @property
    def length(self) -> int:
        """Number of alignment columns (including gap columns)."""
        return len(self.aligned_a)

    @property
    def matches(self) -> int:
        """Number of identical aligned residue pairs."""
        return sum(
            1
            for x, y in zip(self.aligned_a, self.aligned_b)
            if x == y and x != "-"
        )

    @property
    def gaps(self) -> int:
        """Number of gap characters across both rows."""
        return self.aligned_a.count("-") + self.aligned_b.count("-")

    @property
    def identity(self) -> float:
        """Fraction of identical columns (0.0 for empty alignments)."""
        return self.matches / self.length if self.length else 0.0


def _score_matrix(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    sub: np.ndarray,
    gap: int,
    mode: AlignmentMode,
) -> np.ndarray:
    """Fill the full (la+1, lb+1) DP matrix for the requested mode."""
    la, lb = len(a_codes), len(b_codes)
    H = np.zeros((la + 1, lb + 1), dtype=np.int32)
    j_idx = np.arange(1, lb + 1, dtype=np.int64)

    if mode is AlignmentMode.GLOBAL:
        H[0, :] = gap * np.arange(lb + 1)
        H[:, 0] = gap * np.arange(la + 1)
    elif mode is AlignmentMode.OVERLAP:
        # A's unaligned prefix is free (H[i][0] = 0); B starts at its
        # first base, so leading gaps in B cost normally.
        H[0, 1:] = gap * j_idx
    # LOCAL: all boundaries stay zero.

    # Row-substitution lookup: sub_rows[i] = sub[a_codes[i], b_codes]
    sub_rows = sub[np.ix_(a_codes, b_codes)].astype(np.int32)

    scan_offsets = gap * np.arange(lb + 1, dtype=np.int64)
    for i in range(1, la + 1):
        prev = H[i - 1]
        # Diagonal and vertical candidates for every column j >= 1.
        T = np.empty(lb + 1, dtype=np.int64)
        T[0] = H[i, 0]
        np.maximum(prev[:-1] + sub_rows[i - 1], prev[1:] + gap, out=T[1:])
        if mode is AlignmentMode.LOCAL:
            np.maximum(T[1:], 0, out=T[1:])
        # Horizontal propagation via prefix scan.
        running = np.maximum.accumulate(T - scan_offsets)
        H[i, 1:] = (running + scan_offsets)[1:]
    return H


def _traceback(
    a: str,
    b: str,
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    sub: np.ndarray,
    gap: int,
    H: np.ndarray,
    end: tuple[int, int],
    mode: AlignmentMode,
) -> AlignmentResult:
    i, j = end
    out_a: list[str] = []
    out_b: list[str] = []

    def at_start(i: int, j: int) -> bool:
        if mode is AlignmentMode.LOCAL:
            return H[i, j] == 0
        if mode is AlignmentMode.OVERLAP:
            return j == 0
        return i == 0 and j == 0

    while not at_start(i, j):
        h = H[i, j]
        if (
            i > 0
            and j > 0
            and h == H[i - 1, j - 1] + sub[a_codes[i - 1], b_codes[j - 1]]
        ):
            out_a.append(a[i - 1])
            out_b.append(b[j - 1])
            i -= 1
            j -= 1
        elif i > 0 and h == H[i - 1, j] + gap:
            out_a.append(a[i - 1])
            out_b.append("-")
            i -= 1
        elif j > 0 and h == H[i, j - 1] + gap:
            out_a.append("-")
            out_b.append(b[j - 1])
            j -= 1
        else:  # pragma: no cover - guarded by DP construction
            raise AssertionError(f"traceback stuck at ({i}, {j})")

    return AlignmentResult(
        mode=mode,
        score=int(H[end]),
        a_start=i,
        a_end=end[0],
        b_start=j,
        b_end=end[1],
        aligned_a="".join(reversed(out_a)),
        aligned_b="".join(reversed(out_b)),
    )


def align(
    a: str,
    b: str,
    *,
    mode: AlignmentMode,
    matrix: ScoringMatrix | None = None,
    gap: int = -6,
) -> AlignmentResult:
    """Align ``a`` against ``b`` under the given mode.

    ``matrix`` defaults to BLOSUM62 — pass :func:`repro.bio.matrices.dna_matrix`
    for nucleotide alignments. ``gap`` is the (negative) per-gap-character
    penalty.
    """
    if gap >= 0:
        raise ValueError(f"gap penalty must be negative, got {gap}")
    if matrix is None:
        matrix = blosum62()
    a_codes = matrix.encode(a)
    b_codes = matrix.encode(b)
    H = _score_matrix(a_codes, b_codes, matrix.matrix, gap, mode)

    if mode is AlignmentMode.GLOBAL:
        end = (len(a), len(b))
    elif mode is AlignmentMode.LOCAL:
        end = tuple(int(x) for x in np.unravel_index(np.argmax(H), H.shape))
        if H[end] == 0:
            # No positive-scoring segment pair at all.
            return AlignmentResult(mode, 0, 0, 0, 0, 0, "", "")
    else:  # OVERLAP: the alignment must consume A to its end (dovetail)
        # or consume B entirely (B contained in A); pick the better.
        j_best = int(np.argmax(H[len(a), :]))
        i_best = int(np.argmax(H[:, len(b)]))
        if H[len(a), j_best] >= H[i_best, len(b)]:
            end = (len(a), j_best)
        else:
            end = (i_best, len(b))

    return _traceback(a, b, a_codes, b_codes, matrix.matrix, gap, H, end, mode)


def global_align(a: str, b: str, **kwargs) -> AlignmentResult:
    """Needleman–Wunsch alignment of the full strings."""
    return align(a, b, mode=AlignmentMode.GLOBAL, **kwargs)


def local_align(a: str, b: str, **kwargs) -> AlignmentResult:
    """Smith–Waterman best local alignment."""
    return align(a, b, mode=AlignmentMode.LOCAL, **kwargs)


def overlap_align(
    a: str,
    b: str,
    *,
    matrix: ScoringMatrix | None = None,
    gap: int = -6,
) -> AlignmentResult:
    """Dovetail alignment: suffix of ``a`` against prefix of ``b``.

    This is the CAP3 overlap question ("does read A's tail continue into
    read B's head?"). A containment (all of ``b`` inside ``a``) is also
    detected and scored. DNA scoring is the sensible default here.
    """
    if matrix is None:
        matrix = dna_matrix()
    return align(a, b, mode=AlignmentMode.OVERLAP, matrix=matrix, gap=gap)
