"""Sequence substrate: the Biopython-equivalent layer blast2cap3 needs.

Provides DNA/protein sequence primitives (:mod:`repro.bio.seq`),
FASTA/FASTQ I/O (:mod:`repro.bio.fasta`, :mod:`repro.bio.fastq`),
read quality processing for the preprocessing pipeline stage
(:mod:`repro.bio.quality`), substitution matrices
(:mod:`repro.bio.matrices`), pairwise alignment kernels
(:mod:`repro.bio.alignment`), k-mer indexing (:mod:`repro.bio.kmer`),
and Karlin–Altschul alignment statistics (:mod:`repro.bio.stats`).
"""

from repro.bio.seq import (
    CODON_TABLE,
    reverse_complement,
    six_frame_translations,
    translate,
)
from repro.bio.fasta import FastaRecord, read_fasta, write_fasta
from repro.bio.fastq import FastqRecord, read_fastq, write_fastq
from repro.bio.alignment import global_align, local_align, overlap_align
from repro.bio.affine import affine_global, affine_local, affine_overlap
from repro.bio.orf import find_orfs, longest_orf

__all__ = [
    "CODON_TABLE",
    "reverse_complement",
    "translate",
    "six_frame_translations",
    "FastaRecord",
    "read_fasta",
    "write_fasta",
    "FastqRecord",
    "read_fastq",
    "write_fastq",
    "global_align",
    "local_align",
    "overlap_align",
    "affine_global",
    "affine_local",
    "affine_overlap",
    "find_orfs",
    "longest_orf",
]
