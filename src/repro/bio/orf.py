"""Open reading frame (ORF) finding.

Assembly validation (the last step of the paper's Fig. 1 pipeline)
checks that assembled transcripts actually code: a well-assembled
transcript carries a long ORF, while fragmented or chimeric ones don't.
This module scans all six frames for START..STOP spans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.bio.seq import CODON_TABLE, START_CODONS, reverse_complement

__all__ = ["Orf", "find_orfs", "longest_orf"]


@dataclass(frozen=True)
class Orf:
    """One open reading frame.

    ``start``/``end`` are 1-based inclusive forward-strand DNA
    coordinates of the coding span (start codon through stop codon, or
    transcript edge for open-ended ORFs); minus-frame ORFs have
    ``start > end``, BLAST-style. ``protein`` excludes the stop.
    """

    frame: int
    start: int
    end: int
    protein: str
    has_stop: bool

    def __post_init__(self) -> None:
        if self.frame == 0 or abs(self.frame) > 3:
            raise ValueError("frame must be in {±1, ±2, ±3}")
        if not self.protein:
            raise ValueError("ORF protein must be non-empty")

    def __len__(self) -> int:
        return len(self.protein)


def _scan_frame(seq: str, offset: int, *, require_start: bool) -> Iterator[tuple[int, int, str, bool]]:
    """Yield (codon_start_idx, codon_end_idx, protein, has_stop) per ORF
    in one forward frame of ``seq`` (0-based codon-grid indices)."""
    n = len(seq)
    current_start: int | None = None
    peptide: list[str] = []
    i = offset
    while i + 3 <= n:
        codon = seq[i : i + 3]
        aa = CODON_TABLE.get(codon, "X")
        if current_start is None:
            starts_here = codon in START_CODONS or not require_start
            if starts_here and aa != "*":
                current_start = i
                peptide = [aa]
        else:
            if aa == "*":
                yield current_start, i + 3, "".join(peptide), True
                current_start = None
                peptide = []
            else:
                peptide.append(aa)
        i += 3
    if current_start is not None and peptide:
        yield current_start, i, "".join(peptide), False


def find_orfs(
    seq: str,
    *,
    min_length_aa: int = 30,
    require_start: bool = True,
) -> list[Orf]:
    """All ORFs of at least ``min_length_aa`` residues, six frames.

    ``require_start=False`` also reports stop-to-stop open frames
    (useful for transcript fragments whose 5' end is missing).
    Results are sorted longest-first.
    """
    if min_length_aa < 1:
        raise ValueError("min_length_aa must be >= 1")
    seq = seq.upper()
    n = len(seq)
    orfs: list[Orf] = []
    for offset in range(3):
        for lo, hi, protein, has_stop in _scan_frame(
            seq, offset, require_start=require_start
        ):
            if len(protein) < min_length_aa:
                continue
            orfs.append(
                Orf(frame=offset + 1, start=lo + 1, end=hi,
                    protein=protein, has_stop=has_stop)
            )
    rc = reverse_complement(seq)
    for offset in range(3):
        for lo, hi, protein, has_stop in _scan_frame(
            rc, offset, require_start=require_start
        ):
            if len(protein) < min_length_aa:
                continue
            orfs.append(
                Orf(
                    frame=-(offset + 1),
                    start=n - lo,  # rc index -> forward coordinate
                    end=n - hi + 1,
                    protein=protein,
                    has_stop=has_stop,
                )
            )
    orfs.sort(key=lambda o: -len(o))
    return orfs


def longest_orf(seq: str, **kwargs) -> Orf | None:
    """The longest ORF, or None if none clears the length floor."""
    orfs = find_orfs(seq, **kwargs)
    return orfs[0] if orfs else None
