"""FASTA reading and writing.

blast2cap3's inputs (``transcripts.fasta``) and outputs (merged contigs,
unjoined transcripts) are all FASTA. The reader is a streaming generator
so that multi-hundred-MB files — the paper's ``transcripts.fasta`` is
404 MB — never have to fit in memory at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, TextIO

__all__ = ["FastaRecord", "read_fasta", "write_fasta", "fasta_index"]

#: Line width used when wrapping sequence output.
LINE_WIDTH = 70


@dataclass(frozen=True)
class FastaRecord:
    """One FASTA entry.

    ``id`` is the first whitespace-delimited token of the header;
    ``description`` is the full header line without the ``>``.
    """

    id: str
    seq: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.id:
            raise ValueError("FASTA record id must be non-empty")
        if any(ws in self.id for ws in (" ", "\t")):
            raise ValueError(f"FASTA id may not contain whitespace: {self.id!r}")

    def __len__(self) -> int:
        return len(self.seq)

    def format(self) -> str:
        """Render this record as FASTA text (wrapped, trailing newline)."""
        header = self.description if self.description else self.id
        lines = [f">{header}"]
        for i in range(0, len(self.seq), LINE_WIDTH):
            lines.append(self.seq[i : i + LINE_WIDTH])
        if not self.seq:
            lines.append("")
        return "\n".join(lines) + "\n"


def _open_text(source: str | Path | TextIO) -> tuple[TextIO, bool]:
    if isinstance(source, (str, Path)):
        from repro.util.iolib import open_text_auto

        return open_text_auto(source), True
    return source, False


def read_fasta(source: str | Path | TextIO) -> Iterator[FastaRecord]:
    """Stream :class:`FastaRecord` objects from a path or open handle.

    Blank lines are ignored; a sequence body before any header is an
    error. Headers with no id (``>`` alone) are an error.
    """
    handle, owned = _open_text(source)
    try:
        header: str | None = None
        chunks: list[str] = []
        for lineno, raw in enumerate(handle, start=1):
            line = raw.rstrip("\n").rstrip("\r")
            if not line.strip():
                continue
            if line.startswith(">"):
                if header is not None:
                    yield _make_record(header, chunks)
                header = line[1:].strip()
                if not header:
                    raise ValueError(f"empty FASTA header at line {lineno}")
                chunks = []
            else:
                if header is None:
                    raise ValueError(
                        f"sequence data before any FASTA header at line {lineno}"
                    )
                chunks.append(line.strip())
        if header is not None:
            yield _make_record(header, chunks)
    finally:
        if owned:
            handle.close()


def _make_record(header: str, chunks: list[str]) -> FastaRecord:
    rec_id = header.split()[0]
    return FastaRecord(id=rec_id, seq="".join(chunks), description=header)


def write_fasta(
    dest: str | Path | TextIO, records: Iterable[FastaRecord]
) -> int:
    """Write records as FASTA. Returns the number of records written.

    When ``dest`` is a path the write is atomic (temp file + rename)
    and ``.gz`` paths are compressed.
    """
    if isinstance(dest, (str, Path)):
        from repro.util.iolib import atomic_open

        with atomic_open(dest) as handle:
            return write_fasta(handle, records)
    count = 0
    for record in records:
        dest.write(record.format())
        count += 1
    return count


def fasta_index(source: str | Path | TextIO) -> dict[str, FastaRecord]:
    """Load a FASTA file into an id-keyed dict.

    This mirrors blast2cap3's in-memory ``transcripts_dict``: the serial
    script loads all transcripts once and then looks clusters up by id.
    Duplicate ids raise ``ValueError`` (silently keeping one would corrupt
    cluster membership downstream).
    """
    index: dict[str, FastaRecord] = {}
    for record in read_fasta(source):
        if record.id in index:
            raise ValueError(f"duplicate FASTA id: {record.id!r}")
        index[record.id] = record
    return index
