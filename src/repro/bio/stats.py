"""Karlin–Altschul statistics for alignment significance.

BLAST converts raw alignment scores into *bit scores* and *e-values*
using the Karlin–Altschul framework: for a scoring system with parameters
``lambda`` and ``K``, the expected number of alignments scoring >= S
between a query of length m and a database of total length n is

    E = K * m' * n' * exp(-lambda * S)

where m' and n' are the lengths corrected for the expected alignment
"edge effect". We solve for ``lambda`` from the score distribution of
the residue background frequencies (the standard implicit equation
``sum_ij p_i p_j exp(lambda * s_ij) = 1``), and use the published K for
BLOSUM62/gapped defaults.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.bio.matrices import ScoringMatrix, blosum62

__all__ = [
    "KarlinAltschulParams",
    "solve_lambda",
    "GAPPED_BLOSUM62",
    "UNGAPPED_BLOSUM62",
    "bit_score",
    "evalue",
    "effective_lengths",
    "ROBINSON_FREQUENCIES",
]

#: Robinson & Robinson (1991) background amino-acid frequencies, keyed by
#: residue, as used by NCBI BLAST for protein statistics.
ROBINSON_FREQUENCIES: dict[str, float] = {
    "A": 0.07805, "R": 0.05129, "N": 0.04487, "D": 0.05364, "C": 0.01925,
    "Q": 0.04264, "E": 0.06295, "G": 0.07377, "H": 0.02199, "I": 0.05142,
    "L": 0.09019, "K": 0.05744, "M": 0.02243, "F": 0.03856, "P": 0.05203,
    "S": 0.07120, "T": 0.05841, "W": 0.01330, "Y": 0.03216, "V": 0.06441,
}


@dataclass(frozen=True)
class KarlinAltschulParams:
    """The (lambda, K, H) triple for one scoring system."""

    lam: float
    k: float
    h: float

    def __post_init__(self) -> None:
        if self.lam <= 0 or self.k <= 0 or self.h <= 0:
            raise ValueError("Karlin-Altschul parameters must be positive")


#: NCBI's published gapped BLOSUM62 parameters (gap open 11, extend 1).
GAPPED_BLOSUM62 = KarlinAltschulParams(lam=0.267, k=0.041, h=0.14)

#: NCBI's ungapped BLOSUM62 parameters.
UNGAPPED_BLOSUM62 = KarlinAltschulParams(lam=0.3176, k=0.134, h=0.40)


def solve_lambda(
    matrix: ScoringMatrix | None = None,
    frequencies: dict[str, float] | None = None,
    *,
    tolerance: float = 1e-9,
) -> float:
    """Solve ``sum_ij p_i p_j exp(lambda * s_ij) = 1`` for lambda > 0.

    Uses bisection, which is robust because the left side is strictly
    increasing in lambda for any matrix with positive expected... rather,
    for any valid scoring matrix (negative expected score, at least one
    positive entry) the equation has exactly one positive root.
    """
    if matrix is None:
        matrix = blosum62()
    if frequencies is None:
        frequencies = ROBINSON_FREQUENCIES

    residues = [r for r in frequencies if r in matrix.alphabet]
    probs = np.array([frequencies[r] for r in residues], dtype=float)
    probs = probs / probs.sum()
    idx = [matrix.alphabet.index(r) for r in residues]
    scores = matrix.matrix[np.ix_(idx, idx)].astype(float)

    expected = float(probs @ scores @ probs)
    if expected >= 0:
        raise ValueError(
            "scoring system has non-negative expected score; "
            "Karlin-Altschul statistics do not apply"
        )
    if scores.max() <= 0:
        raise ValueError("scoring system has no positive score")

    pp = np.outer(probs, probs)

    def f(lam: float) -> float:
        return float((pp * np.exp(lam * scores)).sum()) - 1.0

    lo, hi = 1e-6, 1.0
    while f(hi) < 0:
        hi *= 2.0
        if hi > 100:  # pragma: no cover - defensive
            raise RuntimeError("failed to bracket lambda")
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if f(mid) < 0:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def bit_score(raw_score: float, params: KarlinAltschulParams) -> float:
    """Convert a raw score to a normalised bit score."""
    return (params.lam * raw_score - math.log(params.k)) / math.log(2.0)


def effective_lengths(
    query_len: int, db_len: int, db_sequences: int, params: KarlinAltschulParams
) -> tuple[int, int]:
    """Edge-effect corrected query/database lengths.

    BLAST subtracts the expected HSP length ``l = ln(K m n) / H`` from
    both the query and each database sequence, flooring at 1.
    """
    if query_len <= 0 or db_len <= 0 or db_sequences <= 0:
        raise ValueError("lengths and sequence count must be positive")
    expected_hsp = math.log(params.k * query_len * db_len) / params.h
    m_eff = max(1, int(query_len - expected_hsp))
    n_eff = max(1, int(db_len - db_sequences * expected_hsp))
    return m_eff, n_eff


def evalue(
    raw_score: float,
    query_len: int,
    db_len: int,
    *,
    db_sequences: int = 1,
    params: KarlinAltschulParams = GAPPED_BLOSUM62,
) -> float:
    """Expected number of chance alignments scoring >= ``raw_score``."""
    m_eff, n_eff = effective_lengths(query_len, db_len, db_sequences, params)
    return params.k * m_eff * n_eff * math.exp(-params.lam * raw_score)


@lru_cache(maxsize=1)
def blosum62_ungapped_lambda() -> float:
    """Lambda solved numerically for BLOSUM62 with Robinson frequencies.

    Serves as a cross-check against the published 0.3176 (tests assert
    agreement to ~1e-3).
    """
    return solve_lambda()
