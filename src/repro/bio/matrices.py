"""Substitution matrices for protein and nucleotide alignment.

Ships BLOSUM62 (the BLASTX default) parsed from its canonical NCBI text
form, and simple match/mismatch matrices for DNA overlap alignment (CAP3
scores nucleotide overlaps this way). Matrices are exposed both as
dict-of-pairs (convenient for tests and scripting) and as dense NumPy
arrays over an encoded alphabet (what the alignment kernels consume).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = [
    "ScoringMatrix",
    "blosum62",
    "dna_matrix",
    "PROTEIN_ORDER",
    "DNA_ORDER",
]

#: Residue order used to encode protein sequences into integer arrays.
PROTEIN_ORDER = "ARNDCQEGHILKMFPSTWYVBZX*"

#: Base order used to encode DNA sequences into integer arrays.
DNA_ORDER = "ACGTN"

# Canonical NCBI BLOSUM62, row/column order as in PROTEIN_ORDER.
_BLOSUM62_TEXT = """\
 4 -1 -2 -2  0 -1 -1  0 -2 -1 -1 -1 -1 -2 -1  1  0 -3 -2  0 -2 -1  0 -4
-1  5  0 -2 -3  1  0 -2  0 -3 -2  2 -1 -3 -2 -1 -1 -3 -2 -3 -1  0 -1 -4
-2  0  6  1 -3  0  0  0  1 -3 -3  0 -2 -3 -2  1  0 -4 -2 -3  3  0 -1 -4
-2 -2  1  6 -3  0  2 -1 -1 -3 -4 -1 -3 -3 -1  0 -1 -4 -3 -3  4  1 -1 -4
 0 -3 -3 -3  9 -3 -4 -3 -3 -1 -1 -3 -1 -2 -3 -1 -1 -2 -2 -1 -3 -3 -2 -4
-1  1  0  0 -3  5  2 -2  0 -3 -2  1  0 -3 -1  0 -1 -2 -1 -2  0  3 -1 -4
-1  0  0  2 -4  2  5 -2  0 -3 -3  1 -2 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
 0 -2  0 -1 -3 -2 -2  6 -2 -4 -4 -2 -3 -3 -2  0 -2 -2 -3 -3 -1 -2 -1 -4
-2  0  1 -1 -3  0  0 -2  8 -3 -3 -1 -2 -1 -2 -1 -2 -2  2 -3  0  0 -1 -4
-1 -3 -3 -3 -1 -3 -3 -4 -3  4  2 -3  1  0 -3 -2 -1 -3 -1  3 -3 -3 -1 -4
-1 -2 -3 -4 -1 -2 -3 -4 -3  2  4 -2  2  0 -3 -2 -1 -2 -1  1 -4 -3 -1 -4
-1  2  0 -1 -3  1  1 -2 -1 -3 -2  5 -1 -3 -1  0 -1 -3 -2 -2  0  1 -1 -4
-1 -1 -2 -3 -1  0 -2 -3 -2  1  2 -1  5  0 -2 -1 -1 -1 -1  1 -3 -1 -1 -4
-2 -3 -3 -3 -2 -3 -3 -3 -1  0  0 -3  0  6 -4 -2 -2  1  3 -1 -3 -3 -1 -4
-1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4  7 -1 -1 -4 -3 -2 -2 -1 -2 -4
 1 -1  1  0 -1  0  0  0 -1 -2 -2  0 -1 -2 -1  4  1 -3 -2 -2  0  0  0 -4
 0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  1  5 -2 -2  0 -1 -1  0 -4
-3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1  1 -4 -3 -2 11  2 -3 -4 -3 -2 -4
-2 -2 -2 -3 -2 -1 -2 -3  2 -1 -1 -2 -1  3 -3 -2 -2  2  7 -1 -3 -2 -1 -4
 0 -3 -3 -3 -1 -2 -2 -3 -3  3  1 -2  1 -1 -2 -2  0 -3 -1  4 -3 -2 -1 -4
-2 -1  3  4 -3  0  1 -1  0 -3 -4  0 -3 -3 -2  0 -1 -4 -3 -3  4  1 -1 -4
-1  0  0  1 -3  3  4 -2  0 -3 -3  1 -1 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
 0 -1 -1 -1 -2 -1 -1 -1 -1 -1 -1 -1 -1 -1 -2  0  0 -2 -1 -1 -1 -1 -1 -4
-4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4  1
"""


@dataclass(frozen=True)
class ScoringMatrix:
    """A substitution matrix over a fixed residue alphabet.

    ``alphabet`` gives the residue-to-code mapping; ``matrix`` is a dense
    ``(len(alphabet), len(alphabet))`` int array. Unknown residues are
    encoded as the alphabet's designated wildcard (``X`` for protein,
    ``N`` for DNA).
    """

    name: str
    alphabet: str
    matrix: np.ndarray
    wildcard: str

    def __post_init__(self) -> None:
        n = len(self.alphabet)
        if self.matrix.shape != (n, n):
            raise ValueError(
                f"matrix shape {self.matrix.shape} does not match "
                f"alphabet of length {n}"
            )
        if self.wildcard not in self.alphabet:
            raise ValueError("wildcard must be in the alphabet")

    def score(self, a: str, b: str) -> int:
        """Score a residue pair (case-insensitive; unknowns -> wildcard)."""
        return int(self.matrix[self.encode(a)[0], self.encode(b)[0]])

    @property
    def _codes(self) -> np.ndarray:
        return _encode_table(self.alphabet, self.wildcard)

    def encode(self, seq: str) -> np.ndarray:
        """Encode a residue string into an int8 code array."""
        raw = np.frombuffer(seq.upper().encode("ascii"), dtype=np.uint8)
        return self._codes[raw]

    def max_score(self) -> int:
        """Highest score in the matrix (used by X-drop extension)."""
        return int(self.matrix.max())


@lru_cache(maxsize=None)
def _encode_table(alphabet: str, wildcard: str) -> np.ndarray:
    table = np.full(256, alphabet.index(wildcard), dtype=np.int8)
    for i, ch in enumerate(alphabet):
        table[ord(ch)] = i
    return table


@lru_cache(maxsize=1)
def blosum62() -> ScoringMatrix:
    """The BLOSUM62 matrix in BLAST's residue order."""
    rows = [
        [int(v) for v in line.split()]
        for line in _BLOSUM62_TEXT.strip().splitlines()
    ]
    matrix = np.array(rows, dtype=np.int16)
    if not np.array_equal(matrix, matrix.T):
        raise AssertionError("BLOSUM62 must be symmetric")
    return ScoringMatrix(
        name="BLOSUM62", alphabet=PROTEIN_ORDER, matrix=matrix, wildcard="X"
    )


@lru_cache(maxsize=None)
def dna_matrix(match: int = 2, mismatch: int = -5, n_score: int = 0) -> ScoringMatrix:
    """Match/mismatch matrix for DNA; ``N`` scores ``n_score`` vs anything.

    The defaults (+2/-5) are close to CAP3's overlap scoring, which
    penalises mismatches heavily because transcript overlaps should be
    near-identical.
    """
    n = len(DNA_ORDER)
    matrix = np.full((n, n), mismatch, dtype=np.int16)
    np.fill_diagonal(matrix, match)
    n_idx = DNA_ORDER.index("N")
    matrix[n_idx, :] = n_score
    matrix[:, n_idx] = n_score
    return ScoringMatrix(
        name=f"DNA(+{match}/{mismatch})",
        alphabet=DNA_ORDER,
        matrix=matrix,
        wildcard="N",
    )
