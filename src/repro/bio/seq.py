"""DNA and protein sequence primitives.

Implements the subset of Biopython that blast2cap3 and our BLASTX-like
search need: complementation, the standard codon table, frame translation
and six-frame translation (the "X" in BLASTX), plus validation helpers.

Sequences are plain ``str`` throughout the package — profiling showed the
workloads here are dominated by alignment kernels (which convert to NumPy
integer arrays at their boundary), so a sequence class would add overhead
without buying speed.
"""

from __future__ import annotations

from typing import Iterator

__all__ = [
    "DNA_ALPHABET",
    "PROTEIN_ALPHABET",
    "CODON_TABLE",
    "START_CODONS",
    "STOP_SYMBOL",
    "complement",
    "reverse_complement",
    "translate",
    "six_frame_translations",
    "is_dna",
    "is_protein",
    "gc_content",
]

#: Canonical DNA bases plus the ambiguity code ``N``.
DNA_ALPHABET = "ACGTN"

#: The 20 standard amino acids plus ``X`` (unknown) and ``*`` (stop).
PROTEIN_ALPHABET = "ACDEFGHIKLMNPQRSTVWYX*"

#: Translation-stop marker emitted by :func:`translate`.
STOP_SYMBOL = "*"

#: NCBI translation table 1 (the standard code).
CODON_TABLE: dict[str, str] = {
    "TTT": "F", "TTC": "F", "TTA": "L", "TTG": "L",
    "CTT": "L", "CTC": "L", "CTA": "L", "CTG": "L",
    "ATT": "I", "ATC": "I", "ATA": "I", "ATG": "M",
    "GTT": "V", "GTC": "V", "GTA": "V", "GTG": "V",
    "TCT": "S", "TCC": "S", "TCA": "S", "TCG": "S",
    "CCT": "P", "CCC": "P", "CCA": "P", "CCG": "P",
    "ACT": "T", "ACC": "T", "ACA": "T", "ACG": "T",
    "GCT": "A", "GCC": "A", "GCA": "A", "GCG": "A",
    "TAT": "Y", "TAC": "Y", "TAA": "*", "TAG": "*",
    "CAT": "H", "CAC": "H", "CAA": "Q", "CAG": "Q",
    "AAT": "N", "AAC": "N", "AAA": "K", "AAG": "K",
    "GAT": "D", "GAC": "D", "GAA": "E", "GAG": "E",
    "TGT": "C", "TGC": "C", "TGA": "*", "TGG": "W",
    "CGT": "R", "CGC": "R", "CGA": "R", "CGG": "R",
    "AGT": "S", "AGC": "S", "AGA": "R", "AGG": "R",
    "GGT": "G", "GGC": "G", "GGA": "G", "GGG": "G",
}

#: Codons treated as translation starts by ORF finders.
START_CODONS = frozenset({"ATG"})

_COMPLEMENT = str.maketrans("ACGTNacgtn", "TGCANtgcan")


def complement(seq: str) -> str:
    """Base-wise complement, preserving case; ``N`` maps to ``N``.

    >>> complement("ACGTN")
    'TGCAN'
    """
    return seq.translate(_COMPLEMENT)


def reverse_complement(seq: str) -> str:
    """Reverse complement of a DNA string.

    >>> reverse_complement("ATGC")
    'GCAT'
    """
    return complement(seq)[::-1]


def translate(seq: str, *, frame: int = 0, to_stop: bool = False) -> str:
    """Translate a DNA string into protein, standard code.

    ``frame`` is 0, 1 or 2 (offset into the forward strand). Trailing
    bases that do not fill a codon are ignored. Codons containing ``N``
    (or any non-ACGT character) translate to ``X``.

    >>> translate("ATGGCC")
    'MA'
    >>> translate("ATGTAAGGG", to_stop=True)
    'M'
    """
    if frame not in (0, 1, 2):
        raise ValueError(f"frame must be 0, 1 or 2, got {frame}")
    seq = seq.upper()
    out: list[str] = []
    for i in range(frame, len(seq) - 2, 3):
        aa = CODON_TABLE.get(seq[i : i + 3], "X")
        if aa == STOP_SYMBOL and to_stop:
            break
        out.append(aa)
    return "".join(out)


def six_frame_translations(seq: str) -> Iterator[tuple[int, str]]:
    """Yield ``(frame, protein)`` for all six reading frames.

    Frames follow BLAST convention: +1, +2, +3 on the forward strand and
    -1, -2, -3 on the reverse complement. Frame ``+k`` starts at forward
    offset ``k-1``; frame ``-k`` starts at offset ``k-1`` of the reverse
    complement.

    >>> dict(six_frame_translations("ATGGCC"))[1]
    'MA'
    """
    rc = reverse_complement(seq)
    for offset in range(3):
        yield offset + 1, translate(seq, frame=offset)
    for offset in range(3):
        yield -(offset + 1), translate(rc, frame=offset)


def is_dna(seq: str) -> bool:
    """True if every character is an (upper- or lower-case) DNA base or N."""
    return not seq or all(c in "ACGTNacgtn" for c in seq)


def is_protein(seq: str) -> bool:
    """True if every character is a standard amino-acid code, X or ``*``."""
    return not seq or all(c.upper() in PROTEIN_ALPHABET for c in seq)


def gc_content(seq: str) -> float:
    """Fraction of G/C bases among non-N bases; 0.0 for empty input.

    >>> gc_content("GGCC")
    1.0
    """
    seq = seq.upper()
    informative = sum(1 for c in seq if c in "ACGT")
    if informative == 0:
        return 0.0
    gc = sum(1 for c in seq if c in "GC")
    return gc / informative
