"""K-mer indexing for seed lookup.

Both the BLASTX-like search (protein word seeding) and the CAP3-like
assembler (candidate overlap detection) start from exact shared k-mers.
:class:`KmerIndex` maps every k-mer of a sequence collection to its
``(sequence_key, offset)`` occurrence list.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator

__all__ = ["KmerIndex", "kmers"]


def kmers(seq: str, k: int) -> Iterator[tuple[int, str]]:
    """Yield ``(offset, kmer)`` for every k-mer of ``seq``.

    >>> list(kmers("ACGT", 3))
    [(0, 'ACG'), (1, 'CGT')]
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    for i in range(len(seq) - k + 1):
        yield i, seq[i : i + k]


@dataclass
class KmerIndex:
    """An inverted index from k-mer to occurrence positions.

    ``skip_ambiguous`` drops k-mers containing the wildcard characters
    (``N``/``X``), which otherwise seed spurious matches.
    """

    k: int
    skip_ambiguous: bool = True
    _index: dict[str, list[tuple[Hashable, int]]] = field(
        default_factory=lambda: defaultdict(list), repr=False
    )
    _size: int = 0

    AMBIGUOUS = frozenset("NX")

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")

    def add(self, key: Hashable, seq: str) -> None:
        """Index every k-mer of ``seq`` under ``key``."""
        seq = seq.upper()
        for offset, word in kmers(seq, self.k):
            if self.skip_ambiguous and (set(word) & self.AMBIGUOUS):
                continue
            self._index[word].append((key, offset))
            self._size += 1

    def add_all(self, items: Iterable[tuple[Hashable, str]]) -> None:
        """Index many ``(key, sequence)`` pairs."""
        for key, seq in items:
            self.add(key, seq)

    def lookup(self, word: str) -> list[tuple[Hashable, int]]:
        """All ``(key, offset)`` occurrences of ``word`` (empty if none)."""
        if len(word) != self.k:
            raise ValueError(
                f"lookup word length {len(word)} != index k {self.k}"
            )
        return self._index.get(word.upper(), [])

    def matches(self, seq: str) -> Iterator[tuple[int, Hashable, int]]:
        """Yield ``(query_offset, key, target_offset)`` for every shared
        k-mer between ``seq`` and the indexed collection."""
        seq = seq.upper()
        for q_off, word in kmers(seq, self.k):
            for key, t_off in self._index.get(word, ()):
                yield q_off, key, t_off

    def __len__(self) -> int:
        """Total number of indexed k-mer occurrences."""
        return self._size

    def __contains__(self, word: str) -> bool:
        return word.upper() in self._index

    @property
    def distinct_kmers(self) -> int:
        """Number of distinct k-mers present in the index."""
        return len(self._index)
