"""Multi-seed sweep runner and distribution statistics.

One *configuration* is (platform, n); a *sweep* crosses platforms × n
values × seeds. Each run is an independent simulation (its own RNG
streams), so the per-configuration spread is exactly the run-to-run
variability the paper warns about.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.workflow_factory import simulate_paper_run
from repro.perfmodel.task_models import PaperTaskModel
from repro.util.tables import Table

__all__ = ["RunStats", "SweepResult", "run_config", "run_sweep", "sweep_table"]


@dataclass(frozen=True)
class RunStats:
    """Distribution of wall times for one (platform, n) configuration."""

    platform: str
    n: int
    walltimes: tuple[float, ...]
    retries: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.walltimes:
            raise ValueError("at least one run is required")
        if len(self.walltimes) != len(self.retries):
            raise ValueError("walltimes and retries must be parallel")

    @property
    def mean(self) -> float:
        return statistics.fmean(self.walltimes)

    @property
    def median(self) -> float:
        return statistics.median(self.walltimes)

    @property
    def minimum(self) -> float:
        return min(self.walltimes)

    @property
    def maximum(self) -> float:
        return max(self.walltimes)

    @property
    def stdev(self) -> float:
        if len(self.walltimes) < 2:
            return 0.0
        return statistics.stdev(self.walltimes)

    @property
    def cv(self) -> float:
        """Coefficient of variation — the paper's "may vary" made a number."""
        return self.stdev / self.mean if self.mean else 0.0

    @property
    def total_retries(self) -> int:
        return sum(self.retries)


@dataclass
class SweepResult:
    """All configurations of one sweep, keyed by (platform, n)."""

    configs: dict[tuple[str, int], RunStats] = field(default_factory=dict)

    def get(self, platform: str, n: int) -> RunStats:
        return self.configs[(platform, n)]

    def platforms(self) -> list[str]:
        return sorted({p for p, _ in self.configs})

    def ns(self) -> list[int]:
        return sorted({n for _, n in self.configs})

    def best_n(self, platform: str, *, key: str = "median") -> int:
        """The optimal n for a platform under the chosen statistic."""
        candidates = {
            n: getattr(self.get(platform, n), key) for n in self.ns()
        }
        return min(candidates, key=candidates.get)


def run_config(
    platform: str,
    n: int,
    *,
    seeds: Iterable[int],
    model: PaperTaskModel | None = None,
) -> RunStats:
    """Simulate one configuration across seeds; all runs must succeed."""
    model = model or PaperTaskModel()
    walls, retries = [], []
    for seed in seeds:
        result, _ = simulate_paper_run(n, platform, seed=seed, model=model)
        if not result.success:
            raise RuntimeError(
                f"{platform} n={n} seed={seed} failed: {result.failed_jobs}"
            )
        walls.append(result.trace.wall_time())
        retries.append(result.trace.retry_count)
    return RunStats(
        platform=platform, n=n,
        walltimes=tuple(walls), retries=tuple(retries),
    )


def run_sweep(
    platforms: Sequence[str],
    ns: Sequence[int],
    *,
    seeds: Iterable[int] = range(3),
    model: PaperTaskModel | None = None,
) -> SweepResult:
    """Cross platforms × n × seeds."""
    model = model or PaperTaskModel()
    seeds = list(seeds)
    result = SweepResult()
    for platform in platforms:
        for n in ns:
            result.configs[(platform, n)] = run_config(
                platform, n, seeds=seeds, model=model
            )
    return result


def sweep_table(sweep: SweepResult, *, title: str = "sweep") -> Table:
    """Render a sweep as a distribution table."""
    table = Table(
        ["platform", "n", "median (s)", "mean (s)", "min (s)", "max (s)",
         "cv", "retries"],
        title=title,
    )
    for platform in sweep.platforms():
        for n in sweep.ns():
            s = sweep.get(platform, n)
            table.add_row(
                platform, n, round(s.median), round(s.mean),
                round(s.minimum), round(s.maximum),
                f"{s.cv:.2f}", s.total_retries,
            )
    return table
