"""Experiment orchestration: multi-seed sweeps over platforms and n.

The paper cautions that "the running time for the both platforms and
the optimal number of used clusters of transcripts may vary for every
new run due to the availability of the current resources" (§VI-A).
:mod:`repro.experiments.sweep` makes that variability first-class:
run a configuration across seeds, get distribution statistics, and
compare platforms on equal footing.
"""

from repro.experiments.sweep import (
    RunStats,
    SweepResult,
    run_config,
    run_sweep,
    sweep_table,
)

__all__ = [
    "RunStats",
    "SweepResult",
    "run_config",
    "run_sweep",
    "sweep_table",
]
