"""Filesystem helpers: atomic writes and content checksums.

Workflow tools must never leave half-written catalogs, DAG files, or
rescue files behind when interrupted — DAGMan in particular re-reads its
own outputs on recovery. Two write paths share the same
write-to-temp-then-rename semantics on the same filesystem:

* :func:`atomic_open` — a context manager yielding a **streaming** text
  handle, for writers whose output is large (the paper's
  ``alignments.out`` is 155 MB; buffering it in a ``StringIO`` first
  would hold the whole file in memory);
* :func:`atomic_write` — the convenience one-shot for small payloads
  (catalogs, id lists, JSON blobs).

Both fsync the temp file before the rename and the parent directory
after it, so a crash immediately after ``os.replace`` cannot surface an
empty or truncated file — the durability DAGMan recovery relies on.
"""

from __future__ import annotations

import gzip
import hashlib
import io
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, TextIO

__all__ = [
    "atomic_open",
    "atomic_write",
    "ensure_dir",
    "file_checksum",
    "sha256_text",
    "open_text_auto",
    "write_text_auto",
]


def _fsync_dir(path: Path) -> None:
    """fsync a directory so a just-renamed entry survives a crash."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir-fsync
        pass
    finally:
        os.close(fd)


def ensure_dir(path: str | Path) -> Path:
    """Create ``path`` (and parents) *durably* and return it.

    ``mkdir -p`` alone is not crash-safe: the new directory entry lives
    in its parent, and until the parent is fsynced a crash can lose the
    entry while files inside survive as orphans — exactly the failure a
    recovery journal cannot afford in its own home. So every directory
    this call actually creates gets its parent fsynced, bottom-up.

    Directory fsync failures on platforms that do not support it are
    tolerated (same contract as the rename path in
    :func:`atomic_write`); the creation itself still raises normally.
    """
    path = Path(path)
    missing: list[Path] = []
    probe = path
    while not probe.exists():
        missing.append(probe)
        parent = probe.parent
        if parent == probe:  # filesystem root
            break
        probe = parent
    path.mkdir(parents=True, exist_ok=True)
    # Deepest-last in ``missing``; sync parents root-first so each
    # fsynced entry's own parent is already durable.
    for created in reversed(missing):
        _fsync_dir(created.parent)
    return path


@contextmanager
def atomic_open(path: str | Path, *, encoding: str = "utf-8") -> Iterator[TextIO]:
    """Open ``path`` for streaming text writes with atomic-replace semantics.

    Yields a text handle backed by a temp file in ``path``'s directory;
    on clean exit the data is flushed, fsynced, and renamed over
    ``path`` (and the directory fsynced). On error the temp file is
    removed and ``path`` is untouched. ``.gz`` paths are
    gzip-compressed on the fly.

    Parent directories are created as needed.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.")
    try:
        raw = os.fdopen(fd, "wb")
        handle: TextIO
        if path.suffix == ".gz":
            handle = io.TextIOWrapper(
                gzip.GzipFile(fileobj=raw, mode="wb"), encoding=encoding
            )
        else:
            handle = io.TextIOWrapper(raw, encoding=encoding)
        try:
            yield handle
            handle.flush()
            if path.suffix == ".gz":
                # Finalize the gzip trailer before syncing the raw file.
                handle.detach().close()  # type: ignore[union-attr]
            raw.flush()
            os.fsync(raw.fileno())
        finally:
            try:
                handle.close()
            except ValueError:  # detached wrapper above
                pass
            if not raw.closed:
                raw.close()
        os.replace(tmp_name, path)
        _fsync_dir(path.parent)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write(path: str | Path, data: str | bytes) -> Path:
    """Write ``data`` to ``path`` atomically (temp file + fsync + rename).

    Parent directories are created as needed. Returns the final path.
    The temp file is fsynced before the rename and the directory after,
    so the replace is durable, not merely atomic.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    mode = "wb" if isinstance(data, bytes) else "w"
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.")
    try:
        with os.fdopen(fd, mode) as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
        _fsync_dir(path.parent)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def file_checksum(path: str | Path, *, algorithm: str = "sha256") -> str:
    """Hex digest of a file's contents, streaming in 1 MiB chunks."""
    digest = hashlib.new(algorithm)
    with open(path, "rb") as fh:
        while chunk := fh.read(1 << 20):
            digest.update(chunk)
    return digest.hexdigest()


def sha256_text(text: str) -> str:
    """SHA-256 hex digest of a UTF-8 string (used for replica catalog
    entries and deterministic file ids)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def open_text_auto(path: str | Path) -> TextIO:
    """Open a text file for reading, transparently gunzipping ``.gz``.

    Real sequencing data ships compressed (the paper's 404 MB
    ``transcripts.fasta`` would normally live as ``.fasta.gz``); the
    FASTA/FASTQ/tabular readers route through here so both forms work.
    """
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, "rb"), encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def write_text_auto(path: str | Path, data: str) -> Path:
    """Atomically write text, gzip-compressing when ``path`` ends ``.gz``."""
    path = Path(path)
    with atomic_open(path) as fh:
        fh.write(data)
    return path
