"""Filesystem helpers: atomic writes and content checksums.

Workflow tools must never leave half-written catalogs, DAG files, or
rescue files behind when interrupted — DAGMan in particular re-reads its
own outputs on recovery. ``atomic_write`` gives all writers
write-to-temp-then-rename semantics on the same filesystem.
"""

from __future__ import annotations

import gzip
import hashlib
import io
import os
import tempfile
from pathlib import Path
from typing import TextIO

__all__ = [
    "atomic_write",
    "file_checksum",
    "sha256_text",
    "open_text_auto",
    "write_text_auto",
]


def atomic_write(path: str | Path, data: str | bytes) -> Path:
    """Write ``data`` to ``path`` atomically (temp file + rename).

    Parent directories are created as needed. Returns the final path.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    mode = "wb" if isinstance(data, bytes) else "w"
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.")
    try:
        with os.fdopen(fd, mode) as fh:
            fh.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def file_checksum(path: str | Path, *, algorithm: str = "sha256") -> str:
    """Hex digest of a file's contents, streaming in 1 MiB chunks."""
    digest = hashlib.new(algorithm)
    with open(path, "rb") as fh:
        while chunk := fh.read(1 << 20):
            digest.update(chunk)
    return digest.hexdigest()


def sha256_text(text: str) -> str:
    """SHA-256 hex digest of a UTF-8 string (used for replica catalog
    entries and deterministic file ids)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def open_text_auto(path: str | Path) -> TextIO:
    """Open a text file for reading, transparently gunzipping ``.gz``.

    Real sequencing data ships compressed (the paper's 404 MB
    ``transcripts.fasta`` would normally live as ``.fasta.gz``); the
    FASTA/FASTQ/tabular readers route through here so both forms work.
    """
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, "rb"), encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def write_text_auto(path: str | Path, data: str) -> Path:
    """Atomically write text, gzip-compressing when ``path`` ends ``.gz``."""
    path = Path(path)
    if path.suffix == ".gz":
        return atomic_write(path, gzip.compress(data.encode("utf-8")))
    return atomic_write(path, data)
