"""Human-readable units for durations and byte sizes.

The workflow statistics reports (:mod:`repro.wms.statistics`) and the
benchmark harnesses print wall times in the same style as
``pegasus-statistics`` (``11 hrs, 33 mins``) and file sizes the way the
paper quotes them (``404 MB``). This module centralises parsing and
formatting so every report renders consistently.
"""

from __future__ import annotations

import re

__all__ = [
    "format_duration",
    "parse_duration",
    "format_bytes",
    "parse_bytes",
]

#: Multipliers for the duration suffixes accepted by :func:`parse_duration`.
_DURATION_SUFFIXES = {
    "s": 1.0,
    "sec": 1.0,
    "secs": 1.0,
    "second": 1.0,
    "seconds": 1.0,
    "m": 60.0,
    "min": 60.0,
    "mins": 60.0,
    "minute": 60.0,
    "minutes": 60.0,
    "h": 3600.0,
    "hr": 3600.0,
    "hrs": 3600.0,
    "hour": 3600.0,
    "hours": 3600.0,
    "d": 86400.0,
    "day": 86400.0,
    "days": 86400.0,
}

_DECIMAL_BYTES = {
    "b": 1,
    "kb": 10**3,
    "mb": 10**6,
    "gb": 10**9,
    "tb": 10**12,
}

_BINARY_BYTES = {
    "kib": 2**10,
    "mib": 2**20,
    "gib": 2**30,
    "tib": 2**40,
}

_NUMBER_UNIT_RE = re.compile(
    r"\s*(?P<num>[-+]?\d+(?:\.\d+)?)\s*(?P<unit>[a-zA-Z]*)\s*"
)


def format_duration(seconds: float, *, precision: int = 0) -> str:
    """Render ``seconds`` as a compact ``pegasus-statistics`` style string.

    >>> format_duration(41593)
    '11 hrs, 33 mins'
    >>> format_duration(59.4, precision=1)
    '59.4 secs'
    >>> format_duration(360000)
    '4 days, 4 hrs'
    """
    if seconds < 0:
        return "-" + format_duration(-seconds, precision=precision)
    if seconds < 60:
        return f"{seconds:.{precision}f} secs"
    minutes, secs = divmod(seconds, 60)
    if minutes < 60:
        if secs >= 1:
            return f"{int(minutes)} mins, {int(secs)} secs"
        return f"{int(minutes)} mins"
    hours, minutes = divmod(int(minutes), 60)
    if hours < 24:
        if minutes:
            return f"{hours} hrs, {minutes} mins"
        return f"{hours} hrs"
    days, hours = divmod(hours, 24)
    if hours:
        return f"{days} days, {hours} hrs"
    return f"{days} days"


def parse_duration(text: str | float | int) -> float:
    """Parse a duration into seconds.

    Accepts bare numbers (seconds), single-unit strings (``"3h"``,
    ``"41593 s"``), and comma-separated compounds as produced by
    :func:`format_duration` (``"11 hrs, 33 mins"``).

    >>> parse_duration("100 hours")
    360000.0
    >>> parse_duration("1 hrs, 30 mins")
    5400.0
    >>> parse_duration(42)
    42.0
    """
    if isinstance(text, (int, float)):
        return float(text)
    total = 0.0
    parts = [p for p in text.split(",") if p.strip()]
    if not parts:
        raise ValueError(f"empty duration: {text!r}")
    for part in parts:
        m = _NUMBER_UNIT_RE.fullmatch(part)
        if not m:
            raise ValueError(f"unparseable duration component: {part!r}")
        value = float(m.group("num"))
        unit = m.group("unit").lower()
        if not unit:
            total += value
            continue
        try:
            total += value * _DURATION_SUFFIXES[unit]
        except KeyError:
            raise ValueError(f"unknown duration unit: {unit!r}") from None
    return total


def format_bytes(n: int | float, *, binary: bool = False) -> str:
    """Render a byte count the way the paper does (``404 MB``).

    >>> format_bytes(404_000_000)
    '404 MB'
    >>> format_bytes(1536, binary=True)
    '1.5 KiB'
    """
    if n < 0:
        return "-" + format_bytes(-n, binary=binary)
    if binary:
        step, suffixes = 1024.0, ["B", "KiB", "MiB", "GiB", "TiB"]
    else:
        step, suffixes = 1000.0, ["B", "KB", "MB", "GB", "TB"]
    value = float(n)
    for suffix in suffixes:
        if value < step or suffix == suffixes[-1]:
            if suffix == "B":
                return f"{int(value)} B"
            if value == int(value):
                return f"{int(value)} {suffix}"
            return f"{value:.1f} {suffix}"
        value /= step
    raise AssertionError("unreachable")


def parse_bytes(text: str | int | float) -> int:
    """Parse a byte-size string into an integer byte count.

    Decimal (``KB``/``MB``) and binary (``KiB``/``MiB``) suffixes are both
    accepted; bare numbers are bytes.

    >>> parse_bytes("404 MB")
    404000000
    >>> parse_bytes("1.5 KiB")
    1536
    """
    if isinstance(text, (int, float)):
        return int(text)
    m = _NUMBER_UNIT_RE.fullmatch(text)
    if not m:
        raise ValueError(f"unparseable size: {text!r}")
    value = float(m.group("num"))
    unit = m.group("unit").lower()
    if not unit:
        return int(value)
    if unit in _DECIMAL_BYTES:
        return int(value * _DECIMAL_BYTES[unit])
    if unit in _BINARY_BYTES:
        return int(value * _BINARY_BYTES[unit])
    raise ValueError(f"unknown size unit: {unit!r}")
