"""Graphviz DOT emission for workflow DAGs.

The paper's Figs. 2 and 3 draw the blast2cap3 workflow with squares for
files, ovals for tasks, and red rectangles for the OSG tasks that carry an
extra download/install step. :class:`DotGraph` reproduces exactly that
vocabulary so ``benchmarks/bench_fig2_fig3_dags.py`` can regenerate the
figures as ``.dot`` artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DotGraph"]


def _quote(s: str) -> str:
    escaped = s.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


@dataclass
class DotGraph:
    """An append-only DOT digraph builder.

    Node shapes follow the paper's figure legend:

    * ``file``  -> ``box`` (squares: input and output files)
    * ``task``  -> ``ellipse`` (ovals: computational tasks)
    * ``setup_task`` -> red ``box`` (OSG tasks with download/install steps)
    """

    name: str = "workflow"
    rankdir: str = "TB"
    _nodes: dict[str, str] = field(default_factory=dict)
    _edges: list[tuple[str, str]] = field(default_factory=list)

    _SHAPES = {
        "file": 'shape=box, style=rounded',
        "task": "shape=ellipse",
        "setup_task": 'shape=box, color=red, fontcolor=red',
        "plain": "shape=plaintext",
    }

    def add_node(self, node_id: str, *, label: str | None = None,
                 kind: str = "task") -> None:
        """Register a node. Re-adding the same id with the same kind is a
        no-op; conflicting kinds raise ``ValueError``."""
        try:
            attrs = self._SHAPES[kind]
        except KeyError:
            raise ValueError(f"unknown node kind: {kind!r}") from None
        decl = f"label={_quote(label or node_id)}, {attrs}"
        existing = self._nodes.get(node_id)
        if existing is not None and existing != decl:
            raise ValueError(f"node {node_id!r} re-added with different attrs")
        self._nodes[node_id] = decl

    def add_edge(self, src: str, dst: str) -> None:
        """Register a dependency edge; endpoints must already be nodes."""
        for endpoint in (src, dst):
            if endpoint not in self._nodes:
                raise ValueError(f"edge endpoint {endpoint!r} not declared")
        edge = (src, dst)
        if edge not in self._edges:
            self._edges.append(edge)

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    def render(self) -> str:
        """Emit DOT source text."""
        lines = [f"digraph {_quote(self.name)} {{", f"  rankdir={self.rankdir};"]
        for node_id, attrs in self._nodes.items():
            lines.append(f"  {_quote(node_id)} [{attrs}];")
        for src, dst in self._edges:
            lines.append(f"  {_quote(src)} -> {_quote(dst)};")
        lines.append("}")
        return "\n".join(lines)

    def write(self, path: str) -> None:
        """Write the DOT source to ``path`` atomically."""
        from repro.util.iolib import atomic_write

        atomic_write(path, self.render() + "\n")
