"""Monospace table rendering for benchmark and statistics reports.

All benchmark harnesses print their "figure" as a text table whose rows
mirror the series the paper plots; this module gives them one consistent
renderer (column alignment, optional title rule, Markdown export).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

__all__ = ["Table"]


def _cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        # Trim float noise but keep meaningful precision for timings.
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.2f}"
    return str(value)


@dataclass
class Table:
    """A simple column-aligned text table.

    >>> t = Table(["n", "sandhills (s)", "osg (s)"], title="Fig. 4")
    >>> t.add_row(10, 41593, 55000)
    >>> t.add_row(300, 9800, 13000)
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    Fig. 4
    n    sandhills (s)   osg (s)
    ---  -------------   -------
    10   41593           55000
    300  9800            13000
    """

    columns: Sequence[str]
    title: str | None = None
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append one row; values are formatted via the shared cell rules."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(values)}"
            )
        self.rows.append([_cell(v) for v in values])

    def extend(self, rows: Iterable[Sequence[Any]]) -> None:
        """Append many rows at once."""
        for row in rows:
            self.add_row(*row)

    def _widths(self) -> list[int]:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def render(self) -> str:
        """Render the table with a dashed header rule."""
        widths = self._widths()
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        rule = "  ".join("-" * w for w in widths)
        lines.append(header.rstrip())
        lines.append(rule)
        for row in self.rows:
            lines.append(
                "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
            )
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """Render as a GitHub-flavoured Markdown table."""
        lines = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience alias
        return self.render()
