"""Shared utilities: units, text tables, DOT emission, and I/O helpers.

These are deliberately dependency-light: everything in :mod:`repro.util`
may be imported from any other subpackage without creating cycles.
"""

from repro.util.units import (
    format_bytes,
    format_duration,
    parse_bytes,
    parse_duration,
)
from repro.util.tables import Table
from repro.util.dot import DotGraph
from repro.util.iolib import atomic_write, file_checksum, sha256_text

__all__ = [
    "format_bytes",
    "format_duration",
    "parse_bytes",
    "parse_duration",
    "Table",
    "DotGraph",
    "atomic_write",
    "file_checksum",
    "sha256_text",
]
