"""The rule registry and the context rules run against.

A :class:`Rule` is a named, severity-tagged check function registered
via the :func:`rule` decorator. Each rule declares which pieces of
context it ``requires`` (``"replicas"``, ``"site"``, ``"planned"`` …);
the runner skips — rather than fails — rules whose context was not
provided, so ``lint(adag)`` alone runs the DAX pass while the full
catalog and planned-DAG passes light up as more context arrives.

The :class:`LintContext` also precomputes a *tolerant* view of the
workflow graph: unlike ``ADag.producers()``/``edges()``, which raise on
write-write conflicts, the tolerant view keeps the first producer and
lets every rule (including the write-write rule itself) run on broken
workflows — a linter that crashes on the defects it exists to report
would be useless.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.lint.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.determinism import DeterminismOptions
    from repro.lint.feasibility import SitePool
    from repro.wms.catalogs import (
        ReplicaCatalog,
        SiteCatalog,
        SiteEntry,
        TransformationCatalog,
    )
    from repro.wms.dax import ADag
    from repro.wms.planner import PlannedWorkflow, PlannerOptions

__all__ = ["LintContext", "Rule", "rule", "registered_rules"]


@dataclass
class LintContext:
    """Everything a rule may look at. Only ``adag`` is mandatory."""

    adag: "ADag"
    sites: "SiteCatalog | None" = None
    transformations: "TransformationCatalog | None" = None
    replicas: "ReplicaCatalog | None" = None
    site: "SiteEntry | None" = None
    options: "PlannerOptions | None" = None
    planned: "PlannedWorkflow | None" = None
    #: site name the caller asked for when catalog lookup failed
    requested_site: str | None = None
    #: resource pools the feasibility pass matches against; defaults to
    #: the simulator-derived pools when a site is known
    pools: "dict[str, SitePool] | None" = None
    #: opt-in determinism-audit configuration (DET rules); left None
    #: in normal lint runs because the audit replays simulations
    determinism: "DeterminismOptions | None" = None
    #: whether the run will keep a write-ahead journal (PLAN006):
    #: ``False`` = running without one, ``True`` = journaled, ``None`` =
    #: unknown (the durability rule is skipped)
    journal: bool | None = None

    # -- tolerant graph views -----------------------------------------

    @cached_property
    def producers(self) -> dict[str, str]:
        """LFN -> first producing job id (write-write tolerant)."""
        out: dict[str, str] = {}
        for job in self.adag.jobs.values():
            for f in job.outputs():
                out.setdefault(f.name, job.id)
        return out

    @cached_property
    def all_producers(self) -> dict[str, list[str]]:
        """LFN -> every producing job id, in insertion order."""
        out: dict[str, list[str]] = {}
        for job in self.adag.jobs.values():
            for f in job.outputs():
                out.setdefault(f.name, []).append(job.id)
        return out

    @cached_property
    def consumers(self) -> dict[str, list[str]]:
        """LFN -> consuming job ids, in insertion order."""
        out: dict[str, list[str]] = {}
        for job in self.adag.jobs.values():
            for f in job.inputs():
                out.setdefault(f.name, []).append(job.id)
        return out

    @cached_property
    def data_edges(self) -> set[tuple[str, str]]:
        """Producer -> consumer edges from file flow (tolerant)."""
        edges = set()
        for job in self.adag.jobs.values():
            for f in job.inputs():
                producer = self.producers.get(f.name)
                if producer is not None and producer != job.id:
                    edges.add((producer, job.id))
        return edges

    @cached_property
    def children(self) -> dict[str, set[str]]:
        """Adjacency (explicit + data edges) for the cycle check."""
        adj: dict[str, set[str]] = {j: set() for j in self.adag.jobs}
        for parent, child in self.data_edges | self.adag._explicit_edges:
            if parent in adj and child in adj and parent != child:
                adj[parent].add(child)
        return adj


@dataclass(frozen=True)
class Rule:
    """One registered static check."""

    id: str
    severity: Severity
    title: str
    #: LintContext attributes that must be non-None for the rule to run
    requires: tuple[str, ...]
    check: Callable[[LintContext], Iterable[Finding]] = field(compare=False)

    def applicable(self, ctx: LintContext) -> bool:
        return all(getattr(ctx, attr) is not None for attr in self.requires)

    def run(self, ctx: LintContext) -> Iterator[Finding]:
        """Stamp the rule's id/severity onto whatever the check yields."""
        from dataclasses import replace

        for finding in self.check(ctx):
            yield replace(finding, rule=self.id, severity=self.severity)


_REGISTRY: dict[str, Rule] = {}


def rule(
    rule_id: str,
    severity: Severity,
    title: str,
    *,
    requires: tuple[str, ...] = (),
) -> Callable[[Callable[[LintContext], Iterable[Finding]]], Rule]:
    """Register a check function under ``rule_id``.

    The decorated function yields :class:`Finding` objects whose
    ``rule``/``severity`` fields are filled in by the runner, so a
    check only states *where* and *what*.
    """

    def decorate(fn: Callable[[LintContext], Iterable[Finding]]) -> Rule:
        if rule_id in _REGISTRY:
            # ``python -m repro.lint.determinism`` (and any other rule
            # module run via runpy) executes the module a second time
            # under ``__main__`` after ``repro.lint`` already imported
            # it; that re-registration is the same rule, not a clash.
            if fn.__module__ == "__main__":
                return _REGISTRY[rule_id]
            raise ValueError(f"duplicate rule id: {rule_id!r}")
        r = Rule(
            id=rule_id,
            severity=severity,
            title=title,
            requires=requires,
            check=fn,
        )
        _REGISTRY[rule_id] = r
        return r

    return decorate


def registered_rules() -> list[Rule]:
    """Every known rule, sorted by id."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def finding(location: str, message: str, fix_hint: str = "") -> Finding:
    """Shorthand for rule bodies (id/severity stamped by the runner)."""
    return Finding(
        rule="",
        severity=Severity.INFO,
        location=location,
        message=message,
        fix_hint=fix_hint,
    )
