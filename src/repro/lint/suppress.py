"""Severity configuration, suppressions, and finding baselines.

Three knobs between "the rule fired" and "the build fails":

* **Severity overrides** — a :class:`LintConfig` remaps a rule's
  severity (``{"FLOW003": "off"}`` disables it entirely, ``{"PLAN002":
  "error"}`` promotes it to build-breaking). Overrides apply before
  exit-code semantics, so promoting a warning makes ``repro-lint``
  exit 1 on it.
* **Suppressions** — ``RULE:location`` glob patterns
  (``"DAX007:edge:split->*"``) silence individual findings without
  hiding them: suppressed findings stay in the report and in SARIF
  (as ``suppressions`` entries) but do not affect
  :attr:`~repro.lint.findings.Report.ok`.
* **Baselines** — a JSON file of finding fingerprints captured from a
  known state (``repro-lint --write-baseline``). Later runs suppress
  exactly those findings, so an old workflow can adopt a new rule
  without first fixing history, while *new* findings still fail.

Config files are JSON (the toolchain's lowest common denominator)::

    {
      "severity": {"FLOW003": "off", "PLAN005": "error"},
      "suppress": ["DAX007:edge:split->*"]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Any, Mapping

from repro.lint.findings import Finding, Report, Severity

__all__ = [
    "LintConfig",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]

#: Legal values in a config's ``severity`` map.
SEVERITY_NAMES = ("error", "warning", "info", "off")


@dataclass(frozen=True)
class LintConfig:
    """Parsed lint configuration (severity remaps + suppressions)."""

    #: rule id -> "error" | "warning" | "info" | "off"
    severity: Mapping[str, str] = field(default_factory=dict)
    #: ``RULE:location`` glob patterns (fnmatch, case-sensitive)
    suppress: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for rule_id, name in self.severity.items():
            if name not in SEVERITY_NAMES:
                raise ValueError(
                    f"bad severity for {rule_id!r}: {name!r} (want one "
                    f"of {', '.join(SEVERITY_NAMES)})"
                )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LintConfig":
        unknown = set(data) - {"severity", "suppress"}
        if unknown:
            raise ValueError(
                f"unknown lint config keys: {', '.join(sorted(unknown))}"
            )
        return cls(
            severity=dict(data.get("severity", {})),
            suppress=tuple(data.get("suppress", ())),
        )

    @classmethod
    def load(cls, path: str | Path) -> "LintConfig":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def disabled(self, rule_id: str) -> bool:
        return self.severity.get(rule_id) == "off"

    def effective_severity(
        self, rule_id: str, default: Severity
    ) -> Severity:
        name = self.severity.get(rule_id)
        if name is None or name == "off":
            return default
        return Severity(name)

    def suppression_for(self, finding: Finding) -> str | None:
        """The first pattern matching ``finding``, or None."""
        key = f"{finding.rule}:{finding.location}"
        for pattern in self.suppress:
            if fnmatchcase(key, pattern):
                return pattern
        return None


# -- baselines -----------------------------------------------------------


def write_baseline(report: Report, path: str | Path) -> int:
    """Record every *active* finding's fingerprint; returns the count."""
    fingerprints = sorted(f.fingerprint for f in report.active())
    Path(path).write_text(
        json.dumps(
            {
                "workflow": report.workflow,
                "fingerprints": fingerprints,
            },
            indent=2,
        )
        + "\n"
    )
    return len(fingerprints)


def load_baseline(path: str | Path) -> frozenset[str]:
    data = json.loads(Path(path).read_text())
    fingerprints = data.get("fingerprints")
    if not isinstance(fingerprints, list):
        raise ValueError(f"not a lint baseline file: {path}")
    return frozenset(str(fp) for fp in fingerprints)


def apply_baseline(
    report: Report, fingerprints: frozenset[str]
) -> int:
    """Suppress findings whose fingerprint is baselined; returns the
    number suppressed."""
    suppressed = 0
    for i, f in enumerate(report.findings):
        if not f.suppressed and f.fingerprint in fingerprints:
            report.findings[i] = f.suppress("baseline")
            suppressed += 1
    if suppressed:
        report.sort()
    return suppressed
