"""DAX pass: structural rules over the abstract workflow alone.

These rules need nothing beyond the :class:`~repro.wms.dax.ADag`
(DAX002 additionally wants a replica catalog to know what *could* be
staged in). They absorb and supersede the checks of the deprecated
``ADag.validate()`` — message wording is kept compatible with it.
"""

from __future__ import annotations

from typing import Iterator

from repro.dagman.dag import CycleError, topological_sort
from repro.lint.findings import Finding, Severity
from repro.lint.registry import LintContext, finding, rule

__all__ = ["workflow_order"]


def workflow_order(ctx: LintContext) -> list[str]:
    """Topological order of the abstract jobs (tolerant edges).

    Raises :class:`CycleError` on cyclic workflows — rule DAX001 turns
    that into a finding.
    """
    return topological_sort(ctx.adag.jobs, ctx.children)


@rule(
    "DAX001",
    Severity.ERROR,
    "dependency cycle",
)
def _cycle(ctx: LintContext) -> Iterator[Finding]:
    try:
        workflow_order(ctx)
    except CycleError as exc:
        yield finding(
            "workflow",
            f"dependency cycle among jobs: {', '.join(exc.members)}",
            "break the producer/consumer loop or drop the explicit "
            "edge closing it",
        )


@rule(
    "DAX002",
    Severity.ERROR,
    "input neither produced nor replicated",
    requires=("replicas",),
)
def _missing_input(ctx: LintContext) -> Iterator[Finding]:
    assert ctx.replicas is not None
    for lfn, consumers in ctx.consumers.items():
        if lfn in ctx.producers or ctx.replicas.has(lfn):
            continue
        shown = ", ".join(repr(c) for c in consumers[:3])
        if len(consumers) > 3:
            shown += f" (+{len(consumers) - 3} more)"
        yield finding(
            f"file:{lfn}",
            f"file {lfn!r} is consumed by {shown} but no job produces "
            "it and the replica catalog has no entry for it",
            "add a replica catalog entry (or a producing job) for "
            f"{lfn!r}",
        )


@rule(
    "DAX003",
    Severity.ERROR,
    "write-write conflict",
)
def _write_write(ctx: LintContext) -> Iterator[Finding]:
    for lfn, producers in ctx.all_producers.items():
        if len(producers) < 2:
            continue
        extra = f" (+{len(producers) - 2} more)" if len(producers) > 2 else ""
        yield finding(
            f"file:{lfn}",
            f"file {lfn!r} produced by both {producers[0]!r} and "
            f"{producers[1]!r}{extra}",
            "rename one output or merge the producing jobs",
        )


@rule(
    "DAX004",
    Severity.WARNING,
    "dead job",
)
def _dead_job(ctx: LintContext) -> Iterator[Finding]:
    for job in ctx.adag.jobs.values():
        if not job.uses:
            continue  # DAX006's case, don't double-report
        if job.outputs():
            continue
        if ctx.children.get(job.id):
            continue
        yield finding(
            f"job:{job.id}",
            f"job {job.id!r} produces no files and nothing depends on "
            "it; its work can never be staged out",
            "declare an output file or remove the job",
        )


@rule(
    "DAX005",
    Severity.WARNING,
    "file size disagreement",
)
def _size_disagreement(ctx: LintContext) -> Iterator[Finding]:
    sizes: dict[str, int] = {}
    for job in ctx.adag.jobs.values():
        for f, _link in job.uses:
            if f.name in sizes and sizes[f.name] != f.size:
                yield finding(
                    f"file:{f.name}",
                    f"file {f.name!r} declared with sizes "
                    f"{sizes[f.name]} and {f.size}",
                    "use one File object (or one size) per logical file",
                )
            sizes.setdefault(f.name, f.size)


@rule(
    "DAX006",
    Severity.WARNING,
    "job uses no files",
)
def _no_files(ctx: LintContext) -> Iterator[Finding]:
    for job in ctx.adag.jobs.values():
        if not job.uses:
            yield finding(
                f"job:{job.id}",
                f"job {job.id!r} uses no files",
                "declare inputs/outputs so the planner can order and "
                "stage it",
            )


@rule(
    "DAX007",
    Severity.INFO,
    "redundant explicit edge",
)
def _redundant_edge(ctx: LintContext) -> Iterator[Finding]:
    for parent, child in sorted(
        ctx.adag._explicit_edges & ctx.data_edges
    ):
        yield finding(
            f"edge:{parent}->{child}",
            f"explicit edge {parent!r} -> {child!r} duplicates a data "
            "dependency",
            "drop the add_dependency() call; file flow already orders "
            "these jobs",
        )


@rule(
    "DAX008",
    Severity.WARNING,
    "file is both input and output of one job",
)
def _in_place_file(ctx: LintContext) -> Iterator[Finding]:
    for job in ctx.adag.jobs.values():
        overlap = {f.name for f in job.inputs()} & {
            f.name for f in job.outputs()
        }
        for lfn in sorted(overlap):
            yield finding(
                f"job:{job.id}",
                f"job {job.id!r} lists file {lfn!r} as both input and "
                "output (in-place update)",
                "write to a new logical file; in-place updates break "
                "retries and data reuse",
            )
