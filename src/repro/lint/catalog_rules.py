"""Catalog/site pass: the workflow against the three catalogs.

These rules catch the paper's pre-submission failure modes: a
transformation nobody installed, the "no setup step" configuration
whose ClassAd requirements can never match a site that guarantees no
software (§V-D's failure-prone variant, detected *before* submission
instead of after hours of idling), and replica entries pointing at
sites the site catalog does not know.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.dagman.condor import ClassAd, evaluate_requirements
from repro.lint.findings import Finding, Severity
from repro.lint.registry import LintContext, finding, rule
from repro.sim.machine import SOFTWARE_ATTRS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.wms.catalogs import SiteEntry

__all__ = ["guaranteed_machine_ad"]


def guaranteed_machine_ad(site: "SiteEntry") -> ClassAd:
    """The ClassAd a site *guarantees* every machine advertises.

    On a site without pre-installed software the ``has_*`` attributes
    are guaranteed False (some machines may happen to have them, but a
    requirement that relies on them is a gamble the linter flags).
    """
    attrs: dict[str, object] = {"site": site.name, "speed": 1.0}
    for attr in SOFTWARE_ATTRS:
        attrs[attr] = bool(site.software_preinstalled)
    return ClassAd(name=site.name, attributes=attrs)


@rule(
    "CAT001",
    Severity.ERROR,
    "transformation not in catalog",
    requires=("transformations",),
)
def _unknown_transformation(ctx: LintContext) -> Iterator[Finding]:
    assert ctx.transformations is not None
    jobs_by_tx: dict[str, list[str]] = {}
    for job in ctx.adag.jobs.values():
        if job.transformation not in ctx.transformations:
            jobs_by_tx.setdefault(job.transformation, []).append(job.id)
    for tx in sorted(jobs_by_tx):
        jobs = jobs_by_tx[tx]
        shown = ", ".join(repr(j) for j in jobs[:3])
        if len(jobs) > 3:
            shown += f" (+{len(jobs) - 3} more)"
        yield finding(
            f"transformation:{tx}",
            f"transformations not in catalog: {tx!r} (used by {shown})",
            f"add a TransformationEntry for {tx!r}",
        )


@rule(
    "CAT002",
    Severity.ERROR,
    "requirements statically unsatisfiable on site",
    requires=("site", "transformations"),
)
def _unsatisfiable_requirements(ctx: LintContext) -> Iterator[Finding]:
    assert ctx.site is not None and ctx.transformations is not None
    from repro.wms.planner import SOFTWARE_REQUIREMENTS, PlannerOptions

    options = ctx.options or PlannerOptions()
    site_ad = guaranteed_machine_ad(ctx.site)

    # Jobs and the requirements they would carry: read them off the
    # planned DAG when available (covers hand-set requirements), else
    # derive them exactly as the planner would.
    job_requirements: dict[str, str] = {}
    if ctx.planned is not None:
        for abstract, executable in ctx.planned.job_map.items():
            req = ctx.planned.dag.jobs[executable].requirements
            if req:
                job_requirements[abstract] = req
    else:
        for job in ctx.adag.jobs.values():
            if job.transformation not in ctx.transformations:
                continue  # CAT001's case
            entry = ctx.transformations.lookup(job.transformation)
            preinstalled = ctx.site.software_preinstalled or (
                entry.installed_at(ctx.site.name)
            )
            if not preinstalled and options.setup_mode == "never":
                job_requirements[job.id] = SOFTWARE_REQUIREMENTS

    by_expr: dict[str, list[str]] = {}
    for job_id, expr in job_requirements.items():
        if not evaluate_requirements(expr, site_ad):
            by_expr.setdefault(expr, []).append(job_id)
    for expr in sorted(by_expr):
        jobs = by_expr[expr]
        yield finding(
            f"site:{ctx.site.name}",
            f"requirements {expr!r} of {len(jobs)} job(s) are statically "
            f"unsatisfiable: site {ctx.site.name!r} guarantees no machine "
            "matching them (jobs would idle until the unmatched timeout)",
            'plan with setup_mode="auto" so jobs carry their own '
            "download/install step, or target a site with the software "
            "pre-installed",
        )


@rule(
    "CAT003",
    Severity.WARNING,
    "replica registered at unknown site",
    requires=("replicas", "sites"),
)
def _replica_unknown_site(ctx: LintContext) -> Iterator[Finding]:
    assert ctx.replicas is not None and ctx.sites is not None
    seen: set[tuple[str, str]] = set()
    for lfn, pfn, site_name in ctx.replicas.entries():
        if site_name in ctx.sites or (lfn, site_name) in seen:
            continue
        seen.add((lfn, site_name))
        yield finding(
            f"file:{lfn}",
            f"replica {pfn!r} for {lfn!r} is registered at site "
            f"{site_name!r}, which is not in the site catalog",
            f"add site {site_name!r} to the site catalog or re-register "
            "the replica",
        )


@rule(
    "CAT004",
    Severity.ERROR,
    "target site not in site catalog",
    requires=("sites",),
)
def _unknown_target_site(ctx: LintContext) -> Iterator[Finding]:
    assert ctx.sites is not None
    # ctx.site is resolved by lint(); when resolution failed the
    # requested name is stashed on the context by the runner.
    if ctx.requested_site and ctx.site is None:
        yield finding(
            f"site:{ctx.requested_site}",
            f"site not in catalog: {ctx.requested_site!r}",
            "add a SiteEntry or pick one of the cataloged sites",
        )
