"""``repro-lint --fix``: autofixes for mechanical findings.

Only findings with a purely syntactic remedy get a fixer — the fix
must be provably behaviour-preserving (or behaviour-*restoring*) on
the abstract workflow alone:

* **DAX007** (redundant explicit edge) — drop the ``add_dependency``
  edge; the identical data dependency keeps the ordering.
* **DAX005** (file size disagreement) — unify every declaration of the
  LFN to the *largest* declared size (transfer-time modelling prefers
  the conservative estimate).

Fixers receive the live :class:`~repro.wms.dax.ADag` and one finding,
mutate the workflow in place, and report whether they changed
anything. :func:`apply_fixes` drives the fix → re-lint loop until no
fixable finding remains (bounded, in case a fixer keeps claiming
progress), which is what the CLI's ``--fix`` wraps: it rewrites the
DAX file and prints what it repaired.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable

from repro.lint.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.wms.dax import ADag

__all__ = ["register_fixer", "fixable_rules", "apply_fixes"]

Fixer = Callable[["ADag", Finding], bool]

_FIXERS: dict[str, Fixer] = {}

#: fix → re-lint rounds before giving up (defensive bound).
MAX_ROUNDS = 5


def register_fixer(rule_id: str) -> Callable[[Fixer], Fixer]:
    """Register an autofixer for ``rule_id`` findings."""

    def decorate(fn: Fixer) -> Fixer:
        if rule_id in _FIXERS:
            raise ValueError(f"duplicate fixer for rule: {rule_id!r}")
        _FIXERS[rule_id] = fn
        return fn

    return decorate


def fixable_rules() -> list[str]:
    return sorted(_FIXERS)


@register_fixer("DAX007")
def _drop_redundant_edge(adag: "ADag", finding: Finding) -> bool:
    prefix, _, spec = finding.location.partition(":")
    if prefix != "edge" or "->" not in spec:
        return False
    parent, _, child = spec.partition("->")
    if (parent, child) in adag._explicit_edges:
        adag._explicit_edges.discard((parent, child))
        return True
    return False


@register_fixer("DAX005")
def _unify_file_sizes(adag: "ADag", finding: Finding) -> bool:
    from dataclasses import replace

    prefix, _, lfn = finding.location.partition(":")
    if prefix != "file" or not lfn:
        return False
    declared = [
        f.size
        for job in adag.jobs.values()
        for f, _link in job.uses
        if f.name == lfn
    ]
    if len(set(declared)) < 2:
        return False
    biggest = max(declared)
    for job in adag.jobs.values():
        job.uses = [
            (replace(f, size=biggest), link)
            if f.name == lfn and f.size != biggest
            else (f, link)
            for f, link in job.uses
        ]
    return True


def apply_fixes(
    adag: "ADag",
    *,
    relint: Callable[["ADag"], Iterable[Finding]] | None = None,
) -> list[Finding]:
    """Fix every fixable finding; returns the findings repaired.

    ``relint`` produces the current findings for ``adag`` (defaults to
    the DAX pass of :func:`repro.lint.lint`); it is re-run after each
    round because one fix can expose or retire other findings.
    """
    if relint is None:

        def relint(a: "ADag") -> Iterable[Finding]:
            from repro.lint import lint

            return lint(a).findings

    repaired: list[Finding] = []
    for _round in range(MAX_ROUNDS):
        progressed = False
        for finding in list(relint(adag)):
            fixer = _FIXERS.get(finding.rule)
            if fixer is None or finding.suppressed:
                continue
            if fixer(adag, finding):
                repaired.append(finding)
                progressed = True
        if not progressed:
            break
    return repaired
