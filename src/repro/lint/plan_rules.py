"""Planned-DAG pass: rules over the planner's executable output.

These run when the caller hands ``lint()`` a
:class:`~repro.wms.planner.PlannedWorkflow` (the planner's preflight
always does). They catch decoration mistakes the DAX cannot show:
setup steps on sites that do not need them, retry budgets that cannot
survive preemption, clustering that makes the critical path *longer*,
and priority inversions between producers and consumers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.lint.dax_rules import workflow_order
from repro.lint.findings import Finding, Severity
from repro.lint.registry import LintContext, finding, rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dagman.dag import Dag
    from repro.wms.catalogs import SiteEntry

__all__ = [
    "abstract_critical_path",
    "durability_advice",
    "DURABILITY_MAKESPAN_THRESHOLD_S",
]

#: Expected makespan past which an unjournaled run is a gamble: the
#: paper's OSG assemblies ran for hours, and losing hour N to a manager
#: crash re-runs hours 1..N-1 from scratch.
DURABILITY_MAKESPAN_THRESHOLD_S = 4 * 3600.0


def abstract_critical_path(ctx: LintContext) -> float:
    """Runtime-weighted longest path through the abstract workflow."""
    longest: dict[str, float] = {}
    parents: dict[str, list[str]] = {j: [] for j in ctx.adag.jobs}
    for parent, kids in ctx.children.items():
        for child in kids:
            parents[child].append(parent)
    for node in workflow_order(ctx):
        incoming = [longest[p] for p in parents[node]]
        longest[node] = ctx.adag.jobs[node].runtime + max(
            incoming, default=0.0
        )
    return max(longest.values(), default=0.0)


def _is_preemptible(site: "SiteEntry") -> bool:
    """Opportunistic sites: no shared FS, no maintained software stack
    — the OSG profile, where jobs run on borrowed VO resources and
    "may be cancelled or held" (§VI-A)."""
    return not site.shared_filesystem and not site.software_preinstalled


@rule(
    "PLAN001",
    Severity.WARNING,
    "setup step on shared-filesystem site",
    requires=("planned", "site"),
)
def _setup_on_shared_fs(ctx: LintContext) -> Iterator[Finding]:
    assert ctx.planned is not None and ctx.site is not None
    if not ctx.site.shared_filesystem:
        return
    with_setup = sorted(
        name
        for name, job in ctx.planned.dag.jobs.items()
        if job.needs_setup
    )
    if with_setup:
        yield finding(
            f"site:{ctx.site.name}",
            f"{len(with_setup)} job(s) carry a per-job download/install "
            f"setup step on shared-filesystem site {ctx.site.name!r} "
            f"(e.g. {with_setup[0]!r}); the stack should be installed "
            "once on the shared FS instead",
            "install the transformations on the site (installed_sites) "
            "or mark the site software_preinstalled",
        )


@rule(
    "PLAN002",
    Severity.WARNING,
    "no retries on a preemptible site",
    requires=("planned", "site"),
)
def _no_retries_preemptible(ctx: LintContext) -> Iterator[Finding]:
    assert ctx.planned is not None and ctx.site is not None
    if not _is_preemptible(ctx.site):
        return
    zero_retry = sorted(
        name
        for name in set(ctx.planned.job_map.values())
        if ctx.planned.dag.jobs[name].retries == 0
    )
    if zero_retry:
        yield finding(
            f"site:{ctx.site.name}",
            f"{len(zero_retry)} compute job(s) have retries=0 on "
            f"preemptible site {ctx.site.name!r} (e.g. "
            f"{zero_retry[0]!r}); a single eviction fails the whole "
            "workflow",
            "set PlannerOptions(retries=...) to a positive value",
        )


@rule(
    "PLAN003",
    Severity.WARNING,
    "clustering serializes the critical path",
    requires=("planned",),
)
def _clustering_serializes(ctx: LintContext) -> Iterator[Finding]:
    assert ctx.planned is not None
    members: dict[str, list[str]] = {}
    for abstract, executable in ctx.planned.job_map.items():
        members.setdefault(executable, []).append(abstract)
    clusters = {
        name: abstracts
        for name, abstracts in members.items()
        if len(abstracts) > 1
    }
    if not clusters:
        return
    baseline = abstract_critical_path(ctx)
    for name in sorted(clusters):
        job = ctx.planned.dag.jobs[name]
        if job.runtime > baseline > 0:
            yield finding(
                f"job:{name}",
                f"horizontal cluster {name!r} runs "
                f"{len(clusters[name])} tasks sequentially for "
                f"{job.runtime:.0f}s, longer than the entire "
                f"unclustered critical path ({baseline:.0f}s)",
                "reduce PlannerOptions(cluster_size=...) so clustered "
                "batches stay shorter than the critical path",
            )


@rule(
    "PLAN004",
    Severity.WARNING,
    "priority inversion between producer and consumer",
    requires=("planned",),
)
def _priority_inversion(ctx: LintContext) -> Iterator[Finding]:
    assert ctx.planned is not None
    dag = ctx.planned.dag
    for parent, child in dag.edges():
        if dag.jobs[child].priority > dag.jobs[parent].priority:
            yield finding(
                f"edge:{parent}->{child}",
                f"consumer {child!r} (priority "
                f"{dag.jobs[child].priority}) outranks its producer "
                f"{parent!r} (priority {dag.jobs[parent].priority}); "
                "the high-priority job still waits for the low-priority "
                "one",
                "raise the producer's priority to at least the "
                "consumer's",
            )


def durability_advice(
    dag: "Dag",
    *,
    makespan_threshold_s: float = DURABILITY_MAKESPAN_THRESHOLD_S,
) -> str | None:
    """Why this executable DAG deserves a write-ahead journal, or None.

    Shared between PLAN006 and ``repro-run``'s inline warning: a plan
    that budgets retries *expects* failures, and a plan whose critical
    path alone exceeds the threshold loses real hours to a manager
    crash — both are runs worth making resumable.
    """
    with_retries = sorted(
        name for name, job in dag.jobs.items() if job.retries > 0
    )
    path_s = dag.critical_path_length()
    reasons = []
    if with_retries:
        reasons.append(
            f"{len(with_retries)} job(s) budget retries (e.g. "
            f"{with_retries[0]!r}) — the plan expects failures"
        )
    if path_s > makespan_threshold_s:
        reasons.append(
            f"the critical path alone runs {path_s / 3600.0:.1f}h "
            f"(> {makespan_threshold_s / 3600.0:.0f}h) — a manager "
            "crash near the end re-runs all of it"
        )
    if not reasons:
        return None
    return "; ".join(reasons)


@rule(
    "PLAN006",
    Severity.WARNING,
    "long or retry-heavy run without a write-ahead journal",
    requires=("planned", "journal"),
)
def _unjournaled_durable_run(ctx: LintContext) -> Iterator[Finding]:
    assert ctx.planned is not None and ctx.journal is not None
    if ctx.journal:
        return
    advice = durability_advice(ctx.planned.dag)
    if advice:
        yield finding(
            f"workflow:{ctx.planned.dag.name}",
            f"this run keeps no write-ahead journal, but {advice}",
            "run with repro-run --journal DIR so a crashed manager "
            "resumes with --resume DIR instead of re-executing "
            "completed jobs",
        )


@rule(
    "PLAN005",
    Severity.WARNING,
    "no job timeout on a preemptible site",
    requires=("planned", "site"),
)
def _no_timeout_preemptible(ctx: LintContext) -> Iterator[Finding]:
    assert ctx.planned is not None and ctx.site is not None
    if not _is_preemptible(ctx.site):
        return
    no_timeout = sorted(
        name
        for name in set(ctx.planned.job_map.values())
        if ctx.planned.dag.jobs[name].timeout_s is None
    )
    if no_timeout:
        yield finding(
            f"site:{ctx.site.name}",
            f"{len(no_timeout)} compute job(s) have no timeout on "
            f"preemptible site {ctx.site.name!r} (e.g. "
            f"{no_timeout[0]!r}); a hung attempt on a borrowed node "
            "wedges the workflow with no failure to retry",
            "set PlannerOptions(timeout_s=...) so hung attempts are "
            "killed and retried",
        )
