"""``repro-lint``: the pre-flight workflow analyzer on the command line.

Lints either a DAX file (``--dax workflow.dax``) or the bundled
blast2cap3 workflow at a given scale (``-n``), against the default
catalogs and a target site. Exit status 0 means no failing findings
(suppressed/baselined findings never fail), 1 means at least one, 2
means the input could not be read. Diagnostics go to stderr; with
``--format json`` or ``--format sarif`` stdout carries *only* the
machine-readable document.

Examples::

    repro-lint -n 300 --site osg --setup-mode never   # the paper's trap
    repro-lint --dax run1/workflow.dax --site sandhills --format json
    repro-lint -n 100 --site osg --pools doctored.json --format sarif
    repro-lint --dax w.dax --fix                      # repair mechanical findings
    repro-lint -n 6 --audit-determinism               # replay-based audit
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.lint import lint, render_report
from repro.lint.findings import Report

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static pre-flight analysis of a workflow: DAX, "
        "dataflow, catalog, planned-DAG, and resource-feasibility "
        "rules, plus an opt-in determinism audit.",
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument("--dax", help="path to a DAX XML file to lint")
    source.add_argument(
        "-n", "--clusters", type=int, default=100,
        help="lint the bundled blast2cap3 workflow at this scale",
    )
    parser.add_argument(
        "--site", choices=("sandhills", "osg", "cloud", "local"),
        default="sandhills", help="target site for the catalog/plan passes",
    )
    parser.add_argument(
        "--setup-mode", choices=("auto", "never"), default="auto",
        help="planner setup mode to lint against (the paper's "
        "failure-prone configuration is --setup-mode never on osg)",
    )
    parser.add_argument("--retries", type=int, default=3)
    parser.add_argument(
        "--cluster-size", type=int, default=1,
        help="horizontal clustering factor to lint against",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        dest="output_format",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="shorthand for --format json",
    )
    parser.add_argument(
        "--sarif", metavar="PATH",
        help="additionally write the report as SARIF 2.1.0 to PATH",
    )
    parser.add_argument(
        "--pools", metavar="PATH",
        help="JSON file of site-pool overrides for the feasibility "
        'pass, e.g. {"osg": {"software": ["has_python"]}} to model a '
        "pool without the rest of the stack",
    )
    parser.add_argument(
        "--config", metavar="PATH",
        help="lint config (JSON): severity overrides and suppressions",
    )
    parser.add_argument(
        "--baseline", metavar="PATH",
        help="suppress findings whose fingerprints are in this baseline",
    )
    parser.add_argument(
        "--write-baseline", metavar="PATH",
        help="record the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--fix", action="store_true",
        help="apply autofixes for mechanical findings (requires --dax; "
        "rewrites the file, keeping a .orig backup)",
    )
    parser.add_argument(
        "--audit-determinism", action="store_true",
        help="also replay small simulations under perturbed RNG "
        "conditions and report trace divergence (slow)",
    )
    parser.add_argument(
        "--journal", dest="journal", action="store_true", default=None,
        help="the run will keep a write-ahead journal (satisfies the "
        "PLAN006 durability rule)",
    )
    parser.add_argument(
        "--no-journal", dest="journal", action="store_false",
        help="the run will NOT keep a journal: arm PLAN006, which "
        "warns when retries or a long critical path make an "
        "unjournaled run risky (omit both flags to skip the rule)",
    )
    parser.add_argument(
        "--fail-on", choices=("error", "warning"), default="error",
        help="exit 1 when findings of this severity (or worse) remain "
        "unsuppressed (default: error)",
    )
    return parser


def _fails(report: Report, fail_on: str) -> bool:
    if fail_on == "warning":
        return bool(report.errors() or report.warnings())
    return not report.ok


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.json:
        args.output_format = "json"

    from repro.core.workflow_factory import (
        build_blast2cap3_adag,
        default_catalogs,
    )
    from repro.lint.determinism import DeterminismOptions
    from repro.lint.feasibility import default_pools, pools_from_mapping
    from repro.lint.suppress import (
        LintConfig,
        load_baseline,
        write_baseline,
    )
    from repro.perfmodel.task_models import PaperTaskModel
    from repro.wms.dax import ADag
    from repro.wms.planner import PlannerOptions, PlanningError, plan

    if args.fix and not args.dax:
        parser.error("--fix requires --dax (the bundled workflow is "
                     "generated, not a file to rewrite)")

    if args.dax:
        path = Path(args.dax)
        if not path.exists():
            print(f"no such DAX file: {path}", file=sys.stderr)
            return 2
        try:
            adag = ADag.read(path)
        except (ValueError, OSError) as exc:
            print(f"cannot parse {path}: {exc}", file=sys.stderr)
            return 2
    else:
        try:
            adag = build_blast2cap3_adag(args.clusters, model=PaperTaskModel())
        except ValueError as exc:
            parser.error(str(exc))

    config = None
    if args.config:
        try:
            config = LintConfig.load(args.config)
        except (OSError, ValueError) as exc:
            print(f"cannot load config {args.config}: {exc}",
                  file=sys.stderr)
            return 2
    baseline = None
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"cannot load baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2

    sites, transformations, replicas = default_catalogs()
    pools = None
    if args.pools:
        try:
            overrides = json.loads(Path(args.pools).read_text())
            pools = pools_from_mapping(
                overrides, base=default_pools(sites)
            )
        except (OSError, ValueError) as exc:
            print(f"cannot load pools {args.pools}: {exc}",
                  file=sys.stderr)
            return 2

    try:
        options = PlannerOptions(
            retries=args.retries,
            cluster_size=args.cluster_size,
            setup_mode=args.setup_mode,
            lint="off",  # we run the linter ourselves, with the planned DAG
        )
    except ValueError as exc:
        parser.error(str(exc))

    determinism = None
    if args.audit_determinism:
        determinism = DeterminismOptions(
            n=min(args.clusters, 6), platforms=("sandhills", "osg")
        )

    def run_lint(current: ADag) -> Report:
        # Best effort: include the planned-DAG pass when the workflow
        # plans at all; when planning itself fails the static passes
        # still run and explain why.
        planned = None
        try:
            planned = plan(
                current,
                site_name=args.site,
                sites=sites,
                transformations=transformations,
                replicas=replicas,
                options=options,
            )
        except (PlanningError, ValueError):
            pass
        return lint(
            current,
            sites=sites,
            transformations=transformations,
            replicas=replicas,
            site=args.site,
            options=options,
            planned=planned,
            pools=pools,
            determinism=determinism,
            journal=args.journal,
            config=config,
            baseline=baseline,
        )

    if args.fix:
        from repro.lint.fix import apply_fixes

        repaired = apply_fixes(
            adag, relint=lambda a: run_lint(a).findings
        )
        if repaired:
            backup = path.with_suffix(path.suffix + ".orig")
            backup.write_text(path.read_text())
            adag.write(path)
            for f in repaired:
                print(f"fixed {f.rule} [{f.location}]", file=sys.stderr)
            print(
                f"applied {len(repaired)} fix(es) to {path} "
                f"(backup: {backup})",
                file=sys.stderr,
            )
        else:
            print("nothing to fix", file=sys.stderr)

    report = run_lint(adag)

    if args.write_baseline:
        count = write_baseline(report, args.write_baseline)
        print(
            f"baseline: recorded {count} finding(s) to "
            f"{args.write_baseline}",
            file=sys.stderr,
        )
        return 0

    if args.sarif:
        from repro.lint.sarif import sarif_json

        Path(args.sarif).write_text(
            sarif_json(report, artifact=args.dax) + "\n"
        )
        print(f"SARIF written to {args.sarif}", file=sys.stderr)

    if args.output_format == "json":
        print(report.to_json())
    elif args.output_format == "sarif":
        from repro.lint.sarif import sarif_json

        print(sarif_json(report, artifact=args.dax))
    else:
        print(render_report(report))
    return 1 if _fails(report, args.fail_on) else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
