"""``repro-lint``: the pre-flight workflow linter on the command line.

Lints either a DAX file (``--dax workflow.dax``) or the bundled
blast2cap3 workflow at a given scale (``-n``), against the default
catalogs and a target site. Exit status 0 means no ERROR findings;
1 means at least one; 2 means the input could not be read.

Examples::

    repro-lint -n 300 --site osg --setup-mode never   # the paper's trap
    repro-lint --dax run1/workflow.dax --site sandhills --json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint import lint, render_report

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static pre-flight analysis of a workflow: DAX, "
        "catalog, and planned-DAG rules.",
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument("--dax", help="path to a DAX XML file to lint")
    source.add_argument(
        "-n", "--clusters", type=int, default=100,
        help="lint the bundled blast2cap3 workflow at this scale",
    )
    parser.add_argument(
        "--site", choices=("sandhills", "osg", "cloud", "local"),
        default="sandhills", help="target site for the catalog/plan passes",
    )
    parser.add_argument(
        "--setup-mode", choices=("auto", "never"), default="auto",
        help="planner setup mode to lint against (the paper's "
        "failure-prone configuration is --setup-mode never on osg)",
    )
    parser.add_argument("--retries", type=int, default=3)
    parser.add_argument(
        "--cluster-size", type=int, default=1,
        help="horizontal clustering factor to lint against",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    args = parser.parse_args(argv)

    from repro.core.workflow_factory import (
        build_blast2cap3_adag,
        default_catalogs,
    )
    from repro.perfmodel.task_models import PaperTaskModel
    from repro.wms.dax import ADag
    from repro.wms.planner import PlannerOptions, PlanningError, plan

    if args.dax:
        path = Path(args.dax)
        if not path.exists():
            print(f"no such DAX file: {path}", file=sys.stderr)
            return 2
        try:
            adag = ADag.read(path)
        except (ValueError, OSError) as exc:
            print(f"cannot parse {path}: {exc}", file=sys.stderr)
            return 2
    else:
        try:
            adag = build_blast2cap3_adag(args.clusters, model=PaperTaskModel())
        except ValueError as exc:
            parser.error(str(exc))

    sites, transformations, replicas = default_catalogs()
    try:
        options = PlannerOptions(
            retries=args.retries,
            cluster_size=args.cluster_size,
            setup_mode=args.setup_mode,
            lint="off",  # we run the linter ourselves, with the planned DAG
        )
    except ValueError as exc:
        parser.error(str(exc))

    # Best effort: include the planned-DAG pass when the workflow plans
    # at all; when planning itself fails the static passes still run
    # and explain why.
    planned = None
    try:
        planned = plan(
            adag,
            site_name=args.site,
            sites=sites,
            transformations=transformations,
            replicas=replicas,
            options=options,
        )
    except (PlanningError, ValueError):
        pass

    report = lint(
        adag,
        sites=sites,
        transformations=transformations,
        replicas=replicas,
        site=args.site,
        options=options,
        planned=planned,
    )
    print(report.to_json() if args.json else render_report(report))
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
