"""Structured lint output: severities, findings, and the report.

A :class:`Finding` is one diagnosed problem — rule id, severity, a
location string (``job:x``, ``file:y``, ``edge:a->b``, ``site:osg``,
``platform:osg``, ``workflow``), a human message, and an optional fix
hint. Each finding carries a stable :attr:`Finding.fingerprint` (rule +
location + message digest) used by the baseline/suppression layer
(:mod:`repro.lint.suppress`) and exported as a SARIF partial
fingerprint. A :class:`Report` aggregates the findings of one lint run
plus the rules that were skipped for lack of context (e.g. catalog
rules when no catalogs were given) or disabled by configuration, and
renders as text (mirroring ``wms.analyzer.render_analysis``), JSON, or
SARIF (:mod:`repro.lint.sarif`).

Suppressed findings stay in the report — hidden problems should remain
auditable — but they no longer affect :attr:`Report.ok` or the CLI
exit status.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from enum import Enum

__all__ = ["Severity", "Finding", "Report", "render_report"]


class Severity(Enum):
    """How bad a finding is.

    ERROR findings make the planner's preflight fail (``lint="error"``);
    WARNING marks configurations that run but waste cycles or risk
    retry exhaustion; INFO is stylistic.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def order(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Finding:
    """One diagnosed problem."""

    rule: str
    severity: Severity
    location: str
    message: str
    fix_hint: str = ""
    #: True when a baseline entry or a configured suppression matched;
    #: suppressed findings are reported but do not fail the run.
    suppressed: bool = False
    #: Why the finding is suppressed (``"baseline"`` or the matching
    #: suppression pattern); empty for active findings.
    suppressed_by: str = ""

    @property
    def fingerprint(self) -> str:
        """Stable identity for baselines and SARIF partialFingerprints.

        Derived from rule + location + message, so re-ordering the
        report or re-running the linter never changes it, while any
        change to what the rule says produces a fresh finding.
        """
        digest = hashlib.sha256(
            f"{self.rule}|{self.location}|{self.message}".encode()
        ).hexdigest()
        return digest[:16]

    def suppress(self, by: str) -> "Finding":
        """A copy of this finding marked suppressed."""
        return replace(self, suppressed=True, suppressed_by=by)

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "location": self.location,
            "message": self.message,
            "fix_hint": self.fix_hint,
            "fingerprint": self.fingerprint,
            "suppressed": self.suppressed,
            "suppressed_by": self.suppressed_by,
        }


@dataclass
class Report:
    """The result of linting one workflow."""

    workflow: str
    findings: list[Finding] = field(default_factory=list)
    #: rule ids that did not run because their required context
    #: (catalogs, site, planned DAG) was not provided
    skipped_rules: list[str] = field(default_factory=list)
    #: rule ids that ran (clean or not)
    checked_rules: list[str] = field(default_factory=list)
    #: rule ids turned off by the severity configuration
    disabled_rules: list[str] = field(default_factory=list)

    def active(self) -> list[Finding]:
        """Findings not silenced by a baseline or suppression."""
        return [f for f in self.findings if not f.suppressed]

    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    def errors(self) -> list[Finding]:
        return [f for f in self.active() if f.severity is Severity.ERROR]

    def warnings(self) -> list[Finding]:
        return [f for f in self.active() if f.severity is Severity.WARNING]

    def infos(self) -> list[Finding]:
        return [f for f in self.active() if f.severity is Severity.INFO]

    def by_rule(self, rule_id: str) -> list[Finding]:
        return [f for f in self.findings if f.rule == rule_id]

    @property
    def ok(self) -> bool:
        """True when no *active* ERROR findings (warnings and
        suppressed errors allowed)."""
        return not self.errors()

    @property
    def verdict(self) -> str:
        if not self.findings:
            return (
                f"clean ({len(self.checked_rules)} rules checked)"
            )
        verdict = (
            f"{len(self.errors())} error(s), {len(self.warnings())} "
            f"warning(s), {len(self.infos())} info"
        )
        hidden = len(self.suppressed())
        if hidden:
            verdict += f", {hidden} suppressed"
        return verdict

    def sort(self) -> None:
        """Severity-major ordering, then rule id, then location;
        suppressed findings sink below active ones."""
        self.findings.sort(
            key=lambda f: (
                f.suppressed,
                f.severity.order,
                f.rule,
                f.location,
                f.message,
            )
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "workflow": self.workflow,
            "verdict": self.verdict,
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.findings],
            "checked_rules": self.checked_rules,
            "skipped_rules": self.skipped_rules,
            "disabled_rules": self.disabled_rules,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)


def render_report(report: Report) -> str:
    """Human-readable lint output (the ``repro-lint`` text renderer)."""
    lines = [
        "************************************",
        f"* lint: {report.workflow}: {report.verdict}",
        "************************************",
    ]
    for f in report.findings:
        marker = "suppressed " if f.suppressed else ""
        lines.append(
            f"{marker}{f.severity.value.upper():7s} {f.rule}  "
            f"[{f.location}] {f.message}"
        )
        if f.fix_hint and not f.suppressed:
            lines.append(f"        hint: {f.fix_hint}")
    if report.skipped_rules:
        lines.append(
            "rules skipped (missing catalogs/site/plan context): "
            + ", ".join(report.skipped_rules)
        )
    if report.disabled_rules:
        lines.append(
            "rules disabled by configuration: "
            + ", ".join(report.disabled_rules)
        )
    return "\n".join(lines)
