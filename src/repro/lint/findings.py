"""Structured lint output: severities, findings, and the report.

A :class:`Finding` is one diagnosed problem — rule id, severity, a
location string (``job:x``, ``file:y``, ``edge:a->b``, ``site:osg``,
``workflow``), a human message, and an optional fix hint. A
:class:`Report` aggregates the findings of one lint run plus the rules
that were skipped for lack of context (e.g. catalog rules when no
catalogs were given), and renders as text (mirroring
``wms.analyzer.render_analysis``) or JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum

__all__ = ["Severity", "Finding", "Report", "render_report"]


class Severity(Enum):
    """How bad a finding is.

    ERROR findings make the planner's preflight fail (``lint="error"``);
    WARNING marks configurations that run but waste cycles or risk
    retry exhaustion; INFO is stylistic.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def order(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Finding:
    """One diagnosed problem."""

    rule: str
    severity: Severity
    location: str
    message: str
    fix_hint: str = ""

    def to_dict(self) -> dict[str, str]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "location": self.location,
            "message": self.message,
            "fix_hint": self.fix_hint,
        }


@dataclass
class Report:
    """The result of linting one workflow."""

    workflow: str
    findings: list[Finding] = field(default_factory=list)
    #: rule ids that did not run because their required context
    #: (catalogs, site, planned DAG) was not provided
    skipped_rules: list[str] = field(default_factory=list)
    #: rule ids that ran (clean or not)
    checked_rules: list[str] = field(default_factory=list)

    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    def infos(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.INFO]

    def by_rule(self, rule_id: str) -> list[Finding]:
        return [f for f in self.findings if f.rule == rule_id]

    @property
    def ok(self) -> bool:
        """True when no ERROR findings (warnings allowed)."""
        return not self.errors()

    @property
    def verdict(self) -> str:
        if not self.findings:
            return (
                f"clean ({len(self.checked_rules)} rules checked)"
            )
        return (
            f"{len(self.errors())} error(s), {len(self.warnings())} "
            f"warning(s), {len(self.infos())} info"
        )

    def sort(self) -> None:
        """Severity-major ordering, then rule id, then location."""
        self.findings.sort(
            key=lambda f: (f.severity.order, f.rule, f.location, f.message)
        )

    def to_json(self) -> str:
        return json.dumps(
            {
                "workflow": self.workflow,
                "verdict": self.verdict,
                "ok": self.ok,
                "findings": [f.to_dict() for f in self.findings],
                "checked_rules": self.checked_rules,
                "skipped_rules": self.skipped_rules,
            },
            indent=2,
        )


def render_report(report: Report) -> str:
    """Human-readable lint output (the ``repro-lint`` text renderer)."""
    lines = [
        "************************************",
        f"* lint: {report.workflow}: {report.verdict}",
        "************************************",
    ]
    for f in report.findings:
        lines.append(
            f"{f.severity.value.upper():7s} {f.rule}  [{f.location}] "
            f"{f.message}"
        )
        if f.fix_hint:
            lines.append(f"        hint: {f.fix_hint}")
    if report.skipped_rules:
        lines.append(
            "rules skipped (missing catalogs/site/plan context): "
            + ", ".join(report.skipped_rules)
        )
    return "\n".join(lines)
