"""Self-analysis: the observability taxonomy, enforced by AST.

The event bus is stringly-typed at its edges — a ``RunEvent`` built
with a mis-spelled kind, or an ``_emit`` helper handed a raw string,
publishes events no subscriber ever matches, and the bug is silent:
nothing crashes, a metric just quietly flatlines. This checker walks
the source tree and verifies that every event-publishing call site
names a registered :class:`~repro.observe.events.EventKind` member:

* ``RunEvent(<kind>, ...)`` constructions (which is what every
  ``bus.emit(...)`` wraps), and
* calls to ``emit``/``_emit`` methods whose first argument is the kind
  (the simulators' and scheduler's internal emit helpers).

The kind expression must be ``EventKind.<member>`` with a real member,
a conditional whose branches both are, or a local name assigned from
one. Dynamically computed kinds (parameters, comprehensions) pass —
the checker is deliberately conservative: it flags only provable
typos, never style.

It also audits the taxonomy's own documentation: every registered
``EventKind`` member must appear in the table in
``repro.observe.events``' module docstring, so adding a kind (the
``trace.*`` / ``anomaly.*`` families included) without documenting
what it means and what its ``detail`` carries fails CI.

Run as ``python -m repro.lint.selfcheck src/repro`` (CI does) —
exit 1 lists each offending ``file:line``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator

from repro.observe.events import EventKind

__all__ = ["check_source", "check_paths", "check_kind_docs", "main"]

#: Method names whose first argument is an event kind.
EMIT_NAMES = frozenset({"_emit", "emit"})


def _kind_problem(node: ast.expr, resolved: dict[str, ast.expr]) -> str | None:
    """Why ``node`` is not a valid EventKind expression (None = fine).

    ``resolved`` maps local names to their most recent assigned value
    expression, for the ``terminal = EventKind.A if ... else B`` idiom.
    """
    if isinstance(node, ast.Attribute):
        base = node.value
        if isinstance(base, ast.Name) and base.id == "EventKind":
            if node.attr not in EventKind.__members__:
                return (
                    f"EventKind.{node.attr} is not a registered event "
                    "kind"
                )
            return None
        return None  # e.g. self.kind / record.kind: not statically known
    if isinstance(node, ast.IfExp):
        return _kind_problem(node.body, resolved) or _kind_problem(
            node.orelse, resolved
        )
    if isinstance(node, ast.Constant):
        if isinstance(node.value, str):
            return (
                f"string literal {node.value!r} where an EventKind "
                "member is required"
            )
        return None
    if isinstance(node, ast.Name):
        assigned = resolved.get(node.id)
        if assigned is not None:
            return _kind_problem(assigned, resolved)
        return None  # parameter or non-trivial flow: assume fine
    return None


def _local_assignments(tree: ast.AST) -> dict[str, ast.expr]:
    """Simple ``name = <expr>`` bindings, last writer wins."""
    out: dict[str, ast.expr] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                out[target.id] = node.value
    return out


def _kind_argument(call: ast.Call) -> ast.expr | None:
    """The event-kind expression of an emit/RunEvent call, if present."""
    if call.args:
        first = call.args[0]
        return None if isinstance(first, ast.Starred) else first
    for kw in call.keywords:
        if kw.arg == "kind":
            return kw.value
    return None


def _emit_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == "RunEvent":
            yield node
        elif isinstance(func, ast.Attribute) and func.attr in EMIT_NAMES:
            first = _kind_argument(node)
            # bus.emit(RunEvent(...)) is covered by the RunEvent match;
            # only direct-kind helpers are checked here.
            if first is not None and not (
                isinstance(first, ast.Call)
                and isinstance(first.func, ast.Name)
                and first.func.id == "RunEvent"
            ):
                yield node


def check_source(source: str, path: str = "<string>") -> list[str]:
    """``file:line: problem`` strings for unregistered event kinds."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [f"{path}:{exc.lineno or 0}: cannot parse: {exc.msg}"]
    resolved = _local_assignments(tree)
    problems: list[str] = []
    for call in _emit_calls(tree):
        kind = _kind_argument(call)
        if kind is None:
            continue
        problem = _kind_problem(kind, resolved)
        if problem is not None:
            problems.append(f"{path}:{call.lineno}: {problem}")
    return problems


def check_paths(paths: list[str | Path]) -> list[str]:
    """Check every ``.py`` file under the given files/directories."""
    problems: list[str] = []
    for root in paths:
        root = Path(root)
        files = (
            sorted(root.rglob("*.py")) if root.is_dir() else [root]
        )
        for file in files:
            problems.extend(
                check_source(file.read_text(), str(file))
            )
    return problems


def check_kind_docs() -> list[str]:
    """Registered kinds missing from the taxonomy docstring table.

    :mod:`repro.observe.events` documents every kind in a table
    (``kind value`` → meaning + ``detail`` payload); a member whose
    value never appears there is an undocumented event family.
    """
    import repro.observe.events as events_module

    doc = events_module.__doc__ or ""
    return [
        f"repro/observe/events.py: EventKind.{member.name} "
        f"({member.value!r}) is not documented in the module "
        "docstring's taxonomy table"
        for member in EventKind
        if member.value not in doc
    ]


def main(argv: list[str] | None = None) -> int:
    """CI entry point: ``python -m repro.lint.selfcheck src/repro``."""
    args = argv if argv is not None else sys.argv[1:]
    if not args:
        print("usage: python -m repro.lint.selfcheck PATH...", file=sys.stderr)
        return 2
    problems = check_paths(list(args)) + check_kind_docs()
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print("selfcheck: every emit call site uses a registered EventKind")
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
