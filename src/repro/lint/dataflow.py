"""Dataflow/provenance pass: a fixpoint over the file-flow graph.

The DAX pass checks each job and file locally; this pass propagates
*availability* through the whole workflow. A file is available when the
replica catalog has it or a satisfiable job produces it; a job is
satisfiable when every input is available. Iterating to fixpoint
(standard forward dataflow, monotone over the powerset lattice) finds
the defects local rules cannot:

* **FLOW001** (error) — a job starved *transitively*: each of its
  direct inputs is nominally resolvable, but an upstream producer can
  never run. DAX002 flags the root missing file; FLOW001 names the
  downstream jobs doomed by it, which on a real run would sit idle in
  the queue forever.
* **FLOW002** (warning) — a dead output: a file a runnable job computes
  whose every consumer is starved, so the work is produced and then
  dropped on the floor.
* **FLOW003** (info) — a reuse candidate: every output of a job already
  has a replica; with ``enable_reuse`` the planner would prune it.
* **FLOW004** (warning) — an orphan island: the workflow splits into
  disconnected components, usually a generator bug (jobs that were
  meant to feed the main graph but reference the wrong LFNs).

The helpers (:func:`availability_fixpoint`, :func:`reachable_jobs`) are
exported for the property tests, which cross-check the fixpoint against
a naive BFS reachability oracle on randomly generated workflows.
"""

from __future__ import annotations

from typing import Iterator

from repro.dagman.dag import CycleError
from repro.lint.dax_rules import workflow_order
from repro.lint.findings import Finding, Severity
from repro.lint.registry import LintContext, finding, rule

__all__ = ["availability_fixpoint", "reachable_jobs", "components"]


def availability_fixpoint(
    ctx: LintContext,
) -> tuple[set[str], set[str]]:
    """``(available_files, satisfiable_jobs)`` at fixpoint.

    Starts from replica-catalog files and zero-input jobs, then
    repeatedly marks jobs satisfiable once all their inputs are
    available and their outputs available in turn. Terminates because
    both sets only grow and are bounded.
    """
    assert ctx.replicas is not None
    available: set[str] = {
        lfn for lfn in ctx.consumers if ctx.replicas.has(lfn)
    }
    for lfn in ctx.producers:
        if ctx.replicas.has(lfn):
            available.add(lfn)
    satisfiable: set[str] = set()
    changed = True
    while changed:
        changed = False
        for job in ctx.adag.jobs.values():
            if job.id in satisfiable:
                continue
            if all(f.name in available for f in job.inputs()):
                satisfiable.add(job.id)
                for f in job.outputs():
                    if f.name not in available:
                        available.add(f.name)
                changed = True
    return available, satisfiable


def reachable_jobs(ctx: LintContext) -> set[str]:
    """Jobs whose every transitive input requirement is met (the
    fixpoint's satisfiable set) — the linter's provenance ground truth."""
    return availability_fixpoint(ctx)[1]


def components(ctx: LintContext) -> list[set[str]]:
    """Weakly-connected components of the job graph, largest first."""
    neighbours: dict[str, set[str]] = {j: set() for j in ctx.adag.jobs}
    for parent, kids in ctx.children.items():
        for child in kids:
            neighbours[parent].add(child)
            neighbours[child].add(parent)
    seen: set[str] = set()
    comps: list[set[str]] = []
    for start in ctx.adag.jobs:
        if start in seen:
            continue
        comp = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for other in neighbours[node]:
                if other not in comp:
                    comp.add(other)
                    frontier.append(other)
        seen |= comp
        comps.append(comp)
    comps.sort(key=lambda c: (-len(c), min(c)))
    return comps


def _acyclic(ctx: LintContext) -> bool:
    """FLOW starvation rules stand down on cyclic workflows: DAX001
    already owns that defect and every cycle member would be 'starved'."""
    try:
        workflow_order(ctx)
    except CycleError:
        return False
    return True


@rule(
    "FLOW001",
    Severity.ERROR,
    "job transitively starved by an upstream defect",
    requires=("replicas",),
)
def _transitively_starved(ctx: LintContext) -> Iterator[Finding]:
    assert ctx.replicas is not None
    if not _acyclic(ctx):
        return
    available, satisfiable = availability_fixpoint(ctx)
    for job in ctx.adag.jobs.values():
        if job.id in satisfiable:
            continue
        directly_missing = sorted(
            f.name
            for f in job.inputs()
            if f.name not in ctx.producers and not ctx.replicas.has(f.name)
        )
        if directly_missing:
            continue  # DAX002's case: the file itself is unresolvable
        starved_inputs = sorted(
            f.name for f in job.inputs() if f.name not in available
        )
        roots = sorted(
            {
                ctx.producers[lfn]
                for lfn in starved_inputs
                if lfn in ctx.producers
            }
        )
        yield finding(
            f"job:{job.id}",
            f"job {job.id!r} can never become ready: input(s) "
            f"{', '.join(repr(f) for f in starved_inputs[:3])} are "
            f"produced only by starved job(s) "
            f"{', '.join(repr(r) for r in roots[:3])}; the root cause "
            "is upstream (see the DAX002 finding for the missing file)",
            "fix the upstream job's missing input; this job unblocks "
            "transitively",
        )


@rule(
    "FLOW002",
    Severity.WARNING,
    "output produced but never usable",
    requires=("replicas",),
)
def _dead_output(ctx: LintContext) -> Iterator[Finding]:
    assert ctx.replicas is not None
    if not _acyclic(ctx):
        return
    _available, satisfiable = availability_fixpoint(ctx)
    for lfn in sorted(ctx.consumers):
        producer = ctx.producers.get(lfn)
        if producer is None or producer not in satisfiable:
            continue  # unproduced (DAX002) or producer itself starved
        consumers = ctx.consumers[lfn]
        if all(c not in satisfiable for c in consumers):
            yield finding(
                f"file:{lfn}",
                f"file {lfn!r} is computed by runnable job "
                f"{producer!r} but every consumer "
                f"({', '.join(repr(c) for c in consumers[:3])}) is "
                "starved: the work is done and then discarded",
                "fix the starved consumers or drop the producer",
            )


@rule(
    "FLOW003",
    Severity.INFO,
    "job recomputes outputs that already have replicas",
    requires=("replicas",),
)
def _reuse_candidate(ctx: LintContext) -> Iterator[Finding]:
    assert ctx.replicas is not None
    if ctx.options is not None and ctx.options.enable_reuse:
        return  # the planner prunes these itself
    for job in ctx.adag.jobs.values():
        outputs = job.outputs()
        if outputs and all(ctx.replicas.has(f.name) for f in outputs):
            yield finding(
                f"job:{job.id}",
                f"every output of job {job.id!r} "
                f"({', '.join(repr(f.name) for f in outputs[:3])}) "
                "already has a replica; the job recomputes existing "
                "data",
                "plan with PlannerOptions(enable_reuse=True) to stage "
                "the existing replicas instead",
            )


@rule(
    "FLOW004",
    Severity.WARNING,
    "workflow splits into disconnected islands",
)
def _orphan_island(ctx: LintContext) -> Iterator[Finding]:
    comps = components(ctx)
    if len(comps) < 2 or len(comps[0]) < 2:
        return  # singleton scatter (e.g. a bag of independent tasks)
    for comp in comps[1:]:
        members = sorted(comp)
        shown = ", ".join(repr(m) for m in members[:3])
        if len(members) > 3:
            shown += f" (+{len(members) - 3} more)"
        yield finding(
            f"job:{members[0]}",
            f"job(s) {shown} form an island disconnected from the main "
            f"workflow ({len(comps[0])} jobs): no file or edge links "
            "them, which usually means a mis-spelled LFN",
            "connect the island via file flow or split it into its own "
            "workflow",
        )
