"""``repro.lint`` — pre-flight static analysis for workflows.

A rule-based linter that catches, *before submission*, the failure
modes the paper hit at runtime on OSG: unsatisfiable software
requirements, inputs that can never be staged, write-write conflicts,
retry budgets that cannot survive preemption, and clustering that
serializes the critical path. Three passes:

* **DAX pass** (``DAX0xx``) — structural rules over the abstract
  workflow: cycles, orphaned inputs, write-write conflicts, dead jobs,
  size disagreements;
* **catalog/site pass** (``CAT0xx``) — the workflow against the
  replica/transformation/site catalogs: unresolvable transformations,
  statically unsatisfiable ClassAd requirements, replicas at unknown
  sites;
* **planned-DAG pass** (``PLAN0xx``) — the planner's executable output:
  needless setup steps, zero retries on preemptible sites, clustering
  regressions, priority inversions.

Usage::

    from repro.lint import lint, render_report
    report = lint(adag, sites=sites, transformations=tc,
                  replicas=rc, site="osg")
    if not report.ok:
        print(render_report(report))

The planner runs this automatically (``PlannerOptions.lint``), and the
``repro-lint`` console script wraps it for the command line.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.lint.findings import Finding, Report, Severity, render_report
from repro.lint.registry import (
    LintContext,
    Rule,
    registered_rules,
    rule,
)

# Importing the rule modules registers their rules.
from repro.lint import catalog_rules as _catalog_rules  # noqa: E402,F401
from repro.lint import dax_rules as _dax_rules  # noqa: E402,F401
from repro.lint import plan_rules as _plan_rules  # noqa: E402,F401

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.wms.catalogs import (
        ReplicaCatalog,
        SiteCatalog,
        SiteEntry,
        TransformationCatalog,
    )
    from repro.wms.dax import ADag
    from repro.wms.planner import PlannedWorkflow, PlannerOptions

__all__ = [
    "Severity",
    "Finding",
    "Report",
    "Rule",
    "LintContext",
    "lint",
    "rule",
    "registered_rules",
    "render_report",
]


def lint(
    adag: "ADag",
    *,
    sites: "SiteCatalog | None" = None,
    transformations: "TransformationCatalog | None" = None,
    replicas: "ReplicaCatalog | None" = None,
    site: "str | SiteEntry | None" = None,
    options: "PlannerOptions | None" = None,
    planned: "PlannedWorkflow | None" = None,
) -> Report:
    """Run every applicable rule against ``adag`` and its context.

    Only ``adag`` is required; rules whose context (catalogs, target
    site, planned DAG) is missing are skipped and listed in
    ``Report.skipped_rules``. ``site`` may be a name (looked up in
    ``sites``) or a :class:`~repro.wms.catalogs.SiteEntry` directly.
    The linter never raises on workflow defects — broken workflows are
    exactly its subject matter.
    """
    requested_site: str | None = None
    site_entry: "SiteEntry | None" = None
    if isinstance(site, str):
        requested_site = site
        if sites is not None and site in sites:
            site_entry = sites.lookup(site)
    elif site is not None:
        site_entry = site

    ctx = LintContext(
        adag=adag,
        sites=sites,
        transformations=transformations,
        replicas=replicas,
        site=site_entry,
        options=options,
        planned=planned,
        requested_site=requested_site,
    )
    report = Report(workflow=adag.name)
    for r in registered_rules():
        if not r.applicable(ctx):
            report.skipped_rules.append(r.id)
            continue
        report.checked_rules.append(r.id)
        report.findings.extend(r.run(ctx))
    report.sort()
    return report
