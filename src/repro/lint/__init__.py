"""``repro.lint`` — whole-workflow static analysis.

A rule-based analysis framework that catches, *before submission*, the
failure modes the paper hit at runtime on OSG: unsatisfiable software
requirements, inputs that can never be staged, write-write conflicts,
retry budgets that cannot survive preemption, and clustering that
serializes the critical path. Six passes:

* **DAX pass** (``DAX0xx``) — structural rules over the abstract
  workflow: cycles, orphaned inputs, write-write conflicts, dead jobs,
  size disagreements;
* **dataflow/provenance pass** (``FLOW0xx``) — a fixpoint over the
  file-flow graph: transitively starved jobs, dead outputs, reuse
  candidates, disconnected islands (:mod:`repro.lint.dataflow`);
* **catalog/site pass** (``CAT0xx``) — the workflow against the
  replica/transformation/site catalogs: unresolvable transformations,
  statically unsatisfiable ClassAd requirements, replicas at unknown
  sites;
* **planned-DAG pass** (``PLAN0xx``) — the planner's executable output:
  needless setup steps, zero retries on preemptible sites, clustering
  regressions, priority inversions;
* **resource-feasibility pass** (``RES0xx``) — symbolic matchmaking
  against :class:`~repro.lint.feasibility.SitePool` descriptors derived
  from the simulator configs: never-matchable jobs, pool
  oversubscription, provably insufficient retry budgets and timeouts
  (:mod:`repro.lint.feasibility`);
* **determinism audit** (``DET0xx``) — opt-in trace-replay under
  perturbed hash seeds and RNG conditions
  (:mod:`repro.lint.determinism`).

Findings support severity overrides, glob suppressions, and
fingerprint baselines (:mod:`repro.lint.suppress`), SARIF 2.1.0 export
(:mod:`repro.lint.sarif`), and autofixes for mechanical rules
(:mod:`repro.lint.fix`). Usage::

    from repro.lint import lint, render_report
    report = lint(adag, sites=sites, transformations=tc,
                  replicas=rc, site="osg")
    if not report.ok:
        print(render_report(report))

The planner runs this automatically (``PlannerOptions.lint``), and the
``repro-lint`` console script wraps it for the command line.
"""

from __future__ import annotations

from dataclasses import replace as _replace
from typing import TYPE_CHECKING, Mapping

from repro.lint.findings import Finding, Report, Severity, render_report
from repro.lint.registry import (
    LintContext,
    Rule,
    registered_rules,
    rule,
)

# Importing the rule modules registers their rules.
from repro.lint import catalog_rules as _catalog_rules  # noqa: E402,F401
from repro.lint import dataflow as _dataflow  # noqa: E402,F401
from repro.lint import dax_rules as _dax_rules  # noqa: E402,F401
from repro.lint import determinism as _determinism  # noqa: E402,F401
from repro.lint import feasibility as _feasibility  # noqa: E402,F401
from repro.lint import plan_rules as _plan_rules  # noqa: E402,F401

from repro.lint.determinism import DeterminismOptions
from repro.lint.feasibility import SitePool, default_pools
from repro.lint.suppress import LintConfig, apply_baseline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.wms.catalogs import (
        ReplicaCatalog,
        SiteCatalog,
        SiteEntry,
        TransformationCatalog,
    )
    from repro.wms.dax import ADag
    from repro.wms.planner import PlannedWorkflow, PlannerOptions

__all__ = [
    "Severity",
    "Finding",
    "Report",
    "Rule",
    "LintContext",
    "LintConfig",
    "SitePool",
    "DeterminismOptions",
    "lint",
    "rule",
    "registered_rules",
    "render_report",
    "default_pools",
]


def lint(
    adag: "ADag",
    *,
    sites: "SiteCatalog | None" = None,
    transformations: "TransformationCatalog | None" = None,
    replicas: "ReplicaCatalog | None" = None,
    site: "str | SiteEntry | None" = None,
    options: "PlannerOptions | None" = None,
    planned: "PlannedWorkflow | None" = None,
    pools: "Mapping[str, SitePool] | None" = None,
    determinism: "DeterminismOptions | None" = None,
    journal: bool | None = None,
    config: "LintConfig | None" = None,
    baseline: "frozenset[str] | None" = None,
) -> Report:
    """Run every applicable rule against ``adag`` and its context.

    Only ``adag`` is required; rules whose context (catalogs, target
    site, planned DAG) is missing are skipped and listed in
    ``Report.skipped_rules``. ``site`` may be a name (looked up in
    ``sites``) or a :class:`~repro.wms.catalogs.SiteEntry` directly.

    ``pools`` overrides the resource descriptors the feasibility pass
    matches against; by default they are derived from the simulator
    configurations whenever a site catalog is given. ``determinism``
    opts in to the (simulation-replaying) determinism audit.
    ``journal`` tells the durability rule (PLAN006) whether the run
    will keep a write-ahead journal: ``False`` arms the rule, ``True``
    satisfies it, ``None`` (default) skips it.
    ``config`` remaps severities and declares suppressions;
    ``baseline`` suppresses previously recorded finding fingerprints.
    Suppressed findings stay in the report but do not affect
    ``Report.ok``. The linter never raises on workflow defects —
    broken workflows are exactly its subject matter.
    """
    requested_site: str | None = None
    site_entry: "SiteEntry | None" = None
    if isinstance(site, str):
        requested_site = site
        if sites is not None and site in sites:
            site_entry = sites.lookup(site)
    elif site is not None:
        site_entry = site

    if pools is None and sites is not None:
        pools = default_pools(sites)

    ctx = LintContext(
        adag=adag,
        sites=sites,
        transformations=transformations,
        replicas=replicas,
        site=site_entry,
        options=options,
        planned=planned,
        requested_site=requested_site,
        pools=dict(pools) if pools is not None else None,
        determinism=determinism,
        journal=journal,
    )
    report = Report(workflow=adag.name)
    for r in registered_rules():
        if config is not None and config.disabled(r.id):
            report.disabled_rules.append(r.id)
            continue
        if not r.applicable(ctx):
            report.skipped_rules.append(r.id)
            continue
        report.checked_rules.append(r.id)
        for found in r.run(ctx):
            if config is not None:
                severity = config.effective_severity(r.id, found.severity)
                if severity is not found.severity:
                    found = _replace(found, severity=severity)
                matched = config.suppression_for(found)
                if matched is not None:
                    found = found.suppress(matched)
            report.findings.append(found)
    if baseline:
        apply_baseline(report, baseline)
    report.sort()
    return report
