"""Determinism audit: scheduler reproducibility as a checked invariant.

PR 3 made the scheduler iterate children in sorted order specifically
so event traces do not depend on ``PYTHONHASHSEED``; this module turns
that property — same seed, same platform, *bit-identical event trace*
— from a hope into a replayable proof. The audit runs a small paper
workflow on the simulators and compares event-trace fingerprints
across perturbations that must not matter:

* ``repeat`` — the same run twice in one process (catches leaked
  mutable global state between runs);
* ``global-random`` — the run with the *global* ``random`` module
  seeded differently beforehand (catches code drawing from the shared
  generator instead of its :class:`~repro.sim.rng.RngStreams` stream);
* ``decoy-streams`` — the run after deriving and draining unrelated
  RNG streams from an equal-seed :class:`RngStreams` (catches
  stream-derivation order dependence — streams are keyed by name
  hash, so creating extras must not shift existing streams);
* ``hash-seed`` — the run re-executed in a subprocess under different
  ``PYTHONHASHSEED`` values (set/dict iteration-order hazards; a hash
  seed cannot change inside a running interpreter, hence the
  subprocess).

A trace fingerprint hashes the ``(kind, time, job_name, attempt)``
signature of every event, so *any* reordering or timing shift
diverges. Rule ``DET001`` exposes the audit to ``lint()`` behind the
opt-in ``determinism=`` context (it replays simulations, so it is not
part of the always-on static passes); ``python -m
repro.lint.determinism`` is the CI smoke entry point.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import random
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Sequence

from repro.lint.findings import Finding, Severity
from repro.lint.registry import LintContext, finding, rule

__all__ = [
    "DeterminismOptions",
    "Divergence",
    "trace_fingerprint",
    "run_fingerprint",
    "audit_determinism",
    "main",
]

#: In-process perturbations the audit applies by default.
DEFAULT_PERTURBATIONS = ("repeat", "global-random", "decoy-streams")


@dataclass(frozen=True)
class DeterminismOptions:
    """What the audit replays and how it perturbs the replay."""

    n: int = 6
    platforms: tuple[str, ...] = ("sandhills", "osg")
    seed: int = 7
    perturbations: tuple[str, ...] = DEFAULT_PERTURBATIONS
    #: ``PYTHONHASHSEED`` values re-run in subprocesses; empty = skip
    #: the (slow) subprocess leg.
    hash_seeds: tuple[int, ...] = ()
    #: Test seam: replaces the real simulation. Called as
    #: ``runner(platform, perturbation, options)`` and must return a
    #: fingerprint string.
    runner: "Callable[[str, str, DeterminismOptions], str] | None" = field(
        default=None, compare=False
    )


@dataclass(frozen=True)
class Divergence:
    """One reproducibility violation found by the audit."""

    platform: str
    perturbation: str
    baseline: str
    perturbed: str

    def describe(self) -> str:
        return (
            f"platform {self.platform!r}: event trace under "
            f"{self.perturbation!r} diverged from baseline "
            f"(fingerprint {self.perturbed[:12]} != "
            f"{self.baseline[:12]})"
        )


def trace_fingerprint(events: Sequence[object]) -> str:
    """A stable digest of an event trace's observable shape."""
    signature = [
        (
            getattr(e, "kind").value,
            round(float(getattr(e, "time")), 9),
            getattr(e, "job_name", None),
            getattr(e, "attempt", None),
        )
        for e in events
    ]
    blob = json.dumps(signature, separators=(",", ":")).encode()
    return hashlib.sha256(blob).hexdigest()


def run_fingerprint(
    platform: str, *, n: int = 6, seed: int = 7
) -> str:
    """Fingerprint of one simulated paper run's full event stream."""
    from repro.core.workflow_factory import simulate_paper_run
    from repro.observe.bus import EventBus, EventRecorder

    bus = EventBus()
    recorder = EventRecorder(bus)
    simulate_paper_run(n, platform, seed=seed, bus=bus)
    return trace_fingerprint(recorder.events)


def _perturbed_fingerprint(
    platform: str, perturbation: str, opts: DeterminismOptions
) -> str:
    if opts.runner is not None:
        return opts.runner(platform, perturbation, opts)
    if perturbation == "global-random":
        # Disturb the shared generator; simulator code must only draw
        # from its own named streams.
        state = random.getstate()
        try:
            random.seed(0xBAD5EED)
            random.random()
            return run_fingerprint(platform, n=opts.n, seed=opts.seed)
        finally:
            random.setstate(state)
    if perturbation == "decoy-streams":
        from repro.sim.rng import RngStreams

        decoys = RngStreams(opts.seed)
        for name in ("decoy-a", "decoy-b", "decoy-c"):
            decoys.stream(name).random()
        return run_fingerprint(platform, n=opts.n, seed=opts.seed)
    # "repeat", "baseline", and unknown names: a straight re-run.
    return run_fingerprint(platform, n=opts.n, seed=opts.seed)


_CHILD_SNIPPET = (
    "from repro.lint.determinism import run_fingerprint;"
    "print(run_fingerprint({platform!r}, n={n}, seed={seed}))"
)


def _hash_seed_fingerprint(
    platform: str, hash_seed: int, opts: DeterminismOptions
) -> str:
    """Fingerprint from a subprocess pinned to one ``PYTHONHASHSEED``."""
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    src_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root + os.pathsep + existing if existing else src_root
    )
    code = _CHILD_SNIPPET.format(
        platform=platform, n=opts.n, seed=opts.seed
    )
    out = subprocess.run(
        [sys.executable, "-c", code],
        env=env,
        capture_output=True,
        text=True,
        check=True,
        timeout=600,
    )
    return out.stdout.strip()


def audit_determinism(opts: DeterminismOptions) -> list[Divergence]:
    """Replay under every perturbation; empty list = reproducible."""
    divergences: list[Divergence] = []
    for platform in opts.platforms:
        if opts.runner is not None:
            baseline = opts.runner(platform, "baseline", opts)
        else:
            baseline = run_fingerprint(
                platform, n=opts.n, seed=opts.seed
            )
        for perturbation in opts.perturbations:
            perturbed = _perturbed_fingerprint(platform, perturbation, opts)
            if perturbed != baseline:
                divergences.append(
                    Divergence(platform, perturbation, baseline, perturbed)
                )
        for hash_seed in opts.hash_seeds:
            perturbed = _hash_seed_fingerprint(platform, hash_seed, opts)
            if perturbed != baseline:
                divergences.append(
                    Divergence(
                        platform,
                        f"hash-seed:{hash_seed}",
                        baseline,
                        perturbed,
                    )
                )
    return divergences


@rule(
    "DET001",
    Severity.ERROR,
    "simulation event trace is not reproducible",
    requires=("determinism",),
)
def _nondeterministic_trace(ctx: LintContext) -> Iterator[Finding]:
    assert ctx.determinism is not None
    for div in audit_determinism(ctx.determinism):
        yield finding(
            f"platform:{div.platform}",
            div.describe(),
            "find the order-dependent iteration or shared-RNG draw; "
            "sort before iterating sets/dicts and draw only from named "
            "RngStreams",
        )


def main(argv: list[str] | None = None) -> int:
    """CI smoke entry point: ``python -m repro.lint.determinism``."""
    parser = argparse.ArgumentParser(
        prog="repro-lint-determinism",
        description="Replay small simulations under perturbed "
        "PYTHONHASHSEED / RNG conditions and fail on trace divergence.",
    )
    parser.add_argument("-n", type=int, default=6)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--platforms", nargs="+", default=["sandhills", "osg"]
    )
    parser.add_argument(
        "--hash-seeds",
        nargs="*",
        type=int,
        default=[0, 1],
        help="PYTHONHASHSEED values for the subprocess leg "
        "(pass none to skip)",
    )
    args = parser.parse_args(argv)
    opts = DeterminismOptions(
        n=args.n,
        seed=args.seed,
        platforms=tuple(args.platforms),
        hash_seeds=tuple(args.hash_seeds),
    )
    divergences = audit_determinism(opts)
    for div in divergences:
        print(div.describe(), file=sys.stderr)
    if not divergences:
        legs = len(opts.platforms) * (
            len(opts.perturbations) + len(opts.hash_seeds)
        )
        print(
            f"determinism audit: {legs} replay(s) reproduced the "
            "baseline trace bit-for-bit"
        )
    return 1 if divergences else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
