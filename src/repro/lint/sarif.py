"""SARIF 2.1.0 export for lint reports.

SARIF (Static Analysis Results Interchange Format) is the OASIS
standard CI systems ingest for code-scanning annotations; emitting it
lets ``repro-lint`` findings land in the same review surfaces as any
other analyzer. One :class:`~repro.lint.findings.Report` maps to one
``run``:

* every registered rule becomes a ``tool.driver.rules`` entry (id,
  title, default level), so consumers can render rule metadata even
  for rules that did not fire;
* every finding becomes a ``result`` with ``ruleId``, ``level``
  (``error``/``warning``/``note``), the finding's location as a SARIF
  *logical location* (workflows have no file/line, they have
  ``job:x`` / ``file:y`` coordinates), and the finding fingerprint as
  a ``partialFingerprints`` entry for cross-run matching;
* suppressed findings carry a ``suppressions`` list, which compliant
  viewers hide by default — mirroring the exit-code semantics.

:func:`validate_sarif` is a self-contained structural validator (the
schema subset this module can produce) used by the tests and available
to callers; it avoids a runtime dependency on a JSON-Schema engine.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.lint.findings import Report, Severity
from repro.lint.registry import registered_rules

__all__ = ["report_to_sarif", "sarif_json", "validate_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVEL = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def report_to_sarif(
    report: Report, *, artifact: str | None = None
) -> dict[str, Any]:
    """``report`` as a SARIF 2.1.0 document (a plain dict).

    ``artifact`` optionally names the analyzed input (a DAX path) as
    the run's artifact location.
    """
    rules = registered_rules()
    rule_index = {r.id: i for i, r in enumerate(rules)}
    driver: dict[str, Any] = {
        "name": "repro-lint",
        "informationUri": (
            "https://example.org/repro/docs/ARCHITECTURE.md"
        ),
        "rules": [
            {
                "id": r.id,
                "name": r.title.title().replace(" ", ""),
                "shortDescription": {"text": r.title},
                "defaultConfiguration": {"level": _LEVEL[r.severity]},
            }
            for r in rules
        ],
    }
    results: list[dict[str, Any]] = []
    for f in report.findings:
        message = f.message
        if f.fix_hint:
            message += f" Hint: {f.fix_hint}"
        result: dict[str, Any] = {
            "ruleId": f.rule,
            "level": _LEVEL[f.severity],
            "message": {"text": message},
            "locations": [
                {
                    "logicalLocations": [
                        {
                            "fullyQualifiedName": f.location,
                            "kind": f.location.split(":", 1)[0]
                            if ":" in f.location
                            else "module",
                        }
                    ]
                }
            ],
            "partialFingerprints": {"reproLint/v1": f.fingerprint},
        }
        if f.rule in rule_index:
            result["ruleIndex"] = rule_index[f.rule]
        if f.suppressed:
            result["suppressions"] = [
                {
                    "kind": "external",
                    "justification": f.suppressed_by,
                }
            ]
        results.append(result)
    run: dict[str, Any] = {
        "tool": {"driver": driver},
        "results": results,
        "properties": {
            "workflow": report.workflow,
            "verdict": report.verdict,
            "checkedRules": report.checked_rules,
            "skippedRules": report.skipped_rules,
            "disabledRules": report.disabled_rules,
        },
    }
    if artifact is not None:
        run["artifacts"] = [{"location": {"uri": artifact}}]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [run],
    }


def sarif_json(report: Report, *, artifact: str | None = None) -> str:
    return json.dumps(
        report_to_sarif(report, artifact=artifact), indent=2
    )


# -- structural validation ------------------------------------------------

_VALID_LEVELS = frozenset({"none", "note", "warning", "error"})


def validate_sarif(doc: Mapping[str, Any]) -> list[str]:
    """Structural errors in ``doc`` against the SARIF 2.1.0 subset this
    module emits; empty list = valid. Deliberately dependency-free."""
    errors: list[str] = []
    if doc.get("version") != SARIF_VERSION:
        errors.append(
            f"version must be {SARIF_VERSION!r}, got "
            f"{doc.get('version')!r}"
        )
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        return errors + ["runs must be a non-empty list"]
    for ri, run in enumerate(runs):
        where = f"runs[{ri}]"
        driver = run.get("tool", {}).get("driver")
        if not isinstance(driver, dict) or not driver.get("name"):
            errors.append(f"{where}.tool.driver.name is required")
            driver = {}
        rule_ids = set()
        for di, rule in enumerate(driver.get("rules", [])):
            if not rule.get("id"):
                errors.append(
                    f"{where}.tool.driver.rules[{di}].id is required"
                )
            else:
                rule_ids.add(rule["id"])
            level = rule.get("defaultConfiguration", {}).get("level")
            if level is not None and level not in _VALID_LEVELS:
                errors.append(
                    f"{where}.tool.driver.rules[{di}] bad level "
                    f"{level!r}"
                )
        results = run.get("results")
        if not isinstance(results, list):
            errors.append(f"{where}.results must be a list")
            continue
        for i, result in enumerate(results):
            rwhere = f"{where}.results[{i}]"
            if not isinstance(
                result.get("message", {}).get("text"), str
            ):
                errors.append(f"{rwhere}.message.text is required")
            level = result.get("level")
            if level is not None and level not in _VALID_LEVELS:
                errors.append(f"{rwhere} bad level {level!r}")
            rule_id = result.get("ruleId")
            if rule_id and rule_ids and rule_id not in rule_ids:
                errors.append(
                    f"{rwhere}.ruleId {rule_id!r} not declared in "
                    "tool.driver.rules"
                )
            index = result.get("ruleIndex")
            if index is not None and not (
                isinstance(index, int)
                and 0 <= index < len(driver.get("rules", []))
            ):
                errors.append(f"{rwhere} ruleIndex out of range")
            for li, loc in enumerate(result.get("locations", [])):
                logical = loc.get("logicalLocations", [])
                physical = loc.get("physicalLocation")
                if not logical and not physical:
                    errors.append(
                        f"{rwhere}.locations[{li}] needs a logical or "
                        "physical location"
                    )
            for si, sup in enumerate(result.get("suppressions", [])):
                if sup.get("kind") not in (
                    "inSource",
                    "external",
                ):
                    errors.append(
                        f"{rwhere}.suppressions[{si}] bad kind "
                        f"{sup.get('kind')!r}"
                    )
    return errors
