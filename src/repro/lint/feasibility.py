"""Resource-feasibility pass: can the pools actually run this plan?

The catalog pass (CAT002) checks requirements against what a site
*guarantees*; this pass checks them against what a site can *possibly*
provide. A :class:`SitePool` is a static descriptor of one execution
pool — slot count, speed range, which software attributes at least one
slot may advertise, and the site's failure model — derived from the
same simulator configurations that later execute the plan
(:class:`~repro.sim.cluster.CampusClusterConfig`,
:class:`~repro.sim.grid.GridConfig`,
:class:`~repro.sim.cloud.CloudConfig`), so the linter and the
simulators cannot drift apart.

Four rules:

* **RES001** (error) — a job's ClassAd requirements match no machine in
  *any* pool, even under the most optimistic assignment of attributes;
  the finding names the job and the closest missing capability (the
  single attribute that, if provided, would make the job matchable).
  On the real OSG such a job idles for the unmatched timeout and fails.
* **RES002** (warning) — the workflow's peak parallelism exceeds the
  target pool's slot count: the widest wave executes in serial waves.
* **RES003** (warning) — under the pool's failure model (Bernoulli
  dead-on-arrival + exponential eviction, PR 3), the probability that a
  job exhausts its whole retry budget is above threshold; the finding
  proves the budget insufficient and states the needed one.
* **RES004** (error) — a job's timeout is below its runtime on the
  *fastest* modeled slot: every attempt is provably killed.

Pools can be overridden (``lint(pools=...)``) or doctored from a JSON
file (``repro-lint --pools doctored.json``) to ask "what if the pool
had no CAP3?" without touching the simulators.
"""

from __future__ import annotations

import ast
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator, Mapping

from repro.dagman.condor import ClassAd, evaluate_requirements
from repro.lint.findings import Finding, Severity
from repro.lint.registry import LintContext, finding, rule
from repro.sim.failures import NO_FAILURES, FailureModel
from repro.sim.machine import SOFTWARE_ATTRS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dagman.dag import Dag
    from repro.wms.catalogs import SiteCatalog, SiteEntry

__all__ = [
    "SitePool",
    "default_pools",
    "pools_from_mapping",
    "never_matchable",
    "closest_missing_capability",
    "attempt_failure_probability",
    "retry_exhaustion_probability",
]

#: A job whose probability of exhausting every retry exceeds this is
#: flagged by RES003.
EXHAUSTION_THRESHOLD = 0.01


@dataclass(frozen=True)
class SitePool:
    """Static description of one execution pool for feasibility proofs."""

    site: str
    #: concurrent slots; None = elastic/unknown (RES002 stays quiet)
    slots: int | None
    speed_min: float
    speed_max: float
    #: software attributes at least one slot may advertise True
    software: tuple[str, ...]
    failures: FailureModel = NO_FAILURES
    #: where the descriptor came from ("simulator", "synthesized", "override")
    source: str = "simulator"

    def __post_init__(self) -> None:
        if self.speed_min <= 0 or self.speed_max < self.speed_min:
            raise ValueError("need 0 < speed_min <= speed_max")
        if self.slots is not None and self.slots < 1:
            raise ValueError("slots must be >= 1 (or None)")

    def optimistic_ad(self) -> ClassAd:
        """The best machine this pool could possibly offer: top speed,
        every possibly-available software attribute present."""
        attrs: dict[str, object] = {
            "site": self.site,
            "speed": self.speed_max,
        }
        for attr in SOFTWARE_ATTRS:
            attrs[attr] = attr in self.software
        for attr in self.software:
            attrs.setdefault(attr, True)
        return ClassAd(name=f"{self.site}-optimistic", attributes=attrs)


def default_pools(
    sites: "SiteCatalog | None" = None,
) -> dict[str, SitePool]:
    """Pools for the modeled platforms, from the simulator configs.

    Unknown sites in ``sites`` get a synthesized fail-open descriptor
    (all software possible, unbounded slots) so feasibility errors are
    only raised about pools we actually model.
    """
    from repro.sim.cloud import CloudConfig
    from repro.sim.cluster import CampusClusterConfig
    from repro.sim.grid import GridConfig

    campus = CampusClusterConfig()
    pools: dict[str, SitePool] = {
        campus.name: SitePool(
            site=campus.name,
            slots=campus.group_slots,
            speed_min=campus.speed_mean * (1 - campus.speed_spread),
            speed_max=campus.speed_mean * (1 + campus.speed_spread),
            software=SOFTWARE_ATTRS,
            failures=NO_FAILURES,
        )
    }
    grid = GridConfig().with_sites()
    pools[grid.name] = SitePool(
        site=grid.name,
        slots=sum(s.slots for s in grid.sites),
        speed_min=min(
            s.speed_mean * (1 - s.speed_spread) for s in grid.sites
        ),
        speed_max=max(
            s.speed_mean * (1 + s.speed_spread) for s in grid.sites
        ),
        software=tuple(
            attr
            for attr in SOFTWARE_ATTRS
            if any(s.software_prob > 0 for s in grid.sites)
        ),
        failures=grid.failures,
    )
    cloud = CloudConfig()
    pools[cloud.name] = SitePool(
        site=cloud.name,
        slots=cloud.max_instances,
        speed_min=cloud.instance_type.speed,
        speed_max=cloud.instance_type.speed,
        software=SOFTWARE_ATTRS,  # baked into the machine image
        failures=cloud.failures,
    )
    pools["local"] = SitePool(
        site="local",
        slots=None,
        speed_min=1.0,
        speed_max=1.0,
        software=SOFTWARE_ATTRS,
        failures=NO_FAILURES,
    )
    if sites is not None:
        for _lfn_site in _site_entries(sites):
            if _lfn_site.name not in pools:
                pools[_lfn_site.name] = _synthesize(_lfn_site)
    return pools


def _site_entries(sites: "SiteCatalog") -> list["SiteEntry"]:
    return list(sites)


def _synthesize(site: "SiteEntry") -> SitePool:
    """Fail-open descriptor for a site with no simulator model."""
    from repro.sim.grid import GridConfig

    preemptible = not site.shared_filesystem and not site.software_preinstalled
    return SitePool(
        site=site.name,
        slots=None,
        speed_min=0.5,
        speed_max=2.0,
        software=SOFTWARE_ATTRS,
        failures=GridConfig().failures if preemptible else NO_FAILURES,
        source="synthesized",
    )


def pools_from_mapping(
    overrides: Mapping[str, Mapping[str, Any]],
    *,
    base: Mapping[str, SitePool] | None = None,
) -> dict[str, SitePool]:
    """Merge JSON-style pool overrides over the defaults.

    ``{"osg": {"software": ["has_python", "has_biopython"]}}`` doctors
    the OSG pool into one where no slot has CAP3; unspecified fields
    keep their default values. Failure models are overridden via
    ``start_failure_prob`` / ``eviction_rate_per_s`` keys.
    """
    pools = dict(base if base is not None else default_pools())
    for site, fields in overrides.items():
        old = pools.get(site)
        defaults: dict[str, Any] = (
            {
                "slots": old.slots,
                "speed_min": old.speed_min,
                "speed_max": old.speed_max,
                "software": old.software,
                "failures": old.failures,
            }
            if old is not None
            else {
                "slots": None,
                "speed_min": 1.0,
                "speed_max": 1.0,
                "software": SOFTWARE_ATTRS,
                "failures": NO_FAILURES,
            }
        )
        failures: FailureModel = defaults["failures"]
        if "start_failure_prob" in fields or "eviction_rate_per_s" in fields:
            failures = FailureModel(
                start_failure_prob=float(
                    fields.get(
                        "start_failure_prob", failures.start_failure_prob
                    )
                ),
                eviction_rate_per_s=float(
                    fields.get(
                        "eviction_rate_per_s", failures.eviction_rate_per_s
                    )
                ),
            )
        pools[site] = SitePool(
            site=site,
            slots=fields.get("slots", defaults["slots"]),
            speed_min=float(fields.get("speed_min", defaults["speed_min"])),
            speed_max=float(fields.get("speed_max", defaults["speed_max"])),
            software=tuple(fields.get("software", defaults["software"])),
            failures=failures,
            source="override",
        )
    return pools


# -- symbolic matching --------------------------------------------------


def _matches(expr: str, ad: ClassAd) -> bool:
    """``evaluate_requirements`` that fails closed on malformed
    expressions (an unparseable requirement matches nothing)."""
    try:
        return evaluate_requirements(expr, ad)
    except (SyntaxError, ValueError, TypeError):
        return False


def never_matchable(
    expr: str, pools: Mapping[str, SitePool]
) -> bool:
    """True when no pool's most optimistic machine satisfies ``expr``."""
    return not any(
        _matches(expr, pool.optimistic_ad()) for pool in pools.values()
    )


def _referenced_names(expr: str) -> list[str]:
    try:
        tree = ast.parse(expr, mode="eval")
    except SyntaxError:
        return []
    return sorted(
        {
            node.id
            for node in ast.walk(tree)
            if isinstance(node, ast.Name)
        }
    )


def closest_missing_capability(
    expr: str, pools: Mapping[str, SitePool]
) -> str | None:
    """The single attribute that would make ``expr`` matchable.

    Tries granting each referenced attribute (set True) on each pool's
    optimistic ad; the first grant that satisfies the expression is the
    closest missing capability. Returns None when no single grant
    suffices (the requirements are off by more than one capability).
    """
    for name in _referenced_names(expr):
        for pool in pools.values():
            ad = pool.optimistic_ad()
            granted = ClassAd(
                name=ad.name, attributes={**ad.attributes, name: True}
            )
            if _matches(expr, granted):
                return name
    return None


# -- failure-model arithmetic -------------------------------------------


def attempt_failure_probability(
    runtime_s: float, pool: SitePool
) -> float:
    """P(one attempt fails) on the pool's *slowest* slot: dead-on-arrival
    or evicted before the (speed-scaled) payload completes."""
    model = pool.failures
    if runtime_s <= 0:
        return model.start_failure_prob
    effective = runtime_s / pool.speed_min
    p_evict = 1.0 - math.exp(-model.eviction_rate_per_s * effective)
    return model.start_failure_prob + (
        1.0 - model.start_failure_prob
    ) * p_evict


def retry_exhaustion_probability(
    runtime_s: float, retries: int, pool: SitePool
) -> float:
    """P(all ``retries + 1`` attempts fail) for one job."""
    return attempt_failure_probability(runtime_s, pool) ** (retries + 1)


def _needed_retries(
    runtime_s: float, pool: SitePool, threshold: float
) -> int | None:
    """Smallest retry budget keeping exhaustion below ``threshold``."""
    p = attempt_failure_probability(runtime_s, pool)
    if p <= 0:
        return 0
    if p >= 1:
        return None
    attempts = math.ceil(math.log(threshold) / math.log(p))
    return max(0, attempts - 1)


def _dag_levels(dag: "Dag") -> dict[str, int]:
    level: dict[str, int] = {}
    for node in dag.topological_order():
        level[node] = 1 + max(
            (level[p] for p in dag.parents(node)), default=-1
        )
    return level


# -- rules ---------------------------------------------------------------


@rule(
    "RES001",
    Severity.ERROR,
    "requirements match no machine in any pool",
    requires=("planned", "pools"),
)
def _never_matchable_job(ctx: LintContext) -> Iterator[Finding]:
    assert ctx.planned is not None and ctx.pools is not None
    # With a known target site, only its pool can run the plan; the
    # cross-pool check is the fallback when the target is unspecified.
    pools = ctx.pools
    if ctx.site is not None and ctx.site.name in pools:
        pools = {ctx.site.name: pools[ctx.site.name]}
    by_expr: dict[str, list[str]] = {}
    for name in sorted(ctx.planned.dag.jobs):
        req = ctx.planned.dag.jobs[name].requirements
        if req and never_matchable(req, pools):
            by_expr.setdefault(req, []).append(name)
    pool_names = ", ".join(sorted(pools))
    for expr in sorted(by_expr):
        jobs = by_expr[expr]
        shown = ", ".join(repr(j) for j in jobs[:3])
        if len(jobs) > 3:
            shown += f" (+{len(jobs) - 3} more)"
        missing = closest_missing_capability(expr, pools)
        if missing is not None:
            detail = (
                f"closest missing capability: {missing!r} (no modeled "
                "slot can provide it)"
            )
        else:
            unmet = ", ".join(repr(n) for n in _referenced_names(expr))
            detail = f"no single capability grant helps (refers to {unmet})"
        yield finding(
            f"job:{jobs[0]}",
            f"requirements {expr!r} of job(s) {shown} match no machine "
            f"in any modeled pool (checked: {pool_names}); {detail}. "
            "On a real pool these jobs idle until the unmatched timeout "
            "and fail",
            "relax the requirements, extend the pool, or plan with "
            'setup_mode="auto" so jobs install their own software',
        )


@rule(
    "RES002",
    Severity.WARNING,
    "peak parallelism oversubscribes the pool",
    requires=("planned", "site", "pools"),
)
def _oversubscription(ctx: LintContext) -> Iterator[Finding]:
    assert (
        ctx.planned is not None
        and ctx.site is not None
        and ctx.pools is not None
    )
    pool = ctx.pools.get(ctx.site.name)
    if pool is None or pool.slots is None:
        return
    levels = _dag_levels(ctx.planned.dag)
    width: dict[int, int] = {}
    for lvl in levels.values():
        width[lvl] = width.get(lvl, 0) + 1
    peak = max(width.values(), default=0)
    if peak > pool.slots:
        waves = math.ceil(peak / pool.slots)
        yield finding(
            f"pool:{pool.site}",
            f"peak parallelism {peak} exceeds the {pool.slots} slots of "
            f"pool {pool.site!r}: the widest wave runs in {waves} "
            "serial waves, stretching the makespan accordingly",
            "reduce the partition count, enable horizontal clustering, "
            "or target a larger pool",
        )


@rule(
    "RES003",
    Severity.WARNING,
    "retry budget provably insufficient under the failure model",
    requires=("planned", "site", "pools"),
)
def _insufficient_retries(ctx: LintContext) -> Iterator[Finding]:
    assert (
        ctx.planned is not None
        and ctx.site is not None
        and ctx.pools is not None
    )
    pool = ctx.pools.get(ctx.site.name)
    if pool is None or pool.failures is NO_FAILURES:
        return
    if (
        pool.failures.start_failure_prob <= 0
        and pool.failures.eviction_rate_per_s <= 0
    ):
        return
    at_risk: list[tuple[float, str, int]] = []
    for name in sorted(set(ctx.planned.job_map.values())):
        job = ctx.planned.dag.jobs[name]
        if job.retries < 1:
            continue  # PLAN002's case: zero retries on a preemptible site
        p_exhaust = retry_exhaustion_probability(
            job.runtime, job.retries, pool
        )
        if p_exhaust > EXHAUSTION_THRESHOLD:
            at_risk.append((p_exhaust, name, job.retries))
    if not at_risk:
        return
    worst_p, worst_name, worst_retries = max(at_risk)
    worst_job = ctx.planned.dag.jobs[worst_name]
    needed = _needed_retries(
        worst_job.runtime, pool, EXHAUSTION_THRESHOLD
    )
    needed_txt = (
        f"retries={needed} would keep it below "
        f"{EXHAUSTION_THRESHOLD:.0%}"
        if needed is not None
        else "no retry budget suffices; shorten the job instead"
    )
    yield finding(
        f"pool:{pool.site}",
        f"{len(at_risk)} job(s) can exhaust their retry budget under "
        f"pool {pool.site!r}'s failure model: worst is {worst_name!r} "
        f"({worst_job.runtime:.0f}s, retries={worst_retries}) with a "
        f"{worst_p:.1%} chance that every attempt is lost to "
        f"preemption; {needed_txt}",
        "raise PlannerOptions(retries=...) or split long-running "
        "partitions so attempts fit between evictions",
    )


@rule(
    "RES004",
    Severity.ERROR,
    "timeout provably unfinishable on the pool",
    requires=("planned", "site", "pools"),
)
def _unfinishable_timeout(ctx: LintContext) -> Iterator[Finding]:
    assert (
        ctx.planned is not None
        and ctx.site is not None
        and ctx.pools is not None
    )
    pool = ctx.pools.get(ctx.site.name)
    if pool is None:
        return
    for name in sorted(ctx.planned.dag.jobs):
        job = ctx.planned.dag.jobs[name]
        if job.timeout_s is None or job.runtime <= 0:
            continue
        best_case = job.runtime / pool.speed_max
        if job.timeout_s < best_case:
            yield finding(
                f"job:{name}",
                f"job {name!r} has timeout_s={job.timeout_s:.0f} but "
                f"even pool {pool.site!r}'s fastest slot (speed "
                f"{pool.speed_max:.2f}) needs {best_case:.0f}s: every "
                "attempt is killed and the job can never finish",
                "raise PlannerOptions(timeout_s=...) above the job's "
                "best-case runtime",
            )
