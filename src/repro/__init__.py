"""repro — reproduction of Pavlovikj et al., IPDPSW 2014.

*A Comparison of a Campus Cluster and Open Science Grid Platforms for
Protein-Guided Assembly using Pegasus Workflow Management System.*

The most-used entry points, re-exported for convenience; see the
subpackages for the full APIs:

* :mod:`repro.core` — blast2cap3 and the workflow factory,
* :mod:`repro.wms` / :mod:`repro.dagman` — the workflow system,
* :mod:`repro.sim` — the platform simulators,
* :mod:`repro.bio` / :mod:`repro.blast` / :mod:`repro.cap3` — the
  bioinformatics substrates,
* :mod:`repro.datagen` / :mod:`repro.perfmodel` /
  :mod:`repro.experiments` — data, calibration and sweeps.
"""

__version__ = "1.0.0"

from repro.core.blast2cap3 import Blast2Cap3Result, blast2cap3_serial
from repro.core.workflow_factory import (
    build_blast2cap3_adag,
    run_local,
    simulate_paper_run,
    simulate_paper_run_with_recovery,
)
from repro.datagen.workload import generate_blast2cap3_workload
from repro.resilience import run_with_recovery
from repro.wms.statistics import render_report, summarize

__all__ = [
    "__version__",
    "Blast2Cap3Result",
    "blast2cap3_serial",
    "build_blast2cap3_adag",
    "run_local",
    "simulate_paper_run",
    "simulate_paper_run_with_recovery",
    "run_with_recovery",
    "generate_blast2cap3_workload",
    "summarize",
    "render_report",
]
