"""``pegasus-plots`` equivalents: text gantt charts and utilization.

The paper's §III lists "useful statistics and plots about the workflow
performance" among Pegasus' tools. This module renders the two most
useful ones as monospace text (no plotting dependency):

* :func:`gantt` — one row per attempt, time flowing right; ``.`` is
  waiting, ``i`` is download/install, ``#`` is payload execution,
  ``x`` marks a failed/evicted end;
* :func:`utilization` — concurrently-running payload count over time,
  rendered as a bar column per time bin.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.dagman.events import WorkflowTrace

if TYPE_CHECKING:
    from repro.observe.sampler import UtilizationSample

__all__ = ["gantt", "utilization", "utilization_series"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def _scale(trace: WorkflowTrace) -> tuple[float, float]:
    start = min(a.submit_time for a in trace)
    end = max(a.exec_end for a in trace)
    return start, max(end - start, 1e-9)


def gantt(
    trace: WorkflowTrace,
    *,
    width: int = 72,
    max_rows: int = 40,
    label_width: int = 24,
) -> str:
    """Render the run as a per-attempt timeline.

    Rows are ordered by submit time; with more attempts than
    ``max_rows``, the longest-running attempts are kept (those shape the
    makespan) and a summary line reports the omission.
    """
    if not len(trace):
        return "(empty trace)"
    start, span = _scale(trace)

    def col(t: float) -> int:
        return min(width - 1, int((t - start) / span * width))

    attempts = sorted(trace, key=lambda a: (a.submit_time, a.job_name))
    omitted = 0
    if len(attempts) > max_rows:
        keep = sorted(attempts, key=lambda a: -(a.exec_end - a.submit_time))
        keep_set = {id(a) for a in keep[:max_rows]}
        omitted = len(attempts) - max_rows
        attempts = [a for a in attempts if id(a) in keep_set]

    lines = []
    for a in attempts:
        row = [" "] * width
        for c in range(col(a.submit_time), col(a.setup_start)):
            row[c] = "."
        for c in range(col(a.setup_start), col(a.exec_start)):
            row[c] = "i"
        lo, hi = col(a.exec_start), col(a.exec_end)
        for c in range(lo, max(hi, lo + 1)):
            row[c] = "#"
        if not a.status.is_success:
            row[max(hi, lo)] = "x" if max(hi, lo) < width else "x"
        label = f"{a.job_name}[{a.attempt}]"[:label_width]
        lines.append(f"{label:<{label_width}} |{''.join(row)}|")
    header = (
        f"{'job[attempt]':<{label_width}} |{'t=0':<{width - 9}}"
        f"t={span:,.0f}s|"
    )
    out = [header, *lines]
    if omitted:
        out.append(f"(… {omitted} shorter attempts omitted)")
    out.append("legend: . waiting   i download/install   # running   x failed")
    return "\n".join(out)


def utilization(trace: WorkflowTrace, *, bins: int = 60) -> str:
    """Concurrent running-payload count over time, as a bar strip.

    >>> from repro.dagman.events import WorkflowTrace
    >>> utilization(WorkflowTrace())
    '(empty trace)'
    """
    if not len(trace):
        return "(empty trace)"
    start, span = _scale(trace)
    counts = [0] * bins
    for a in trace:
        lo = int((a.exec_start - start) / span * bins)
        hi = int((a.exec_end - start) / span * bins)
        for b in range(max(0, lo), min(bins, max(hi, lo + 1))):
            counts[b] += 1
    peak = max(counts) or 1
    strip = "".join(
        _BLOCKS[min(len(_BLOCKS) - 1, round(c / peak * (len(_BLOCKS) - 1)))]
        for c in counts
    )
    return (
        f"running jobs over time (peak {peak}, span {span:,.0f}s):\n"
        f"|{strip}|"
    )


def utilization_series(
    samples: "Iterable[UtilizationSample]", *, width: int = 72
) -> str:
    """Render a *sampled* utilization time series as a bar strip.

    Unlike :func:`utilization`, which reconstructs occupancy from
    attempt records after the fact, this renders what the
    :class:`~repro.observe.sampler.UtilizationSampler` actually measured
    during the run (busy platform slots per tick) — the live-monitoring
    counterpart. Samples are rebinned to ``width`` columns by averaging.
    """
    samples = list(samples)
    if not samples:
        return "(no samples)"
    busy = [s.busy for s in samples]
    span = samples[-1].time - samples[0].time
    if len(busy) > width:
        bins: list[float] = []
        for i in range(width):
            lo = i * len(busy) // width
            hi = max(lo + 1, (i + 1) * len(busy) // width)
            bins.append(sum(busy[lo:hi]) / (hi - lo))
        busy = bins  # type: ignore[assignment]
    peak = max(busy) or 1
    strip = "".join(
        _BLOCKS[min(len(_BLOCKS) - 1, round(b / peak * (len(_BLOCKS) - 1)))]
        for b in busy
    )
    return (
        f"sampled busy slots over time (peak {max(s.busy for s in samples)}, "
        f"{len(samples)} samples, span {span:,.0f}s):\n|{strip}|"
    )
