"""``pegasus-analyzer`` equivalent: explain what went wrong.

Given a DAGMan result, produce the familiar post-mortem: per-job attempt
history for everything that failed, which jobs never became runnable
because an ancestor failed, and a one-line verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dagman.events import JobAttempt
from repro.dagman.scheduler import DagmanResult, NodeState

__all__ = ["JobDiagnosis", "AnalyzerReport", "analyze", "render_analysis"]


@dataclass(frozen=True)
class JobDiagnosis:
    """One failed job's story."""

    job_name: str
    attempts: tuple[JobAttempt, ...]

    @property
    def last_error(self) -> str:
        for attempt in reversed(self.attempts):
            if attempt.error:
                return attempt.error
        return "(no error recorded)"

    @property
    def sites_tried(self) -> list[str]:
        return sorted({a.machine for a in self.attempts})


@dataclass
class AnalyzerReport:
    """The analyzer's full output."""

    success: bool
    total_jobs: int
    done: int
    failed: list[JobDiagnosis] = field(default_factory=list)
    unrunnable: list[str] = field(default_factory=list)

    @property
    def verdict(self) -> str:
        if self.success:
            return "all jobs completed successfully"
        return (
            f"{len(self.failed)} job(s) failed, "
            f"{len(self.unrunnable)} never became runnable"
        )


def analyze(result: DagmanResult) -> AnalyzerReport:
    """Build the post-mortem from a DAGMan result."""
    failed = []
    for name, state in sorted(result.states.items()):
        if state is NodeState.FAILED:
            failed.append(
                JobDiagnosis(
                    job_name=name,
                    attempts=tuple(result.trace.for_job(name)),
                )
            )
    return AnalyzerReport(
        success=result.success,
        total_jobs=len(result.states),
        done=sum(
            1 for s in result.states.values() if s is NodeState.DONE
        ),
        failed=failed,
        unrunnable=result.unrunnable_jobs,
    )


def render_analysis(report: AnalyzerReport) -> str:
    """Human-readable analyzer output."""
    lines = [
        "************************************",
        f"* analyzer: {report.verdict}",
        "************************************",
        f"total jobs: {report.total_jobs}   done: {report.done}   "
        f"failed: {len(report.failed)}   unrunnable: {len(report.unrunnable)}",
    ]
    for diag in report.failed:
        lines.append("")
        lines.append(f"==== {diag.job_name} ====")
        for attempt in diag.attempts:
            lines.append(
                f"  attempt {attempt.attempt}: {attempt.status.value} on "
                f"{attempt.machine} (site {attempt.site}) after "
                f"{attempt.total_time:.0f}s"
            )
        lines.append(f"  last error: {diag.last_error.strip().splitlines()[-1]}")
    if report.unrunnable:
        lines.append("")
        lines.append("jobs blocked by failed ancestors: " + ", ".join(report.unrunnable))
    return "\n".join(lines)
