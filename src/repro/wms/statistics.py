"""``pegasus-statistics`` equivalents.

The paper's evaluation is phrased entirely in this tool's vocabulary:

* **Workflow Wall Time** — total running time start to end (Fig. 4);
* **Kickstart Time** — actual payload duration on the remote node;
* **Waiting Time** — submit-host plus remote-host waiting before
  anything runs;
* **Download/Install Time** — OSG-only software setup time (Fig. 5).

:func:`summarize` turns a :class:`repro.dagman.events.WorkflowTrace`
into those numbers; :func:`per_transformation` gives the per-task-type
breakdown Fig. 5 plots; :func:`render_report` prints the familiar text
block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean

from repro.dagman.events import JobAttempt, WorkflowTrace
from repro.util.tables import Table
from repro.util.units import format_duration

__all__ = [
    "TransformationStats",
    "SiteStats",
    "WorkflowStatistics",
    "summarize",
    "summarize_events",
    "per_transformation",
    "per_site",
    "critical_path",
    "render_report",
]


@dataclass(frozen=True)
class TransformationStats:
    """Aggregate timings for one transformation (task type)."""

    transformation: str
    count: int
    mean_kickstart: float
    max_kickstart: float
    mean_waiting: float
    max_waiting: float
    mean_download_install: float
    total_kickstart: float

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("count must be >= 1")


@dataclass
class WorkflowStatistics:
    """The whole-run summary block.

    ``total_jobs`` is the *planned* job count when the DAG (or an
    expected-jobs count) was given to :func:`summarize`, else the number
    of jobs that have at least one attempt. The planned/attempted/
    unrunnable triple makes partially-run workflows report honestly:
    descendants of a failed job never produce an attempt record, but
    they were planned work and must not silently vanish.
    """

    wall_time: float
    cumulative_kickstart: float
    total_jobs: int
    succeeded_jobs: int
    failed_attempts: int
    retries: int
    transformations: list[TransformationStats] = field(default_factory=list)
    #: Jobs in the plan (None when summarize() was given only a trace).
    planned_jobs: int | None = None
    #: Jobs with at least one attempt record.
    attempted_jobs: int = 0
    #: Planned jobs that never ran (failed ancestors made them unrunnable).
    unattempted_jobs: int = 0

    @property
    def speedup(self) -> float:
        """Cumulative work over wall time (parallel efficiency proxy)."""
        if self.wall_time == 0:
            return 0.0
        return self.cumulative_kickstart / self.wall_time


def _stats_for(transformation: str, attempts: list[JobAttempt]) -> TransformationStats:
    return TransformationStats(
        transformation=transformation,
        count=len(attempts),
        mean_kickstart=mean(a.kickstart_time for a in attempts),
        max_kickstart=max(a.kickstart_time for a in attempts),
        mean_waiting=mean(a.waiting_time for a in attempts),
        max_waiting=max(a.waiting_time for a in attempts),
        mean_download_install=mean(
            a.download_install_time for a in attempts
        ),
        total_kickstart=sum(a.kickstart_time for a in attempts),
    )


@dataclass(frozen=True)
class SiteStats:
    """Aggregate per execution site (OSG spreads work over many)."""

    site: str
    jobs: int
    failures: int
    mean_kickstart: float
    total_kickstart: float

    def __post_init__(self) -> None:
        if self.jobs < 0 or self.failures < 0:
            raise ValueError("counts must be >= 0")


def per_site(trace: WorkflowTrace) -> list[SiteStats]:
    """Per-site breakdown: where the work actually ran.

    Counts successful attempts as jobs; failures/evictions are tallied
    against the site they happened on (the paper's OSG story is that
    *which* sites you land on decides your run).
    """
    succeeded: dict[str, list[JobAttempt]] = {}
    failed: dict[str, int] = {}
    for attempt in trace:
        if attempt.status.is_success:
            succeeded.setdefault(attempt.site, []).append(attempt)
        else:
            failed[attempt.site] = failed.get(attempt.site, 0) + 1
    sites = sorted(set(succeeded) | set(failed))
    out = []
    for site in sites:
        runs = succeeded.get(site, [])
        out.append(
            SiteStats(
                site=site,
                jobs=len(runs),
                failures=failed.get(site, 0),
                mean_kickstart=(
                    mean(a.kickstart_time for a in runs) if runs else 0.0
                ),
                total_kickstart=sum(a.kickstart_time for a in runs),
            )
        )
    return out


def per_transformation(trace: WorkflowTrace) -> list[TransformationStats]:
    """Fig. 5's series: successful attempts grouped by task type."""
    groups: dict[str, list[JobAttempt]] = {}
    for attempt in trace.successful():
        groups.setdefault(attempt.transformation, []).append(attempt)
    return [
        _stats_for(name, attempts) for name, attempts in sorted(groups.items())
    ]


def critical_path(
    trace: WorkflowTrace, dag, *, attempts: str = "successful"
) -> list[JobAttempt]:
    """The *retrospective* critical path of an executed workflow.

    Walks the DAG backward from the last-finishing job, at each step
    picking the parent whose completion gated this job's release (the
    latest-finishing parent). The result is the chain of attempts whose
    durations actually determined the makespan — the place to look when
    asking "why was this run slow?" (here: invariably the heaviest
    ``run_cap3`` partition).

    ``dag`` is the executed :class:`repro.dagman.dag.Dag`.

    ``attempts`` selects which attempt represents each job on the path:
    ``"successful"`` (the default, the classic view over jobs that
    finished) or ``"final"`` — every job's last attempt regardless of
    status, so a workflow whose tail is a hard-failed job still has a
    path reaching the makespan's end (what the attribution engine in
    :mod:`repro.observe.analysis` walks).
    """
    if attempts not in ("successful", "final"):
        raise ValueError(f"unknown attempts selector: {attempts!r}")
    final_attempt: dict[str, JobAttempt] = {}
    pool = trace.successful() if attempts == "successful" else trace
    for attempt in pool:
        prior = final_attempt.get(attempt.job_name)
        if prior is None or attempt.attempt > prior.attempt:
            final_attempt[attempt.job_name] = attempt
    if not final_attempt:
        return []

    current = max(final_attempt.values(), key=lambda a: a.exec_end)
    chain = [current]
    while True:
        parents = [
            final_attempt[p]
            for p in dag.parents(current.job_name)
            if p in final_attempt
        ]
        if not parents:
            break
        current = max(parents, key=lambda a: a.exec_end)
        chain.append(current)
    chain.reverse()
    return chain


def summarize(
    trace: WorkflowTrace,
    *,
    dag=None,
    expected_jobs: int | None = None,
) -> WorkflowStatistics:
    """Aggregate a trace into the pegasus-statistics summary.

    Pass the executed ``dag`` (a :class:`repro.dagman.dag.Dag`) or an
    ``expected_jobs`` count so the report covers *planned* work, not
    just attempted work: when a job fails hard, its descendants never
    get an attempt record, and a trace-only summary would silently
    undercount the workflow. With plan information, ``total_jobs`` is
    the planned count and ``unattempted_jobs`` reports the jobs that
    never ran.
    """
    if dag is not None and expected_jobs is not None:
        raise ValueError("pass dag or expected_jobs, not both")
    succeeded = trace.successful()
    attempted_names = {a.job_name for a in trace}
    planned: int | None = None
    if dag is not None:
        planned = len(dag.jobs)
        extra = attempted_names - set(dag.jobs)
        if extra:
            raise ValueError(
                "trace contains jobs not in the DAG: "
                + ", ".join(sorted(extra)[:5])
            )
    elif expected_jobs is not None:
        if expected_jobs < len(attempted_names):
            raise ValueError(
                f"expected_jobs={expected_jobs} is fewer than the "
                f"{len(attempted_names)} jobs present in the trace"
            )
        planned = expected_jobs
    return WorkflowStatistics(
        wall_time=trace.wall_time(),
        cumulative_kickstart=trace.cumulative_kickstart(),
        total_jobs=planned if planned is not None else len(attempted_names),
        succeeded_jobs=len(succeeded),
        failed_attempts=len(trace.failures()),
        retries=trace.retry_count,
        transformations=per_transformation(trace),
        planned_jobs=planned,
        attempted_jobs=len(attempted_names),
        unattempted_jobs=(
            planned - len(attempted_names) if planned is not None else 0
        ),
    )


def summarize_events(
    events,
    *,
    dag=None,
    expected_jobs: int | None = None,
) -> WorkflowStatistics:
    """Summarize straight from a :mod:`repro.observe` event stream.

    The live view and the statistics report share one source of truth:
    terminal events carry the full attempt records, so this is exactly
    :func:`summarize` over the trace they reconstruct. ``events`` is
    any iterable of :class:`repro.observe.events.RunEvent` (e.g. an
    :class:`~repro.observe.bus.EventRecorder`'s capture, or
    :func:`repro.observe.log.read_events` over a JSONL log).
    """
    from repro.observe.bus import events_to_trace

    return summarize(
        events_to_trace(events), dag=dag, expected_jobs=expected_jobs
    )


def render_report(stats: WorkflowStatistics, *, title: str = "workflow") -> str:
    """Render the familiar text block plus the per-type table."""
    lines = [
        "#" * 60,
        f"# {title}",
        "#" * 60,
        f"Workflow wall time                : {format_duration(stats.wall_time)}"
        f" ({stats.wall_time:.0f} s)",
        f"Cumulative job wall time          : {format_duration(stats.cumulative_kickstart)}"
        f" ({stats.cumulative_kickstart:.0f} s)",
        f"Total jobs                        : {stats.total_jobs}",
        *(
            [
                f"  planned                         : {stats.planned_jobs}",
                f"  attempted                       : {stats.attempted_jobs}",
                f"  never ran (unrunnable)          : {stats.unattempted_jobs}",
            ]
            if stats.planned_jobs is not None
            else []
        ),
        f"Succeeded jobs                    : {stats.succeeded_jobs}",
        f"Failed/evicted attempts           : {stats.failed_attempts}",
        f"Retries                           : {stats.retries}",
        f"Parallel speedup                  : {stats.speedup:.1f}x",
        "",
    ]
    table = Table(
        [
            "transformation",
            "count",
            "mean kickstart (s)",
            "max kickstart (s)",
            "mean waiting (s)",
            "mean download/install (s)",
        ],
        title="Per-task statistics (successful attempts)",
    )
    for t in stats.transformations:
        table.add_row(
            t.transformation,
            t.count,
            round(t.mean_kickstart, 1),
            round(t.max_kickstart, 1),
            round(t.mean_waiting, 1),
            round(t.mean_download_install, 1),
        )
    lines.append(table.render())
    return "\n".join(lines)


def render_site_breakdown(trace: WorkflowTrace) -> str:
    """Per-site table (meaningful on multi-site platforms like OSG)."""
    table = Table(
        ["site", "jobs", "failures/evictions", "mean kickstart (s)",
         "total kickstart (s)"],
        title="Per-site breakdown",
    )
    for s in per_site(trace):
        table.add_row(
            s.site, s.jobs, s.failures,
            round(s.mean_kickstart, 1), round(s.total_kickstart),
        )
    return table.render()
