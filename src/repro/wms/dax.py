"""The abstract workflow model (Pegasus' DAX).

An :class:`ADag` is platform-independent: jobs reference *logical* files
(by name) and declare how they use them (input/output). Dependencies can
be added explicitly or inferred from producer→consumer file relations,
exactly as ``pegasus-plan`` does. The XML serialisation follows the
shape of DAX 3 (``<adag>``, ``<job>``, ``<uses>``, ``<child>/<parent>``)
closely enough to be immediately recognisable, with one extension: an
optional ``runtime`` attribute per job carrying the modelled duration
used by the simulators.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path

from repro.util.iolib import atomic_write

__all__ = ["LinkType", "File", "AbstractJob", "ADag"]


class LinkType(Enum):
    """How a job uses a file."""

    INPUT = "input"
    OUTPUT = "output"


@dataclass(frozen=True)
class File:
    """A logical file: a name in the workflow's namespace plus a size
    estimate (bytes) used for transfer-time modelling."""

    name: str
    size: int = 0

    def __post_init__(self) -> None:
        if not self.name or any(c.isspace() for c in self.name):
            raise ValueError(f"invalid logical file name: {self.name!r}")
        if self.size < 0:
            raise ValueError("size must be >= 0")


@dataclass
class AbstractJob:
    """One abstract task.

    ``args`` are the task's logical arguments (stringifiable values);
    ``runtime`` is the modelled payload duration on a reference core
    (consumed by the simulators; ignored by the real executor, which
    binds actual callables via the transformation catalog).
    """

    id: str
    transformation: str
    args: dict[str, str] = field(default_factory=dict)
    uses: list[tuple[File, LinkType]] = field(default_factory=list)
    runtime: float = 1.0

    def __post_init__(self) -> None:
        if not self.id or any(c.isspace() for c in self.id):
            raise ValueError(f"invalid job id: {self.id!r}")
        if self.runtime < 0:
            raise ValueError("runtime must be >= 0")

    def add_input(self, f: File) -> "AbstractJob":
        self.uses.append((f, LinkType.INPUT))
        return self

    def add_output(self, f: File) -> "AbstractJob":
        self.uses.append((f, LinkType.OUTPUT))
        return self

    def inputs(self) -> list[File]:
        return [f for f, link in self.uses if link is LinkType.INPUT]

    def outputs(self) -> list[File]:
        return [f for f, link in self.uses if link is LinkType.OUTPUT]


class ADag:
    """An abstract workflow: jobs, logical files, and dependencies."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("workflow name must be non-empty")
        self.name = name
        self.jobs: dict[str, AbstractJob] = {}
        self._explicit_edges: set[tuple[str, str]] = set()

    def add_job(self, job: AbstractJob) -> AbstractJob:
        if job.id in self.jobs:
            raise ValueError(f"duplicate job id: {job.id!r}")
        self.jobs[job.id] = job
        return job

    def add_dependency(self, parent: str, child: str) -> None:
        for jid in (parent, child):
            if jid not in self.jobs:
                raise KeyError(f"unknown job id: {jid!r}")
        if parent == child:
            raise ValueError("self-dependency")
        self._explicit_edges.add((parent, child))

    # -- derived structure ------------------------------------------------

    def producers(self) -> dict[str, str]:
        """Logical file name -> id of the job that outputs it."""
        out: dict[str, str] = {}
        for job in self.jobs.values():
            for f in job.outputs():
                if f.name in out:
                    raise ValueError(
                        f"file {f.name!r} produced by both {out[f.name]!r} "
                        f"and {job.id!r}"
                    )
                out[f.name] = job.id
        return out

    def edges(self) -> set[tuple[str, str]]:
        """Explicit edges plus producer→consumer data dependencies."""
        edges = set(self._explicit_edges)
        producers = self.producers()
        for job in self.jobs.values():
            for f in job.inputs():
                producer = producers.get(f.name)
                if producer is not None and producer != job.id:
                    edges.add((producer, job.id))
        return edges

    def external_inputs(self) -> list[File]:
        """Input files no workflow job produces (must be staged in)."""
        producers = self.producers()
        seen: dict[str, File] = {}
        for job in self.jobs.values():
            for f in job.inputs():
                if f.name not in producers:
                    seen.setdefault(f.name, f)
        return list(seen.values())

    def final_outputs(self) -> list[File]:
        """Output files no workflow job consumes (stage-out targets)."""
        consumed = {
            f.name for job in self.jobs.values() for f in job.inputs()
        }
        outs = []
        for job in self.jobs.values():
            for f in job.outputs():
                if f.name not in consumed:
                    outs.append(f)
        return outs

    def __len__(self) -> int:
        return len(self.jobs)

    def validate(self) -> list[str]:
        """Deprecated: use :func:`repro.lint.lint` instead.

        Thin shim over the DAX pass of the rule-based linter; returns
        the finding messages (empty = clean) so existing callers keep
        working. New code should call ``lint(adag)`` and inspect the
        structured :class:`~repro.lint.Report`.
        """
        import warnings

        warnings.warn(
            "ADag.validate() is deprecated; use repro.lint.lint(adag)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.lint import lint

        return [f.message for f in lint(self).findings]

    # -- DAX XML ----------------------------------------------------------

    def to_xml(self) -> str:
        root = ET.Element("adag", {"name": self.name, "jobCount": str(len(self))})
        for job in self.jobs.values():
            j = ET.SubElement(
                root,
                "job",
                {
                    "id": job.id,
                    "name": job.transformation,
                    "runtime": repr(job.runtime),
                },
            )
            for key in sorted(job.args):
                ET.SubElement(
                    j, "argument", {"key": key, "value": str(job.args[key])}
                )
            for f, link in job.uses:
                ET.SubElement(
                    j,
                    "uses",
                    {
                        "name": f.name,
                        "link": link.value,
                        "size": str(f.size),
                    },
                )
        # Pegasus writes child/parent pairs; keep that shape. Only the
        # *explicit* edges are serialized — data dependencies are
        # reconstructed from <uses> on read, so writing them too would
        # turn every data edge into a redundant explicit one (DAX007)
        # on round-trip.
        children: dict[str, list[str]] = {}
        for parent, child in sorted(self._explicit_edges):
            children.setdefault(child, []).append(parent)
        for child, parents in sorted(children.items()):
            c = ET.SubElement(root, "child", {"ref": child})
            for parent in parents:
                ET.SubElement(c, "parent", {"ref": parent})
        ET.indent(root)
        return ET.tostring(root, encoding="unicode") + "\n"

    def write(self, path: str | Path) -> Path:
        return atomic_write(path, self.to_xml())

    @classmethod
    def from_xml(cls, text: str) -> "ADag":
        root = ET.fromstring(text)
        if root.tag != "adag":
            raise ValueError(f"not a DAX document: root is <{root.tag}>")
        adag = cls(name=root.get("name", "workflow"))
        for j in root.findall("job"):
            job = AbstractJob(
                id=j.get("id"),
                transformation=j.get("name"),
                runtime=float(j.get("runtime", "1.0")),
            )
            for arg in j.findall("argument"):
                job.args[arg.get("key")] = arg.get("value")
            for use in j.findall("uses"):
                f = File(name=use.get("name"), size=int(use.get("size", "0")))
                link = LinkType(use.get("link"))
                job.uses.append((f, link))
            adag.add_job(job)
        for c in root.findall("child"):
            child = c.get("ref")
            for p in c.findall("parent"):
                # Data dependencies regenerate from uses; only add edges
                # not already implied, as explicit ones.
                adag._explicit_edges.add((p.get("ref"), child))
        return adag

    @classmethod
    def read(cls, path: str | Path) -> "ADag":
        return cls.from_xml(Path(path).read_text())
