"""The planner: abstract DAX → executable DAG for one site.

``pegasus-plan``'s essential moves, reproduced:

1. **site selection & validation** — every transformation must be
   resolvable; every external input must have a replica;
2. **transfer jobs** — a ``stage_in`` job per external input (runtime
   from the site's network model and the file size) and one
   ``stage_out`` job collecting final outputs;
3. **software setup decoration** — on sites without the pre-installed
   stack, compute jobs are marked ``needs_setup`` (the extra
   download/install step of the paper's Fig. 3); alternatively
   (``setup_mode="never"``) jobs instead *require* pre-installed
   software via ClassAds — the failure-prone configuration the paper
   describes avoiding;
4. **cleanup jobs** — optionally remove intermediate files once all
   consumers finish;
5. **horizontal clustering** — merge same-transformation jobs at the
   same DAG level into sequential super-jobs ("Pegasus also allows
   clustering of small tasks into larger clusters", §III);
6. **payload binding** — transformations with a ``payload_factory`` get
   real callables attached, so the planned DAG runs on the local
   backend unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Literal, Mapping

from repro.dagman.dag import Dag, DagJob
from repro.wms.catalogs import (
    ReplicaCatalog,
    SiteCatalog,
    SiteEntry,
    TransformationCatalog,
)
from repro.wms.dax import ADag

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint import Report
    from repro.lint.feasibility import SitePool

__all__ = [
    "PlanningError",
    "LintFailure",
    "PlannerOptions",
    "PlannedWorkflow",
    "plan",
]

#: ClassAd requirement for jobs that rely on pre-installed software.
SOFTWARE_REQUIREMENTS = "has_python and has_biopython and has_cap3"

#: Fixed cost of a cleanup (rm) job.
CLEANUP_RUNTIME_S = 1.0


class PlanningError(Exception):
    """The abstract workflow cannot be mapped onto the requested site."""


class LintFailure(PlanningError):
    """The pre-flight linter found ERROR findings (``lint="error"``).

    Carries the full :class:`repro.lint.Report` so callers can render
    or inspect the findings.
    """

    def __init__(self, report: "Report") -> None:
        from repro.lint import render_report

        super().__init__(
            f"pre-flight lint failed: {report.verdict}\n"
            + render_report(report)
        )
        self.report = report


@dataclass(frozen=True)
class PlannerOptions:
    """Planner behaviour switches.

    ``enable_reuse`` turns on Pegasus' data-reuse pruning: a job whose
    outputs *all* already have replicas is cut from the plan, and its
    outputs are staged in instead of recomputed. Pruning cascades —
    a job whose only purpose was feeding pruned jobs goes too.

    ``lint`` controls the pre-flight static analysis
    (:mod:`repro.lint`) that runs on every plan: ``"error"`` (the
    default) raises :class:`LintFailure` on ERROR findings before any
    execution, ``"warn"`` only attaches the report to the returned
    :class:`PlannedWorkflow`, ``"off"`` skips the preflight entirely.
    """

    retries: int = 3
    #: Kill a compute attempt after this many (platform) seconds — the
    #: resilience layer's hung-job guard. Clustered super-jobs get the
    #: sum over their members (they run sequentially). ``None`` = no cap.
    timeout_s: float | None = None
    cluster_size: int = 1  # 1 = no horizontal clustering
    add_cleanup: bool = False
    setup_mode: Literal["auto", "never"] = "auto"
    enable_reuse: bool = False
    lint: Literal["error", "warn", "off"] = "error"

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.cluster_size < 1:
            raise ValueError("cluster_size must be >= 1")
        if self.lint not in ("error", "warn", "off"):
            raise ValueError(f"unknown lint mode: {self.lint!r}")


@dataclass
class PlannedWorkflow:
    """The planner's output: an executable DAG plus bookkeeping."""

    dag: Dag
    site: SiteEntry
    #: abstract job id -> executable job name (changes under clustering)
    job_map: dict[str, str] = field(default_factory=dict)
    #: pre-flight lint report (None when planned with lint="off")
    lint_report: "Report | None" = None

    @property
    def compute_jobs(self) -> list[str]:
        return sorted(set(self.job_map.values()))

    @property
    def auxiliary_jobs(self) -> list[str]:
        mapped = set(self.job_map.values())
        return sorted(n for n in self.dag.jobs if n not in mapped)


def plan(
    adag: ADag,
    *,
    site_name: str,
    sites: SiteCatalog,
    transformations: TransformationCatalog,
    replicas: ReplicaCatalog,
    options: PlannerOptions = PlannerOptions(),
    pools: "Mapping[str, SitePool] | None" = None,
) -> PlannedWorkflow:
    """Map ``adag`` onto ``site_name``; raises :class:`PlanningError`
    when transformations or replicas are missing.

    ``pools`` overrides the resource descriptors the pre-flight
    feasibility pass matches against (defaults to descriptors derived
    from the simulator configs); a pool that provably cannot match a
    job's requirements fails the plan with :class:`LintFailure`.
    """
    try:
        site = sites.lookup(site_name)
    except KeyError as exc:
        raise PlanningError(str(exc)) from None

    missing_tx = sorted(
        {
            j.transformation
            for j in adag.jobs.values()
            if j.transformation not in transformations
        }
    )
    if missing_tx:
        raise PlanningError(
            f"transformations not in catalog: {', '.join(missing_tx)}"
        )
    if options.enable_reuse:
        adag = _apply_reuse(adag, replicas)

    missing_inputs = [
        f.name for f in adag.external_inputs() if not replicas.has(f.name)
    ]
    if missing_inputs:
        raise PlanningError(
            f"external inputs without replicas: {', '.join(sorted(missing_inputs))}"
        )

    dag = Dag(name=f"{adag.name}-{site.name}")
    job_map: dict[str, str] = {}

    # -- compute jobs ---------------------------------------------------
    for job in adag.jobs.values():
        entry = transformations.lookup(job.transformation)
        preinstalled = site.software_preinstalled or entry.installed_at(
            site.name
        )
        needs_setup = False
        requirements: str | None = None
        if not preinstalled:
            if options.setup_mode == "auto":
                needs_setup = True  # Fig. 3's red download/install step
            else:
                requirements = SOFTWARE_REQUIREMENTS
        payload: Callable[[], Any] | None = None
        if entry.payload_factory is not None:
            payload = entry.payload_factory(job.args)
        dag.add_job(
            DagJob(
                name=job.id,
                transformation=job.transformation,
                runtime=job.runtime,
                input_bytes=sum(f.size for f in job.inputs()),
                output_bytes=sum(f.size for f in job.outputs()),
                needs_setup=needs_setup,
                retries=options.retries,
                timeout_s=options.timeout_s,
                requirements=requirements,
                payload=payload,
            )
        )
        job_map[job.id] = job.id

    # -- data dependencies ------------------------------------------------
    for parent, child in adag.edges():
        dag.add_edge(parent, child)

    # -- stage-in jobs ------------------------------------------------------
    consumers_of: dict[str, list[str]] = {}
    for job in adag.jobs.values():
        for f in job.inputs():
            consumers_of.setdefault(f.name, []).append(job.id)
    for f in adag.external_inputs():
        name = f"stage_in_{_safe(f.name)}"
        dag.add_job(
            DagJob(
                name=name,
                transformation="stage_in",
                runtime=site.network.transfer_time(f.size),
                input_bytes=f.size,
                retries=options.retries,
            )
        )
        for consumer in consumers_of[f.name]:
            dag.add_edge(name, consumer)

    # -- stage-out job -------------------------------------------------------
    finals = adag.final_outputs()
    if finals:
        producers = adag.producers()
        out_bytes = sum(f.size for f in finals)
        name = "stage_out_final"
        dag.add_job(
            DagJob(
                name=name,
                transformation="stage_out",
                runtime=site.network.transfer_time(out_bytes),
                output_bytes=out_bytes,
                retries=options.retries,
            )
        )
        for f in finals:
            dag.add_edge(producers[f.name], name)

    # -- cleanup jobs -----------------------------------------------------
    if options.add_cleanup:
        producers = adag.producers()
        for fname, consumers in consumers_of.items():
            if fname not in producers:
                continue  # external input: not ours to delete
            if fname in {f.name for f in finals}:
                continue
            name = f"cleanup_{_safe(fname)}"
            dag.add_job(
                DagJob(
                    name=name,
                    transformation="cleanup",
                    runtime=CLEANUP_RUNTIME_S,
                )
            )
            for consumer in consumers:
                dag.add_edge(consumer, name)

    planned = PlannedWorkflow(dag=dag, site=site, job_map=job_map)
    if options.cluster_size > 1:
        planned = _horizontal_clustering(planned, adag, options.cluster_size)

    # -- pre-flight static analysis ---------------------------------------
    if options.lint != "off":
        from repro.lint import lint as run_lint

        report = run_lint(
            adag,
            sites=sites,
            transformations=transformations,
            replicas=replicas,
            site=site,
            options=options,
            planned=planned,
            pools=pools,
        )
        planned.lint_report = report
        if options.lint == "error" and not report.ok:
            raise LintFailure(report)
    return planned


def _safe(name: str) -> str:
    return name.replace("/", "_").replace(".", "_")


def _apply_reuse(adag: ADag, replicas: ReplicaCatalog) -> ADag:
    """Pegasus' data-reuse pruning.

    Pass A removes every job whose outputs all already have replicas
    (its work exists; stage it instead). Pass B then iteratively removes
    jobs that only existed to feed pruned jobs: all their outputs have
    no surviving consumer and are not final outputs of the original
    workflow. The surviving jobs form a new abstract workflow in which
    reused files appear as external inputs.
    """
    pruned: set[str] = set()
    finals = {f.name for f in adag.final_outputs()}

    # Pass A: outputs exist -> job is redundant.
    for job in adag.jobs.values():
        outputs = job.outputs()
        if outputs and all(replicas.has(f.name) for f in outputs):
            pruned.add(job.id)

    # Pass B: cascade upward over jobs that now feed nobody.
    changed = True
    while changed:
        changed = False
        surviving = [j for j in adag.jobs.values() if j.id not in pruned]
        consumed_by_survivors = {
            f.name for j in surviving for f in j.inputs()
        }
        explicit_children: dict[str, set[str]] = {}
        for parent, child in adag.edges():
            explicit_children.setdefault(parent, set()).add(child)
        for job in surviving:
            outputs = job.outputs()
            if not outputs:
                continue
            needed = any(
                f.name in consumed_by_survivors or f.name in finals
                for f in outputs
            )
            live_children = explicit_children.get(job.id, set()) - pruned
            if not needed and not live_children:
                pruned.add(job.id)
                changed = True

    if not pruned:
        return adag

    reduced = ADag(name=adag.name)
    for job in adag.jobs.values():
        if job.id not in pruned:
            reduced.add_job(job)
    for parent, child in adag._explicit_edges:
        if parent not in pruned and child not in pruned:
            reduced.add_dependency(parent, child)
    return reduced


def _levels(dag: Dag) -> dict[str, int]:
    level: dict[str, int] = {}
    for node in dag.topological_order():
        parents = dag.parents(node)
        level[node] = 1 + max((level[p] for p in parents), default=-1)
    return level


def _horizontal_clustering(
    planned: PlannedWorkflow, adag: ADag, cluster_size: int
) -> PlannedWorkflow:
    """Merge same-transformation compute jobs at the same level into
    sequential super-jobs of up to ``cluster_size`` members."""
    dag = planned.dag
    levels = _levels(dag)
    compute = set(planned.job_map.values())

    groups: dict[tuple[str, int], list[str]] = {}
    for name in dag.topological_order():
        if name not in compute:
            continue
        job = dag.jobs[name]
        groups.setdefault((job.transformation, levels[name]), []).append(name)

    member_to_cluster: dict[str, str] = {}
    clusters: dict[str, list[str]] = {}
    for (transformation, lvl), members in groups.items():
        if len(members) < 2:
            continue
        for i in range(0, len(members), cluster_size):
            chunk = members[i : i + cluster_size]
            if len(chunk) < 2:
                continue
            cname = f"merge_{transformation}_l{lvl}_{i // cluster_size}"
            clusters[cname] = chunk
            for m in chunk:
                member_to_cluster[m] = cname

    if not clusters:
        return planned

    new_dag = Dag(name=dag.name)
    # Unclustered jobs survive as-is.
    for name, job in dag.jobs.items():
        if name not in member_to_cluster:
            new_dag.add_job(job)
    # Cluster super-jobs: sequential execution -> runtimes add up.
    for cname, members in clusters.items():
        jobs = [dag.jobs[m] for m in members]
        payloads = [j.payload for j in jobs]

        def run_all(ps=payloads):
            results = [p() for p in ps if p is not None]
            return results

        has_payloads = any(p is not None for p in payloads)
        member_timeouts = [j.timeout_s for j in jobs]
        # Members run sequentially inside the super-job, so their
        # timeout budget adds up; one member without a cap means the
        # cluster has none.
        cluster_timeout: float | None = None
        if all(t is not None for t in member_timeouts):
            cluster_timeout = sum(t for t in member_timeouts if t is not None)
        new_dag.add_job(
            DagJob(
                name=cname,
                transformation=jobs[0].transformation,
                runtime=sum(j.runtime for j in jobs),
                input_bytes=sum(j.input_bytes for j in jobs),
                output_bytes=sum(j.output_bytes for j in jobs),
                needs_setup=any(j.needs_setup for j in jobs),
                retries=max(j.retries for j in jobs),
                timeout_s=cluster_timeout,
                requirements=jobs[0].requirements,
                payload=run_all if has_payloads else None,
            )
        )

    def mapped(name: str) -> str:
        return member_to_cluster.get(name, name)

    for parent, child in dag.edges():
        mp, mc = mapped(parent), mapped(child)
        if mp != mc:
            try:
                new_dag.add_edge(mp, mc)
            except ValueError:
                # Two members of different clusters with edges in both
                # directions would cycle; clustering by level prevents
                # this, so reaching here is a bug.
                raise

    job_map = {
        abstract: mapped(executable)
        for abstract, executable in planned.job_map.items()
    }
    return PlannedWorkflow(dag=new_dag, site=planned.site, job_map=job_map)
