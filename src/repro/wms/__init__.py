"""A Pegasus-like workflow management system.

Pegasus maps *abstract* workflows (DAX: jobs, logical files, dependency
edges) onto *executable* DAGs for a concrete site, then hands those to
DAGMan. This package mirrors that architecture:

* :mod:`repro.wms.dax` — the abstract workflow model and DAX XML I/O,
* :mod:`repro.wms.catalogs` — replica, transformation, and site catalogs,
* :mod:`repro.wms.planner` — the mapper: site selection, stage-in/out
  and cleanup jobs, task clustering, OSG setup decoration,
* :mod:`repro.wms.statistics` — ``pegasus-statistics`` equivalents
  (Workflow Wall Time, per-task Kickstart/Waiting/Download-Install),
* :mod:`repro.wms.analyzer` — ``pegasus-analyzer``-style failure reports,
* :mod:`repro.wms.monitor` — JSONL event log (trace persistence),
* :mod:`repro.wms.cli` — ``pegasus-plan/run/status/statistics/analyzer``
  style command-line entry points.
"""

from repro.wms.dax import ADag, AbstractJob, File, LinkType
from repro.wms.catalogs import (
    ReplicaCatalog,
    SiteCatalog,
    SiteEntry,
    TransformationCatalog,
    TransformationEntry,
)
from repro.wms.planner import PlannerOptions, plan
from repro.wms.statistics import WorkflowStatistics, summarize

__all__ = [
    "ADag",
    "AbstractJob",
    "File",
    "LinkType",
    "ReplicaCatalog",
    "SiteCatalog",
    "SiteEntry",
    "TransformationCatalog",
    "TransformationEntry",
    "PlannerOptions",
    "plan",
    "WorkflowStatistics",
    "summarize",
]
