"""Pegasus' three catalogs.

* **Replica catalog** — where logical files physically live (LFN → PFN
  per site); the planner uses it to source stage-in transfers.
* **Transformation catalog** — where executables are installed, per
  site, and (our extension) an optional Python ``payload_factory`` that
  binds the real task callable for local execution.
* **Site catalog** — the execution sites and the properties the paper's
  comparison turns on: shared filesystem or not, pre-installed software
  or not, and which network model reaches the site.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro.sim.network import CAMPUS_SHARED_FS, WAN, NetworkModel

__all__ = [
    "ReplicaCatalog",
    "TransformationEntry",
    "TransformationCatalog",
    "SiteEntry",
    "SiteCatalog",
    "sandhills_site",
    "osg_site",
    "cloud_site",
    "local_site",
]

#: Intra-datacenter object-store bandwidth for the cloud site.
DATACENTER = NetworkModel(
    name="datacenter", bandwidth_bytes_per_s=100e6, latency_s=0.05
)


class ReplicaCatalog:
    """LFN → (PFN, site) mappings."""

    def __init__(self) -> None:
        self._entries: dict[str, list[tuple[str, str]]] = {}

    def add(self, lfn: str, pfn: str, *, site: str = "local") -> None:
        if not lfn:
            raise ValueError("lfn must be non-empty")
        self._entries.setdefault(lfn, []).append((pfn, site))

    def lookup(self, lfn: str, *, site: str | None = None) -> list[str]:
        """PFNs for a logical file, optionally restricted to a site."""
        pfns = self._entries.get(lfn, [])
        return [p for p, s in pfns if site is None or s == site]

    def has(self, lfn: str) -> bool:
        return lfn in self._entries

    def entries(self) -> Iterator[tuple[str, str, str]]:
        """Every (lfn, pfn, site) mapping, in insertion order."""
        for lfn, pfns in self._entries.items():
            for pfn, site in pfns:
                yield lfn, pfn, site

    def __len__(self) -> int:
        return len(self._entries)


@dataclass(frozen=True)
class TransformationEntry:
    """One executable: where it is installed and how to invoke it.

    ``payload_factory(args)`` returns a zero-argument callable for the
    real local executor; modelled-only transformations leave it None.
    ``installed_sites`` lists sites with the software pre-deployed —
    on other sites the planner adds a download/install step.
    """

    name: str
    pfn: str = ""
    installed_sites: frozenset[str] = field(default_factory=frozenset)
    payload_factory: Callable[[Mapping[str, Any]], Callable[[], Any]] | None = (
        None
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("transformation name must be non-empty")

    def installed_at(self, site: str) -> bool:
        return site in self.installed_sites


class TransformationCatalog:
    """Transformation name → entry."""

    def __init__(self) -> None:
        self._entries: dict[str, TransformationEntry] = {}

    def add(self, entry: TransformationEntry) -> None:
        if entry.name in self._entries:
            raise ValueError(f"duplicate transformation: {entry.name!r}")
        self._entries[entry.name] = entry

    def lookup(self, name: str) -> TransformationEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(f"transformation not in catalog: {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)


@dataclass(frozen=True)
class SiteEntry:
    """One execution site's planner-relevant properties."""

    name: str
    shared_filesystem: bool
    software_preinstalled: bool
    network: NetworkModel
    scratch_dir: str = "/scratch"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("site name must be non-empty")


class SiteCatalog:
    """Site name → entry."""

    def __init__(self) -> None:
        self._entries: dict[str, SiteEntry] = {}

    def add(self, entry: SiteEntry) -> None:
        if entry.name in self._entries:
            raise ValueError(f"duplicate site: {entry.name!r}")
        self._entries[entry.name] = entry

    def lookup(self, name: str) -> SiteEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(f"site not in catalog: {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[SiteEntry]:
        """Entries in site-name order."""
        for name in sorted(self._entries):
            yield self._entries[name]

    def names(self) -> list[str]:
        """Registered site names, sorted."""
        return sorted(self._entries)


def sandhills_site() -> SiteEntry:
    """The campus cluster: shared FS, maintained software stack."""
    return SiteEntry(
        name="sandhills",
        shared_filesystem=True,
        software_preinstalled=True,
        network=CAMPUS_SHARED_FS,
        scratch_dir="/work/group",
    )


def osg_site() -> SiteEntry:
    """The grid: no shared FS, heterogeneous software, WAN staging."""
    return SiteEntry(
        name="osg",
        shared_filesystem=False,
        software_preinstalled=False,
        network=WAN,
        scratch_dir="/tmp/osg-scratch",
    )


def cloud_site() -> SiteEntry:
    """The cloud (paper's future work): machine images carry the
    software (no per-job setup), data moves via the object store."""
    return SiteEntry(
        name="cloud",
        shared_filesystem=False,
        software_preinstalled=True,  # baked into the VM image
        network=DATACENTER,
        scratch_dir="/mnt/scratch",
    )


def local_site() -> SiteEntry:
    """The submit host itself (for real local runs)."""
    return SiteEntry(
        name="local",
        shared_filesystem=True,
        software_preinstalled=True,
        network=CAMPUS_SHARED_FS,
        scratch_dir="/tmp",
    )
