"""Provenance tracking: where every file came from.

§III: "Pegasus has capabilities for provenance tracking, execution
monitoring and management, and error recovery." This module implements
the tracking half: a queryable record of which job produced each
logical file from which inputs (*prospective* provenance, from the
abstract workflow), optionally joined with the execution trace
(*retrospective* provenance: which machine, when, after how many
attempts).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dagman.events import JobAttempt, WorkflowTrace
from repro.wms.dax import ADag

__all__ = ["Derivation", "ProvenanceDB"]


@dataclass(frozen=True)
class Derivation:
    """One step of a file's history."""

    file: str
    producer: str  # job id ("" for workflow-external inputs)
    transformation: str
    inputs: tuple[str, ...]
    #: filled by record_run(): the successful attempt that made it
    attempt: JobAttempt | None = None


class ProvenanceDB:
    """Prospective + retrospective provenance for one workflow."""

    def __init__(self, adag: ADag) -> None:
        self.adag = adag
        self._producer_of: dict[str, str] = adag.producers()
        self._inputs_of: dict[str, tuple[str, ...]] = {
            job.id: tuple(f.name for f in job.inputs())
            for job in adag.jobs.values()
        }
        self._attempts: dict[str, JobAttempt] = {}

    # -- recording --------------------------------------------------------

    def record_run(self, trace: WorkflowTrace) -> int:
        """Attach the final successful attempt of each job; returns the
        number of jobs with recorded execution."""
        for attempt in trace.successful():
            self._attempts[attempt.job_name] = attempt
        return len(self._attempts)

    # -- queries ------------------------------------------------------------

    def producer(self, file_name: str) -> str | None:
        """Job id that outputs ``file_name`` (None for external inputs)."""
        return self._producer_of.get(file_name)

    def derivation(self, file_name: str) -> Derivation:
        """The immediate derivation step of a file."""
        producer = self._producer_of.get(file_name)
        if producer is None:
            return Derivation(
                file=file_name, producer="", transformation="(external)",
                inputs=(),
            )
        job = self.adag.jobs[producer]
        return Derivation(
            file=file_name,
            producer=producer,
            transformation=job.transformation,
            inputs=self._inputs_of[producer],
            attempt=self._attempts.get(producer),
        )

    def lineage(self, file_name: str) -> list[Derivation]:
        """Every derivation step reachable from ``file_name`` back to
        the workflow-external inputs, deduplicated, leaf-first."""
        seen: set[str] = set()
        order: list[Derivation] = []

        def visit(name: str) -> None:
            if name in seen:
                return
            seen.add(name)
            step = self.derivation(name)
            for parent in step.inputs:
                visit(parent)
            order.append(step)

        visit(file_name)
        return order

    def contributing_jobs(self, file_name: str) -> list[str]:
        """Ids of every job that transitively contributed to a file."""
        return [d.producer for d in self.lineage(file_name) if d.producer]

    def external_sources(self, file_name: str) -> list[str]:
        """The workflow-external inputs a file ultimately derives from."""
        return [
            d.file for d in self.lineage(file_name) if not d.producer
        ]

    # -- reporting ------------------------------------------------------------

    def report(self, file_name: str) -> str:
        """Human-readable derivation history of one file."""
        lines = [f"provenance of {file_name!r}:"]
        for step in reversed(self.lineage(file_name)):
            if not step.producer:
                lines.append(f"  {step.file}  <- external input")
                continue
            execution = ""
            if step.attempt is not None:
                a = step.attempt
                execution = (
                    f"  [ran on {a.machine} at t={a.exec_start:.0f}s, "
                    f"attempt {a.attempt}]"
                )
            lines.append(
                f"  {step.file}  <- {step.transformation}"
                f"({', '.join(step.inputs)}){execution}"
            )
        return "\n".join(lines)
