"""Command-line tools mirroring the Pegasus user experience.

The paper's §III workflow: ``pegasus-plan`` → ``pegasus-run`` →
``pegasus-status`` → ``pegasus-statistics`` / ``pegasus-analyzer``.
Our equivalents operate on a *submit directory*:

* ``repro-plan``   — build the blast2cap3 DAX for a given *n*, plan it
  for a site, and write ``workflow.dax`` + ``workflow.dag`` into the
  submit directory;
* ``repro-run``    — execute the planned workflow on the simulated
  platform; streams ``events.jsonl`` live and leaves ``trace.jsonl``,
  ``trace.chrome.json`` (open in Perfetto / about://tracing),
  ``trace.otlp.json`` (OTLP-JSON causal spans), ``trace.perfetto.json``
  (Perfetto TracePackets), ``utilization.tsv`` and ``metrics.json``
  behind;
* ``repro-status`` — pegasus-status-style view from ``events.jsonl``
  (``--follow`` tails a run in flight);
* ``repro-statistics`` — print the pegasus-statistics report;
* ``repro-analyzer``   — print the failure post-mortem.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.util.iolib import atomic_write

__all__ = [
    "main_plan",
    "main_run",
    "main_status",
    "main_statistics",
    "main_analyzer",
    "main_plots",
]

PLAN_FILE = "plan.json"
TRACE_FILE = "trace.jsonl"
EVENTS_FILE = "events.jsonl"
CHROME_TRACE_FILE = "trace.chrome.json"
OTLP_TRACE_FILE = "trace.otlp.json"
PERFETTO_TRACE_FILE = "trace.perfetto.json"
UTILIZATION_FILE = "utilization.tsv"
METRICS_FILE = "metrics.json"


def _submit_dir(path: str) -> Path:
    d = Path(path)
    d.mkdir(parents=True, exist_ok=True)
    return d


def main_plan(argv: list[str] | None = None) -> int:
    """``repro-plan``: DAX + executable DAG into a submit directory."""
    parser = argparse.ArgumentParser(
        prog="repro-plan",
        description="Plan the blast2cap3 workflow for a site (paper scale).",
    )
    parser.add_argument("--submit-dir", required=True)
    parser.add_argument("-n", "--clusters", type=int, default=100,
                        help="number of transcript cluster partitions")
    parser.add_argument("--site", choices=("sandhills", "osg", "cloud"),
                        default="sandhills")
    parser.add_argument("--retries", type=int, default=5)
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-job timeout in (platform) seconds; hung "
                             "attempts are killed and retried")
    parser.add_argument("--cluster-size", type=int, default=1,
                        help="horizontal task clustering (Pegasus-style)")
    parser.add_argument("--cleanup", action="store_true",
                        help="add cleanup jobs for intermediate files")
    args = parser.parse_args(argv)

    from repro.core.workflow_factory import build_blast2cap3_adag, default_catalogs
    from repro.perfmodel.task_models import PaperTaskModel
    from repro.wms.planner import PlannerOptions, PlanningError, plan

    submit = _submit_dir(args.submit_dir)
    model = PaperTaskModel()
    adag = build_blast2cap3_adag(args.clusters, model=model)
    adag.write(submit / "workflow.dax")

    sites, transformations, replicas = default_catalogs()
    try:
        planned = plan(
            adag,
            site_name=args.site,
            sites=sites,
            transformations=transformations,
            replicas=replicas,
            options=PlannerOptions(
                retries=args.retries,
                timeout_s=args.timeout,
                cluster_size=args.cluster_size,
                add_cleanup=args.cleanup,
            ),
        )
    except PlanningError as exc:
        # Includes the pre-flight linter's fail-fast (LintFailure).
        print(str(exc), file=sys.stderr)
        return 1
    planned.dag.write_dagfile(submit / "workflow.dag")
    # Runtimes and decorations do not live in the .dag file; persist
    # them the way Pegasus persists per-job submit files.
    plan_meta = {
        "site": args.site,
        "n": args.clusters,
        "jobs": {
            name: {
                "transformation": job.transformation,
                "runtime": job.runtime,
                "needs_setup": job.needs_setup,
                "retries": job.retries,
                "timeout_s": job.timeout_s,
                "requirements": job.requirements,
                "priority": job.priority,
            }
            for name, job in planned.dag.jobs.items()
        },
        "edges": sorted(planned.dag.edges()),
    }
    atomic_write(submit / PLAN_FILE, json.dumps(plan_meta, indent=2))
    print(f"planned {len(planned.dag)} jobs for site {args.site!r}")
    print(f"submit dir: {submit}")
    print(f"run with: repro-run --submit-dir {submit}")
    return 0


def main_run(argv: list[str] | None = None) -> int:
    """``repro-run``: execute the planned workflow on the simulator.

    The run is fully observed: the event bus streams ``events.jsonl``
    as the (virtual) run progresses — tail it with ``repro-status
    --follow`` from another terminal — and on completion the submit
    directory holds the Chrome trace, the sampled utilization series,
    and the metrics snapshot alongside the classic attempt trace.
    """
    parser = argparse.ArgumentParser(
        prog="repro-run", description="Execute a planned workflow (simulated)."
    )
    parser.add_argument("--submit-dir", required=True)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sample-interval", type=float, default=60.0,
                        help="utilization sampling cadence in simulated "
                             "seconds (0 disables sampling)")
    parser.add_argument("--max-rescue-rounds", type=int, default=1,
                        help="automatic rescue-DAG resubmits: run up to K "
                             "rounds before giving up (1 = no resubmit)")
    parser.add_argument("--retry-policy",
                        choices=("immediate", "fixed", "backoff"),
                        default="immediate",
                        help="how DAGMan requeues failed jobs")
    parser.add_argument("--retry-delay", type=float, default=30.0,
                        help="delay (fixed) / base delay (backoff) for "
                             "delayed retry policies, in seconds")
    parser.add_argument("--free-evictions", action="store_true",
                        help="platform evictions requeue without consuming "
                             "a DAGMan RETRY")
    parser.add_argument("--chaos-start-failure", type=float, default=0.0,
                        help="inject extra dead-on-arrival probability")
    parser.add_argument("--chaos-eviction-rate", type=float, default=0.0,
                        help="inject extra evictions (rate per second)")
    parser.add_argument("--chaos-outage", default=None,
                        metavar="SITE,START,END",
                        help="inject a site outage window (jobs arriving "
                             "on SITE between START and END seconds fail)")
    parser.add_argument("--blacklist-threshold", type=int, default=0,
                        help="blacklist a machine after this many "
                             "consecutive start failures (0 = off)")
    parser.add_argument("--blacklist-cooldown", type=float, default=0.0,
                        help="seconds before a blacklisted machine gets "
                             "another chance (0 = permanent)")
    parser.add_argument("--journal", default=None, metavar="DIR",
                        help="write a crash-consistent write-ahead journal "
                             "to DIR; a killed run resumes with --resume DIR")
    parser.add_argument("--resume", default=None, metavar="DIR",
                        help="resume a crashed run from its journal "
                             "directory (continues journaling there)")
    parser.add_argument("--journal-snapshot-every", type=int, default=1000,
                        help="journal compaction floor: snapshot once the "
                             "WAL suffix reaches max(N, state size) records "
                             "(bounds recovery replay)")
    parser.add_argument("--journal-fsync",
                        choices=("always", "batch", "never"),
                        default="batch",
                        help="journal fsync policy: per record, batched "
                             "(~1k records + every snapshot), or never")
    parser.add_argument("--crash-at-record", type=int, default=0,
                        metavar="N",
                        help="testing: crash the manager at the Nth journal "
                             "record, leaving a torn tail (needs --journal)")
    parser.add_argument("--crash-mode", choices=("kill", "raise"),
                        default="kill",
                        help="testing: SIGKILL the process (kill) or raise "
                             "CrashInjected in-process (raise)")
    parser.add_argument("--grid-matchmaker",
                        choices=("indexed", "linear"),
                        default="indexed",
                        help="OSG matchmaking strategy: capability-signature "
                             "buckets (indexed) or the historical full "
                             "rescan (linear, the equivalence oracle)")
    args = parser.parse_args(argv)

    from repro.observe import (
        AnomalyMonitor,
        EventBus,
        EventKind,
        EventLogWriter,
        EventRecorder,
        SpanTracer,
        UtilizationSampler,
        derive_trace_id,
        instrument,
        write_chrome_trace,
        write_otlp_trace,
        write_perfetto_trace,
    )
    from repro.resilience import (
        Blacklist,
        BlacklistPolicy,
        CrashFault,
        CrashInjected,
        Eviction,
        ExponentialBackoff,
        FaultInjector,
        FaultPlan,
        FixedDelayRetry,
        Journal,
        JournalError,
        SiteOutage,
        StartFailure,
        reconcile_local,
        recover,
        run_with_recovery,
    )
    from repro.sim.cloud import CloudPlatform
    from repro.sim.cluster import CampusCluster
    from repro.sim.engine import Simulator
    from repro.sim.grid import GridConfig, OpportunisticGrid
    from repro.sim.rng import RngStreams
    from repro.wms.monitor import write_trace

    from repro.observe.report import dag_from_plan_meta

    submit = Path(args.submit_dir)
    meta = json.loads((submit / PLAN_FILE).read_text())
    dag = dag_from_plan_meta(meta)

    # Admission check with the same feasibility engine the linter and
    # planner use: a requirement no slot of the target pool can ever
    # satisfy means the paper's silent-idle failure mode. Warn, don't
    # block — running doomed plans on the simulator is a legitimate
    # experiment (it is the paper's Fig. 3 scenario).
    from repro.lint.feasibility import default_pools, never_matchable

    pool = default_pools().get(meta["site"])
    if pool is not None:
        doomed = sorted(
            name
            for name, job in dag.jobs.items()
            if job.requirements
            and never_matchable(job.requirements, {pool.site: pool})
        )
        if doomed:
            print(
                f"warning: {len(doomed)} job(s) (e.g. {doomed[0]!r}) have "
                f"requirements no {meta['site']!r} slot can satisfy; they "
                "will idle until the unmatched timeout "
                "(repro-lint names the missing capability)",
                file=sys.stderr,
            )

    journal_dir = Path(args.journal) if args.journal else None
    resume_dir = Path(args.resume) if args.resume else None
    if resume_dir is not None and journal_dir is None:
        journal_dir = resume_dir
    if args.crash_at_record > 0 and journal_dir is None:
        print("--crash-at-record requires --journal", file=sys.stderr)
        return 2

    recovered = None
    if resume_dir is not None:
        try:
            recovered = recover(resume_dir)
        except JournalError as exc:
            print(f"cannot resume: {exc}", file=sys.stderr)
            return 2
        if recovered.complete:
            done = bool(recovered.state.workflow_done)
            print(
                f"journal at {resume_dir} records a "
                f"{'succeeded' if done else 'FAILED'} workflow; "
                "nothing to resume"
            )
            return 0 if done else 1
        try:
            reconciled = reconcile_local(recovered)
        except JournalError as exc:
            print(f"cannot resume: {exc}", file=sys.stderr)
            return 2
        interop = recovered.write_rescue(
            dag, submit / f"{dag.name}.resume.dag"
        )
        print(
            f"resuming from {resume_dir}: {len(recovered.done)} job(s) "
            f"already done, {recovered.replayed} record(s) replayed"
            + (" after truncating a torn tail" if recovered.torn_tail
               else "")
        )
        if reconciled.requeued:
            print(
                f"requeueing {len(reconciled.requeued)} in-flight job(s): "
                + ", ".join(reconciled.requeued[:5])
                + ("..." if len(reconciled.requeued) > 5 else "")
            )
        if reconciled.reaped:
            print(
                f"reaped {len(reconciled.reaped)} orphaned worker(s): "
                + ", ".join(str(p) for p in reconciled.reaped)
            )
        print(f"resume state written to {interop.name}")

    # If this plan would benefit from a journal and none was asked for,
    # say so — same advice the linter gives as PLAN006.
    if journal_dir is None:
        from repro.lint.plan_rules import durability_advice

        advice = durability_advice(dag)
        if advice:
            print(
                f"warning: {advice}; run with --journal DIR to make the "
                "run resumable (repro-lint PLAN006)",
                file=sys.stderr,
            )

    simulator = Simulator(
        start_time=recovered.clock if recovered is not None else 0.0
    )
    streams = RngStreams(seed=args.seed)
    bus = EventBus()
    recorder = EventRecorder(bus)
    metrics = instrument(bus)
    # A resumed run extends the pre-crash trace: the journal carries
    # the trace id forward, so both processes' spans share one trace
    # and the resumed workflow span links back to the original root.
    trace_id = (
        recovered.trace_id
        if recovered is not None and recovered.trace_id
        else derive_trace_id(f"{dag.name}:{args.seed}")
    )
    tracer = SpanTracer(trace_id=trace_id, bus=bus)
    monitor = AnomalyMonitor(bus)

    faults = []
    if args.chaos_start_failure > 0:
        faults.append(StartFailure(args.chaos_start_failure))
    if args.chaos_eviction_rate > 0:
        faults.append(Eviction(args.chaos_eviction_rate))
    if args.chaos_outage:
        try:
            outage_site, start_s, end_s = args.chaos_outage.split(",")
            faults.append(
                SiteOutage(outage_site, float(start_s), float(end_s))
            )
        except ValueError:
            print(f"bad --chaos-outage {args.chaos_outage!r} "
                  "(want SITE,START,END)", file=sys.stderr)
            return 2
    injector = None
    if faults:
        injector = FaultInjector(
            FaultPlan(tuple(faults)), rng=streams.stream("faults"), bus=bus
        )
    blacklist_policy = None
    if args.blacklist_threshold > 0:
        blacklist_policy = BlacklistPolicy(
            threshold=args.blacklist_threshold,
            cooldown_s=args.blacklist_cooldown or None,
        )
    blacklist = None
    if recovered is not None:
        # Journaled blacklist state (snapshot + WAL suffix) survives the
        # crash: a tripped breaker stays tripped across the restart.
        blacklist = recovered.restore_blacklist(
            policy=blacklist_policy, bus=bus
        )
    if blacklist is None and blacklist_policy is not None:
        blacklist = Blacklist(blacklist_policy, bus=bus)
    retry_policy = None
    if args.retry_policy == "fixed":
        retry_policy = FixedDelayRetry(
            args.retry_delay, charge_evictions=not args.free_evictions
        )
    elif args.retry_policy == "backoff":
        retry_policy = ExponentialBackoff(
            base_s=args.retry_delay, seed=args.seed,
            charge_evictions=not args.free_evictions,
        )
    elif args.free_evictions:
        from repro.resilience import ImmediateRetry

        retry_policy = ImmediateRetry(charge_evictions=False)

    env: CampusCluster | CloudPlatform | OpportunisticGrid
    if meta["site"] == "sandhills":
        env = CampusCluster(simulator, streams=streams, bus=bus,
                            injector=injector, blacklist=blacklist)
    elif meta["site"] == "cloud":
        env = CloudPlatform(simulator, streams=streams, bus=bus,
                            injector=injector)
    else:
        env = OpportunisticGrid(
            simulator, GridConfig(matchmaker=args.grid_matchmaker),
            streams=streams, bus=bus,
            injector=injector, blacklist=blacklist,
        )

    sampler = None

    def on_round_start(scheduler, round_no) -> None:
        nonlocal sampler
        if args.sample_interval <= 0:
            return
        if sampler is None:
            sampler = UtilizationSampler(
                simulator, env, interval_s=args.sample_interval, bus=bus
            )
        # (Re)start each round: the sampler parks itself whenever the
        # simulator drains between rounds.
        sampler.start()

    journal = None
    if journal_dir is not None:
        crash = None
        if args.crash_at_record > 0:
            crash = CrashFault(args.crash_at_record, mode=args.crash_mode)
        try:
            journal = Journal(
                journal_dir,
                bus=bus,
                snapshot_every=args.journal_snapshot_every,
                fsync=args.journal_fsync,
                crash=crash,
                resume=recovered,
            )
        except JournalError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if blacklist is not None:
            journal.attach_blacklist(blacklist)
        journal.record_trace_id(trace_id)

    # Truncate any previous event log, then stream this run into it —
    # unless resuming, where the new events append after the old ones
    # and the merged log reads as one continuous run.
    if recovered is None:
        (submit / EVENTS_FILE).write_text("")
    try:
        with EventLogWriter(submit / EVENTS_FILE, bus):
            outcome = run_with_recovery(
                dag,
                env,
                max_rounds=args.max_rescue_rounds,
                rescue_dir=submit,
                bus=bus,
                on_round_start=on_round_start,
                retry_policy=retry_policy,
                journal=journal,
                resume=recovered,
            )
    except CrashInjected as exc:
        print(
            f"crash injected: {exc}; resume with repro-run "
            f"--submit-dir {submit} --resume {journal_dir}",
            file=sys.stderr,
        )
        return 3
    finally:
        if journal is not None:
            journal.close()
    result = outcome.final

    write_trace(submit / TRACE_FILE, outcome.trace)
    write_chrome_trace(
        submit / CHROME_TRACE_FILE, outcome.trace,
        samples=sampler.samples if sampler is not None else None,
        events=recorder.events,
        workflow=dag.name,
    )
    spans = tracer.finish()
    write_otlp_trace(submit / OTLP_TRACE_FILE, spans)
    write_perfetto_trace(submit / PERFETTO_TRACE_FILE, spans)
    if sampler is not None:
        atomic_write(
            submit / UTILIZATION_FILE,
            "time_s\tbusy\tidle\n"
            + "".join(
                f"{s.time:.0f}\t{s.busy}\t{s.idle}\n" for s in sampler.samples
            ),
        )
    atomic_write(
        submit / METRICS_FILE, json.dumps(metrics.snapshot(), indent=2)
    )
    print(
        f"workflow {'succeeded' if outcome.success else 'FAILED'} in "
        f"{outcome.trace.wall_time():.0f} simulated seconds "
        f"({outcome.trace.retry_count} retries, "
        f"{len(outcome.rounds)} round(s))"
    )
    if not outcome.success:
        print(
            f"unrecovered: {len(result.failed_jobs)} failed, "
            f"{len(result.unrunnable_jobs)} unrunnable"
            + (
                f"; rescue files: "
                + ", ".join(p.name for p in outcome.rescue_paths)
                if outcome.rescue_paths
                else ""
            )
        )
    terminal = sum(
        1 for e in recorder.events
        if e.kind in (EventKind.FINISH, EventKind.EVICT)
    )
    print(
        f"observability: {len(recorder.events)} events "
        f"({terminal} terminal), {len(spans)} spans "
        f"(trace {trace_id}) -> {EVENTS_FILE}, {CHROME_TRACE_FILE}, "
        f"{OTLP_TRACE_FILE}, {PERFETTO_TRACE_FILE}"
        + (f", {UTILIZATION_FILE}" if sampler is not None else "")
        + f", {METRICS_FILE}"
    )
    if monitor.alerts:
        print(f"anomalies: {len(monitor.alerts)} alert(s) — latest: "
              + ", ".join(a.kind.value for a in monitor.alerts[-3:]))
    if journal_dir is not None:
        print(f"journal: {journal_dir}")
    if isinstance(env, CloudPlatform):
        print(f"cloud cost: ${env.billed_cost():.2f} "
              f"({env.instance_seconds():.0f} instance-seconds)")
    return 0 if outcome.success else 1


def _load_trace(submit_dir: str):
    from repro.wms.monitor import read_trace

    path = Path(submit_dir) / TRACE_FILE
    if not path.exists():
        print(f"no trace at {path}; run repro-run first", file=sys.stderr)
        raise SystemExit(2)
    return read_trace(path)


def main_status(argv: list[str] | None = None) -> int:
    """``repro-status``: pegasus-status-style progress view.

    With an ``events.jsonl`` in the submit directory (written live by
    ``repro-run``) this renders the full live view — state histogram,
    in-flight jobs with their current phase, failure/retry counters.
    ``--follow`` keeps tailing the log until the workflow ends. Without
    an event log it falls back to the classic one-liner from
    ``trace.jsonl``.
    """
    parser = argparse.ArgumentParser(prog="repro-status")
    parser.add_argument("--submit-dir", required=True)
    parser.add_argument("--follow", action="store_true",
                        help="keep tailing events.jsonl until workflow end")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="poll interval for --follow, in seconds")
    args = parser.parse_args(argv)

    submit = Path(args.submit_dir)
    meta = json.loads((submit / PLAN_FILE).read_text())
    total_jobs = len(meta["jobs"])
    events_path = submit / EVENTS_FILE

    if not events_path.exists():
        from repro.wms.monitor import progress_line

        trace = _load_trace(args.submit_dir)
        print(progress_line(trace, total_jobs=total_jobs))
        return 0

    import time

    from repro.observe import StatusView, iter_events
    from repro.observe.log import event_from_json

    view = StatusView(total_jobs=total_jobs)
    if not args.follow:
        view.feed(iter_events(events_path))
        print(view.render())
        return 0

    # Tail mode: consume appended lines until workflow.end (or ^C).
    with open(events_path, encoding="utf-8") as fh:
        buffered = ""
        try:
            while True:
                chunk = fh.readline()
                if chunk:
                    buffered += chunk
                    if not buffered.endswith("\n"):
                        continue  # partial line; wait for the rest
                    view.update(event_from_json(json.loads(buffered)))
                    buffered = ""
                    continue
                print(view.render())
                print("---")
                if view.workflow_done is not None:
                    return 0 if view.workflow_done else 1
                time.sleep(args.interval)
        except KeyboardInterrupt:
            return 130


def main_statistics(argv: list[str] | None = None) -> int:
    """``repro-statistics``: the summary + per-task breakdown report."""
    parser = argparse.ArgumentParser(prog="repro-statistics")
    parser.add_argument("--submit-dir", required=True)
    args = parser.parse_args(argv)

    from repro.wms.statistics import render_report, summarize

    trace = _load_trace(args.submit_dir)
    # The plan's job count makes the report honest about descendants of
    # failed jobs that never got to run (planned vs attempted).
    expected = None
    plan_path = Path(args.submit_dir) / PLAN_FILE
    if plan_path.exists():
        expected = len(json.loads(plan_path.read_text())["jobs"])
    print(render_report(summarize(trace, expected_jobs=expected),
                        title=args.submit_dir))
    return 0


def main_plots(argv: list[str] | None = None) -> int:
    """``repro-plots``: text gantt chart and utilization strip."""
    parser = argparse.ArgumentParser(prog="repro-plots")
    parser.add_argument("--submit-dir", required=True)
    parser.add_argument("--width", type=int, default=72)
    parser.add_argument("--max-rows", type=int, default=40)
    args = parser.parse_args(argv)

    from repro.wms.plots import gantt, utilization, utilization_series

    trace = _load_trace(args.submit_dir)
    print(gantt(trace, width=args.width, max_rows=args.max_rows))
    print()
    print(utilization(trace))
    sampled = Path(args.submit_dir) / UTILIZATION_FILE
    if sampled.exists():
        from repro.observe import UtilizationSample

        samples = []
        for line in sampled.read_text().splitlines()[1:]:
            t, busy, idle = line.split("\t")
            samples.append(
                UtilizationSample(float(t), int(busy), int(idle))
            )
        print()
        print(utilization_series(samples, width=args.width))
    return 0


def main_analyzer(argv: list[str] | None = None) -> int:
    """``repro-analyzer``: failure post-mortem from the trace."""
    parser = argparse.ArgumentParser(prog="repro-analyzer")
    parser.add_argument("--submit-dir", required=True)
    args = parser.parse_args(argv)

    from repro.dagman.events import JobStatus

    trace = _load_trace(args.submit_dir)
    failures = trace.failures()
    succeeded = {a.job_name for a in trace.successful()}
    print(f"attempts: {len(trace)}  failures/evictions: {len(failures)}")
    hard_failed = sorted(
        {a.job_name for a in failures if a.job_name not in succeeded}
    )
    if not hard_failed:
        print("all jobs eventually succeeded"
              + (f" (after {trace.retry_count} retries)" if trace.retry_count else ""))
        return 0
    for name in hard_failed:
        attempts = trace.for_job(name)
        print(f"==== {name}: {len(attempts)} attempt(s) ====")
        for a in attempts:
            status = a.status.value
            err = f" [{a.error}]" if a.error and a.status is not JobStatus.SUCCEEDED else ""
            print(f"  #{a.attempt} on {a.machine}: {status}{err}")
    return 1
