"""Trace persistence: the monitord-style JSONL event log.

Every finished attempt becomes one JSON line, so logs stream, append,
and survive crashes (each line is self-contained). ``pegasus-status``
style progress summaries read the same file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.dagman.events import (
    JobAttempt,
    JobStatus,
    ResourceProfile,
    WorkflowTrace,
)

__all__ = ["write_trace", "read_trace", "append_attempt", "progress_line"]

_FIELDS = (
    "job_name",
    "transformation",
    "site",
    "machine",
    "attempt",
    "submit_time",
    "setup_start",
    "exec_start",
    "exec_end",
)


def _to_dict(attempt: JobAttempt) -> dict:
    record = {name: getattr(attempt, name) for name in _FIELDS}
    record["status"] = attempt.status.value
    if attempt.error:
        record["error"] = attempt.error
    if attempt.profile is not None:
        record["profile"] = attempt.profile.to_json()
    return record


def _from_dict(record: dict) -> JobAttempt:
    profile = record.get("profile")
    return JobAttempt(
        status=JobStatus(record["status"]),
        error=record.get("error"),
        profile=(
            ResourceProfile.from_json(profile)
            if isinstance(profile, dict)
            else None
        ),
        **{name: record[name] for name in _FIELDS},
    )


def append_attempt(path: str | Path, attempt: JobAttempt) -> None:
    """Append one attempt to a JSONL log (creating it if needed)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(_to_dict(attempt)) + "\n")


def write_trace(path: str | Path, trace: WorkflowTrace | Iterable[JobAttempt]) -> int:
    """Write a whole trace as JSONL; returns the attempt count."""
    attempts = list(trace)
    payload = "".join(json.dumps(_to_dict(a)) + "\n" for a in attempts)
    from repro.util.iolib import atomic_write

    atomic_write(path, payload)
    return len(attempts)


def read_trace(path: str | Path) -> WorkflowTrace:
    """Load a JSONL log back into a trace.

    Accepts both the classic attempt-per-line logs this module writes
    and the richer :mod:`repro.observe.log` event logs — those are a
    superset schema whose terminal events (``job.finish``/``job.evict``)
    carry every attempt field. Lines describing non-terminal lifecycle
    events (submits, state changes, samples, …) are skipped, so the
    recovered trace is identical either way.
    """
    trace = WorkflowTrace()
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        if not all(name in record for name in (*_FIELDS, "status")):
            continue  # a non-terminal observe-layer event line
        trace.add(_from_dict(record))
    return trace


def progress_line(trace: WorkflowTrace, total_jobs: int) -> str:
    """A ``pegasus-status`` style one-liner.

    >>> from repro.dagman.events import WorkflowTrace
    >>> progress_line(WorkflowTrace(), 10)
    '0/10 jobs done (0.0%), 0 failures, 0 retries'
    """
    done = len({a.job_name for a in trace.successful()})
    pct = 100.0 * done / total_jobs if total_jobs else 0.0
    return (
        f"{done}/{total_jobs} jobs done ({pct:.1f}%), "
        f"{len(trace.failures())} failures, {trace.retry_count} retries"
    )
