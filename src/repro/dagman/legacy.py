"""The pre-rewrite full-rescan scheduler, kept as a test oracle.

:class:`LegacyRescanScheduler` is the DAGMan scheduling loop exactly as
it stood before the incremental ready-set rewrite: ``_submit_ready``
rebuilds and re-sorts the entire READY set from the state map on every
completion, and ``_parents_done`` rescans all parents per child. That
makes a run O(n² log n) in the job count — which is why it was
replaced — but its *behaviour* (trace, event stream, tie-break order:
priority descending, readiness FIFO) is the specification the rewrite
must match bit-for-bit.

It exists for two consumers:

* the hypothesis equivalence property in
  ``tests/test_scheduler_incremental.py``, which runs arbitrary
  generated DAGs through both schedulers on scripted environments and
  all three simulated platforms and asserts identical traces, event
  streams, and final states;
* ``benchmarks/bench_engine_throughput.py``, which measures the
  rewrite's jobs/sec speedup against this implementation.

Do not use it for real runs, and do not "fix" it: bug-for-bug fidelity
to the historical implementation is the whole point. (One consequence:
its ``_may_retry`` still mutates the failed-attempt counter as a side
effect — harmless here because the loop calls it exactly once per
completion, but the reason the incremental scheduler moved that
increment into ``_handle_completion``.)
"""

from __future__ import annotations

from repro.dagman.events import JobAttempt
from repro.dagman.scheduler import DagmanScheduler, NodeState
from repro.observe.events import EventKind

__all__ = ["LegacyRescanScheduler"]


class LegacyRescanScheduler(DagmanScheduler):
    """The historical O(n²·log n) rescan implementation (oracle only)."""

    def start(self) -> None:
        """Initialise node states and submit the initial ready set."""
        if self._started:
            raise RuntimeError("scheduler already started")
        self._started = True
        self._start_time = self.environment.now
        for name, job in self.dag.jobs.items():
            retries = (
                self.default_retries
                if self.default_retries is not None
                else job.retries
            )
            self._retries_left[name] = retries
            self._attempt[name] = 0
            self._failed_attempts[name] = 0
            if name in self.dag.done:
                self.states[name] = NodeState.DONE
            else:
                self.states[name] = NodeState.UNREADY
        self._emit(
            EventKind.WORKFLOW_START,
            detail={"jobs": len(self.dag.jobs), "name": self.dag.name},
        )
        for name in self.dag.jobs:
            if self.states[name] is NodeState.UNREADY and self._parents_done(name):
                self._set_state(name, NodeState.READY)
        self._submit_ready()

    def _parents_done(self, name: str) -> bool:
        return all(
            self.states[p] is NodeState.DONE for p in self.dag.parents(name)
        )

    def _submit_ready(self) -> None:
        ready = [
            n for n, s in self.states.items() if s is NodeState.READY
        ]
        # Highest priority first; readiness order (FIFO) breaks ties.
        ready.sort(
            key=lambda n: (
                -self.dag.jobs[n].priority,
                self._ready_seq.get(n, 0),
            )
        )
        for name in ready:
            if self.max_jobs is not None and self._in_flight >= self.max_jobs:
                return
            self._submit(name)

    def _handle_completion(self, name: str, attempt: JobAttempt) -> None:
        self.trace.add(attempt)
        if self.on_attempt is not None:
            self.on_attempt(attempt)
        self._in_flight -= 1
        if attempt.status.is_success:
            self._failed_attempts[name] = 0
            self._set_state(name, NodeState.DONE)
            # Sorted: children() is a set, and readiness order is the
            # FIFO tie-break — iterating in hash order would make run
            # outcomes depend on PYTHONHASHSEED.
            for child in sorted(self.dag.children(name)):
                if (
                    self.states[child] is NodeState.UNREADY
                    and self._parents_done(child)
                ):
                    # Same causal stamp as the incremental scheduler:
                    # this completion is what released the child.
                    self._set_state(
                        child,
                        NodeState.READY,
                        cause={
                            "released_by": name,
                            "released_attempt": attempt.attempt,
                        },
                    )
        elif self._may_retry(name, attempt):
            self._requeue(name, attempt)
        else:
            self._set_state(name, NodeState.FAILED)
            self._mark_descendants_unrunnable(name)
        self._submit_ready()

    def _may_retry(self, name: str, attempt: JobAttempt) -> bool:
        policy = self.retry_policy
        self._failed_attempts[name] += 1
        if (
            policy is not None
            and policy.budget is not None
            and self._failed_attempts[name] > policy.budget
        ):
            return False  # runaway guard: total requeues capped
        if self._is_free_requeue(attempt):
            return True
        return self._retries_left[name] > 0

    def _mark_descendants_unrunnable(self, name: str) -> None:
        stack = sorted(self.dag.children(name))
        while stack:
            node = stack.pop()
            if self.states[node] in (NodeState.UNREADY, NodeState.READY):
                self._set_state(node, NodeState.UNRUNNABLE)
                stack.extend(sorted(self.dag.children(node)))
