"""A Condor schedd + negotiator simulation.

The OSG model in :mod:`repro.sim.grid` treats preemption as an
exponential hazard. This module builds the *mechanism* that hazard
abstracts: an HTCondor-style pool where

* a **schedd** keeps a job queue with the condor_q lifecycle
  (IDLE → RUNNING → COMPLETED, plus HELD and REMOVED),
* a **negotiator** runs periodic matchmaking cycles, ordering users by
  fair-share priority (accumulated usage, exponentially decayed) and
  matching their idle jobs against free machine ClassAds,
* optionally, a starving better-priority user **preempts** the
  worst-priority running job — exactly the "resources that belong to
  other VO groups … the OSG user job may be cancelled or held" dynamic
  of §VI-A.

The pool runs on the shared :class:`repro.sim.engine.Simulator` clock,
so fair-share, preemption and negotiation cadence are all inspectable
in virtual time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from repro.dagman.condor import ClassAd, match
from repro.sim.engine import Simulator
from repro.util.tables import Table

__all__ = ["JobState", "QueuedJob", "Schedd", "CondorPool"]


class JobState(Enum):
    """condor_q states."""

    IDLE = "I"
    RUNNING = "R"
    HELD = "H"
    COMPLETED = "C"
    REMOVED = "X"


@dataclass
class QueuedJob:
    """One queue entry (cluster.proc identity, Condor style)."""

    job_id: str
    owner: str
    ad: ClassAd
    runtime: float
    state: JobState = JobState.IDLE
    submit_time: float = 0.0
    start_time: float | None = None
    end_time: float | None = None
    machine: str | None = None
    hold_reason: str | None = None
    preemptions: int = 0
    on_complete: Callable[["QueuedJob"], None] | None = None
    _finish_event: object | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.runtime <= 0:
            raise ValueError("runtime must be positive")


class Schedd:
    """The job queue and its operations (submit/hold/release/remove)."""

    def __init__(self, simulator: Simulator) -> None:
        self.simulator = simulator
        self.jobs: dict[str, QueuedJob] = {}
        self._cluster = 0
        #: invoked when new work appears (submit/release); the pool's
        #: negotiator uses it to wake from dormancy.
        self.on_new_work: Callable[[], None] | None = None

    def submit(
        self,
        *,
        owner: str,
        runtime: float,
        ad: ClassAd | None = None,
        on_complete: Callable[[QueuedJob], None] | None = None,
    ) -> QueuedJob:
        """Queue a job; it idles until a negotiation cycle matches it."""
        self._cluster += 1
        job = QueuedJob(
            job_id=f"{self._cluster}.0",
            owner=owner,
            ad=ad or ClassAd(name=f"job-{self._cluster}"),
            runtime=runtime,
            submit_time=self.simulator.now,
            on_complete=on_complete,
        )
        self.jobs[job.job_id] = job
        if self.on_new_work is not None:
            self.on_new_work()
        return job

    def hold(self, job_id: str, reason: str = "held by user") -> None:
        """condor_hold: an idle job leaves matchmaking until released."""
        job = self.jobs[job_id]
        if job.state is not JobState.IDLE:
            raise ValueError(
                f"can only hold idle jobs; {job_id} is {job.state.name}"
            )
        job.state = JobState.HELD
        job.hold_reason = reason

    def release(self, job_id: str) -> None:
        """condor_release: back to IDLE."""
        job = self.jobs[job_id]
        if job.state is not JobState.HELD:
            raise ValueError(f"{job_id} is not held")
        job.state = JobState.IDLE
        job.hold_reason = None
        if self.on_new_work is not None:
            self.on_new_work()

    def remove(self, job_id: str) -> None:
        """condor_rm: remove an idle or held job from the queue."""
        job = self.jobs[job_id]
        if job.state in (JobState.COMPLETED, JobState.REMOVED):
            return
        if job.state is JobState.RUNNING:
            raise ValueError("remove running jobs via the pool (preempt)")
        job.state = JobState.REMOVED

    def idle_jobs(self) -> list[QueuedJob]:
        return [
            j for j in self.jobs.values() if j.state is JobState.IDLE
        ]

    def running_jobs(self) -> list[QueuedJob]:
        return [
            j for j in self.jobs.values() if j.state is JobState.RUNNING
        ]

    def condor_q(self) -> str:
        """The classic queue listing."""
        table = Table(
            ["ID", "OWNER", "ST", "SUBMITTED", "RUN_TIME", "MACHINE"],
            title=f"-- Schedd: {len(self.jobs)} jobs @ t={self.simulator.now:.0f}s",
        )
        for job in self.jobs.values():
            run_time = 0.0
            if job.start_time is not None:
                end = (
                    job.end_time
                    if job.end_time is not None
                    else self.simulator.now
                )
                run_time = end - job.start_time
            table.add_row(
                job.job_id, job.owner, job.state.value,
                round(job.submit_time), round(run_time),
                job.machine or "-",
            )
        return table.render()


class CondorPool:
    """Machines + negotiator on a virtual clock.

    ``half_life_s`` controls the fair-share decay of accumulated usage
    (Condor's ``PRIORITY_HALFLIFE``); lower usage ⇒ better priority.
    """

    def __init__(
        self,
        simulator: Simulator,
        machines: list[ClassAd],
        *,
        negotiation_interval_s: float = 60.0,
        preemption: bool = True,
        half_life_s: float = 86_400.0,
    ) -> None:
        if not machines:
            raise ValueError("a pool needs at least one machine")
        self.simulator = simulator
        self.schedd = Schedd(simulator)
        self.machines = {m.name: m for m in machines}
        self._free = sorted(self.machines)
        self.negotiation_interval_s = negotiation_interval_s
        self.preemption = preemption
        self.half_life_s = half_life_s
        self._usage: dict[str, float] = {}
        self._usage_stamp: dict[str, float] = {}
        self.preemption_count = 0
        self.negotiation_cycles = 0
        self._running = True
        self._stopped = False
        self.schedd.on_new_work = self._wake
        simulator.schedule(negotiation_interval_s, self._negotiate)

    # -- fair share --------------------------------------------------------

    def usage(self, owner: str) -> float:
        """Decayed accumulated cpu-seconds of one user."""
        raw = self._usage.get(owner, 0.0)
        stamp = self._usage_stamp.get(owner, self.simulator.now)
        age = self.simulator.now - stamp
        return raw * math.pow(0.5, age / self.half_life_s)

    def _charge(self, owner: str, seconds: float) -> None:
        self._usage[owner] = self.usage(owner) + seconds
        self._usage_stamp[owner] = self.simulator.now

    def priority_order(self) -> list[str]:
        """Users best-priority (lowest decayed usage) first."""
        owners = {j.owner for j in self.schedd.jobs.values()}
        return sorted(owners, key=lambda o: (self.usage(o), o))

    # -- negotiation ---------------------------------------------------------

    def stop(self) -> None:
        """Stop scheduling further negotiation cycles, permanently."""
        self._running = False
        self._stopped = True

    def _wake(self) -> None:
        """New work arrived while the negotiator was dormant."""
        if self._stopped or self._running:
            return
        self._running = True
        self.simulator.schedule(self.negotiation_interval_s, self._negotiate)

    def _negotiate(self) -> None:
        self.negotiation_cycles += 1
        for owner in self.priority_order():
            idle = [
                j for j in self.schedd.idle_jobs() if j.owner == owner
            ]
            for job in idle:
                machine = self._match_or_preempt(job)
                if machine is None:
                    continue
                self._start(job, machine)
        if self._running and (
            self.schedd.idle_jobs() or self.schedd.running_jobs()
        ):
            self.simulator.schedule(
                self.negotiation_interval_s, self._negotiate
            )
        else:
            self._running = False

    def _match_or_preempt(self, job: QueuedJob) -> str | None:
        free_ads = [self.machines[name] for name in self._free]
        chosen = match(job.ad, free_ads)
        if chosen is not None:
            self._free.remove(chosen.name)
            return chosen.name
        if not self.preemption:
            return None
        # Preempt the running job of the worst-priority user whose
        # usage exceeds this owner's (never preempt same/better users).
        candidates = [
            r
            for r in self.schedd.running_jobs()
            if self.usage(r.owner) > self.usage(job.owner)
            and r.owner != job.owner
            and match(job.ad, [self.machines[r.machine]]) is not None
        ]
        if not candidates:
            return None
        victim = max(candidates, key=lambda r: self.usage(r.owner))
        machine = victim.machine
        self._evict(victim)
        self._free.remove(machine)
        return machine

    def _start(self, job: QueuedJob, machine: str) -> None:
        job.state = JobState.RUNNING
        job.machine = machine
        job.start_time = self.simulator.now
        job._finish_event = self.simulator.schedule(
            job.runtime, lambda: self._finish(job)
        )

    def _finish(self, job: QueuedJob) -> None:
        job.state = JobState.COMPLETED
        job.end_time = self.simulator.now
        self._charge(job.owner, job.end_time - job.start_time)
        self._free.append(job.machine)
        self._free.sort()
        if job.on_complete is not None:
            job.on_complete(job)

    def _evict(self, job: QueuedJob) -> None:
        """Preemption: the job goes back to IDLE, its work lost."""
        self.preemption_count += 1
        job.preemptions += 1
        if job._finish_event is not None:
            job._finish_event.cancel()
        self._charge(job.owner, self.simulator.now - job.start_time)
        self._free.append(job.machine)
        self._free.sort()
        job.state = JobState.IDLE
        job.machine = None
        job.start_time = None
