"""The executable DAG model and Condor-style ``.dag`` file round-trip.

A :class:`DagJob` is a node DAGMan can submit: it carries either a bound
Python callable (real local execution) or a runtime/IO profile (the
platform simulators), plus DAGMan metadata (retries, priority). The
:class:`Dag` holds jobs and dependency edges, validates acyclicity, and
serialises to the subset of the HTCondor DAGMan file format we use
(``JOB`` / ``PARENT..CHILD`` / ``RETRY`` / ``PRIORITY`` / ``DONE``),
plus a ``TIMEOUT <job> <seconds>`` extension carrying the per-job
execution deadline (real DAGMan spells this ``ABORT-DAG-ON`` +
periodic holds; one keyword keeps the round-trip honest).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Iterable

from typing import Iterable as _Iterable
from typing import Mapping

from repro.util.iolib import atomic_write

__all__ = ["CycleError", "topological_sort", "DagJob", "Dag"]


class CycleError(ValueError):
    """The dependency graph contains a cycle.

    Raised both at edge-insertion time (:meth:`Dag.add_edge`) and when
    ordering an already-built graph (:func:`topological_sort`); the
    ``members`` attribute names the nodes that could not be ordered.
    """

    def __init__(self, message: str, members: tuple[str, ...] = ()) -> None:
        super().__init__(message)
        self.members = members


def topological_sort(
    nodes: _Iterable[str], children: Mapping[str, _Iterable[str]]
) -> list[str]:
    """Kahn's algorithm over an adjacency mapping.

    Stable with respect to the order of ``nodes``; children are visited
    in sorted order. Edges pointing at nodes absent from ``nodes`` are
    ignored, so callers can pass partial views. Raises
    :class:`CycleError` naming the unorderable nodes when the graph is
    cyclic. This is the single cycle detector shared by :class:`Dag`
    and the ``repro.lint`` DAX pass.
    """
    indegree: dict[str, int] = {n: 0 for n in nodes}
    for parent, kids in children.items():
        if parent not in indegree:
            continue
        for child in kids:
            if child in indegree and child != parent:
                indegree[child] += 1
    ready = [n for n in indegree if indegree[n] == 0]
    order: list[str] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        for child in sorted(children.get(node, ())):
            if child not in indegree or child == node:
                continue
            indegree[child] -= 1
            if indegree[child] == 0:
                ready.append(child)
    if len(order) != len(indegree):
        members = tuple(sorted(set(indegree) - set(order)))
        raise CycleError(
            "cycle detected among: " + ", ".join(members), members
        )
    return order


@dataclass(frozen=True)
class DagJob:
    """One schedulable node.

    ``runtime`` is the payload's base duration in seconds on a
    reference-speed core (platform models divide by machine speed);
    ``payload`` is the real callable for local execution. ``needs_setup``
    marks the OSG-style jobs that must download/install their software
    before running (the red rectangles of Fig. 3). ``requirements`` is a
    ClassAd expression evaluated against machine ads at match time.
    ``timeout_s`` bounds the *execution* (kickstart) window of one
    attempt: platforms kill the payload after that many seconds and
    report :attr:`~repro.dagman.events.JobStatus.TIMEOUT` — the defence
    against hung payloads and the stragglers OSG is known for.
    """

    name: str
    transformation: str
    runtime: float = 1.0
    input_bytes: int = 0
    output_bytes: int = 0
    needs_setup: bool = False
    retries: int = 0
    priority: int = 0
    requirements: str | None = None
    timeout_s: float | None = None
    payload: Callable[[], object] | None = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if not self.name or any(c.isspace() for c in self.name):
            raise ValueError(f"invalid job name: {self.name!r}")
        if self.runtime < 0:
            raise ValueError("runtime must be >= 0")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")


class Dag:
    """A directed acyclic graph of :class:`DagJob` nodes."""

    def __init__(self, name: str = "workflow") -> None:
        self.name = name
        self.jobs: dict[str, DagJob] = {}
        self._children: dict[str, set[str]] = {}
        self._parents: dict[str, set[str]] = {}
        self.done: set[str] = set()  # pre-completed (rescue semantics)

    # -- construction -------------------------------------------------

    def add_job(self, job: DagJob) -> DagJob:
        if job.name in self.jobs:
            raise ValueError(f"duplicate job name: {job.name!r}")
        self.jobs[job.name] = job
        self._children[job.name] = set()
        self._parents[job.name] = set()
        return job

    def add_edge(self, parent: str, child: str) -> None:
        for name in (parent, child):
            if name not in self.jobs:
                raise KeyError(f"unknown job: {name!r}")
        if parent == child:
            raise ValueError("self-dependency")
        if child in self._children[parent]:
            return  # already present: nothing to validate
        # Incremental cycle check: the new edge closes a cycle iff
        # ``parent`` is already reachable from ``child``. A DFS over
        # the descendants of ``child`` is O(reachable set), not the
        # O(V+E) full re-sort per edge this used to cost — which made
        # building million-edge DAGs quadratic. Built in topological
        # order (every generator here does), the check is O(out-degree).
        if self._reaches(child, parent):
            self._children[parent].add(child)
            self._parents[child].add(parent)
            try:
                # Error path only: recover the full unorderable set so
                # the exception's ``members`` matches the historical
                # whole-graph diagnosis.
                topological_sort(self.jobs, self._children)
                members: tuple[str, ...] = ()
            except CycleError as exc:
                members = exc.members
            self._children[parent].discard(child)
            self._parents[child].discard(parent)
            raise CycleError(
                f"edge {parent!r} -> {child!r} would create a cycle",
                members,
            )
        self._children[parent].add(child)
        self._parents[child].add(parent)

    def _reaches(self, source: str, target: str) -> bool:
        """True when ``target`` is reachable from ``source`` via edges."""
        if source == target:
            return True
        stack = [source]
        seen = {source}
        children = self._children
        while stack:
            for node in children[stack.pop()]:
                if node == target:
                    return True
                if node not in seen:
                    seen.add(node)
                    stack.append(node)
        return False

    # -- queries ------------------------------------------------------

    def parents(self, name: str) -> set[str]:
        return set(self._parents[name])

    def children(self, name: str) -> set[str]:
        return set(self._children[name])

    def roots(self) -> list[str]:
        return [n for n in self.jobs if not self._parents[n]]

    def leaves(self) -> list[str]:
        return [n for n in self.jobs if not self._children[n]]

    def edges(self) -> Iterable[tuple[str, str]]:
        for parent, children in self._children.items():
            for child in sorted(children):
                yield parent, child

    def __len__(self) -> int:
        return len(self.jobs)

    def topological_order(self) -> list[str]:
        """Kahn's algorithm; stable w.r.t. insertion order. Raises
        :class:`CycleError` (unreachable when built via :meth:`add_edge`,
        which rejects cycle-closing edges eagerly)."""
        return topological_sort(self.jobs, self._children)

    def critical_path_length(self) -> float:
        """Longest runtime-weighted path (a lower bound on makespan)."""
        longest: dict[str, float] = {}
        for node in self.topological_order():
            incoming = [longest[p] for p in self._parents[node]]
            longest[node] = self.jobs[node].runtime + max(incoming, default=0.0)
        return max(longest.values(), default=0.0)

    # -- .dag file round-trip ------------------------------------------

    def write_dagfile(self, path: str | Path) -> Path:
        """Serialise to Condor DAGMan file syntax."""
        lines = [f"# rescue-aware DAG file for {self.name}"]
        for name, job in self.jobs.items():
            lines.append(f"JOB {name} {job.transformation}.sub")
            if job.retries:
                lines.append(f"RETRY {name} {job.retries}")
            if job.priority:
                lines.append(f"PRIORITY {name} {job.priority}")
            if job.timeout_s is not None:
                lines.append(f"TIMEOUT {name} {job.timeout_s:g}")
            if name in self.done:
                lines.append(f"DONE {name}")
        for parent, child in self.edges():
            lines.append(f"PARENT {parent} CHILD {child}")
        return atomic_write(path, "\n".join(lines) + "\n")

    @classmethod
    def parse_dagfile(cls, path: str | Path, name: str = "workflow") -> "Dag":
        """Parse the subset written by :meth:`write_dagfile`.

        Jobs come back without payloads or runtime profiles (as with
        real DAGMan, the ``.sub`` files carry those); retries, priority,
        DONE flags and edges are restored.
        """
        dag = cls(name=name)
        pending_edges: list[tuple[str, str]] = []
        for raw in Path(path).read_text().splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            keyword = fields[0].upper()
            if keyword == "JOB":
                job_name, submit = fields[1], fields[2]
                transformation = submit.removesuffix(".sub")
                dag.add_job(DagJob(name=job_name, transformation=transformation))
            elif keyword == "RETRY":
                dag.jobs[fields[1]] = replace(
                    dag.jobs[fields[1]], retries=int(fields[2])
                )
            elif keyword == "PRIORITY":
                dag.jobs[fields[1]] = replace(
                    dag.jobs[fields[1]], priority=int(fields[2])
                )
            elif keyword == "TIMEOUT":
                dag.jobs[fields[1]] = replace(
                    dag.jobs[fields[1]], timeout_s=float(fields[2])
                )
            elif keyword == "DONE":
                dag.done.add(fields[1])
            elif keyword == "PARENT":
                split = fields.index("CHILD")
                parents = fields[1:split]
                children = fields[split + 1 :]
                for p in parents:
                    for c in children:
                        pending_edges.append((p, c))
            else:
                raise ValueError(f"unknown DAG file keyword: {keyword!r}")
        for parent, child in pending_edges:
            dag.add_edge(parent, child)
        return dag
