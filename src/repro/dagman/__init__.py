"""A DAGMan/Condor-like meta-scheduling layer.

Pegasus plans workflows into a DAG that Condor's DAGMan executes:
jobs are released when their parents finish, failures are retried a
configured number of times, and an aborted run leaves a *rescue DAG*
marking completed work. This package implements those semantics:

* :mod:`repro.dagman.dag` — the DAG model and ``.dag`` file round-trip,
* :mod:`repro.dagman.events` — per-attempt job records (the trace schema
  shared by the simulator and the real local executor),
* :mod:`repro.dagman.scheduler` — the DAGMan loop with throttles,
  retries, priorities, and rescue generation (incremental ready-heap
  hot paths sized for million-job DAGs),
* :mod:`repro.dagman.legacy` — the pre-rewrite full-rescan scheduler,
  kept only as the equivalence oracle for tests and benchmarks,
* :mod:`repro.dagman.condor` — ClassAd-style matchmaking used by the
  platform models to pair jobs with heterogeneous machines.
"""

from repro.dagman.dag import Dag, DagJob
from repro.dagman.events import JobAttempt, JobStatus, WorkflowTrace
from repro.dagman.legacy import LegacyRescanScheduler
from repro.dagman.scheduler import DagmanScheduler, DagmanResult

__all__ = [
    "Dag",
    "DagJob",
    "JobAttempt",
    "JobStatus",
    "WorkflowTrace",
    "DagmanScheduler",
    "DagmanResult",
    "LegacyRescanScheduler",
]
