"""ClassAd-style matchmaking.

HTCondor pairs jobs with machines by evaluating each side's
``Requirements`` expression against the other side's attributes, then
ranking acceptable machines. We implement the same protocol with a
restricted Python-expression evaluator: expressions see the *target*
ad's attributes as plain names and the advertising side's own attributes
under ``my_``-prefixed names.

The OSG platform model uses this for the paper's central heterogeneity
story: machines advertise ``has_python`` / ``has_biopython`` /
``has_cap3``, and blast2cap3 jobs either require them (Sandhills
variant) or carry their own setup step and require nothing (OSG
variant, Fig. 3's red rectangles).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

__all__ = ["ClassAd", "evaluate_requirements", "match"]

_ALLOWED_NODES = (
    ast.Expression,
    ast.BoolOp,
    ast.And,
    ast.Or,
    ast.UnaryOp,
    ast.Not,
    ast.USub,
    ast.Compare,
    ast.Eq,
    ast.NotEq,
    ast.Lt,
    ast.LtE,
    ast.Gt,
    ast.GtE,
    ast.In,
    ast.NotIn,
    ast.Name,
    ast.Load,
    ast.Constant,
    ast.BinOp,
    ast.Add,
    ast.Sub,
    ast.Mult,
    ast.Div,
)


@dataclass(frozen=True)
class ClassAd:
    """An advertisement: attributes plus optional requirements/rank."""

    name: str
    attributes: Mapping[str, Any] = field(default_factory=dict)
    requirements: str | None = None
    rank: str | None = None

    def get(self, key: str, default: Any = None) -> Any:
        return self.attributes.get(key, default)


def _check_expression(expr: str) -> ast.Expression:
    tree = ast.parse(expr, mode="eval")
    for node in ast.walk(tree):
        if not isinstance(node, _ALLOWED_NODES):
            raise ValueError(
                f"disallowed syntax in ClassAd expression {expr!r}: "
                f"{type(node).__name__}"
            )
    return tree


def evaluate_requirements(
    expr: str | None, target: ClassAd, my: ClassAd | None = None
) -> bool:
    """Evaluate a requirements expression against a target ad.

    Unknown attribute names evaluate to ``False``-y ``None`` → the
    expression fails closed (Condor's UNDEFINED behaves similarly for
    requirements).
    """
    if expr is None:
        return True
    tree = _check_expression(expr)

    namespace: dict[str, Any] = dict(target.attributes)
    if my is not None:
        namespace.update({f"my_{k}": v for k, v in my.attributes.items()})
    namespace.setdefault("true", True)
    namespace.setdefault("false", False)

    class _Missing:
        """UNDEFINED: falsy and incomparable-but-quiet."""

        def __bool__(self) -> bool:
            return False

        def __eq__(self, other: object) -> bool:
            return False

        def __lt__(self, other: object) -> bool:
            return False

        __gt__ = __le__ = __ge__ = __lt__

    code = compile(tree, "<classad>", "eval")
    names = {n.id for n in ast.walk(tree) if isinstance(n, ast.Name)}
    for name in names:
        namespace.setdefault(name, _Missing())
    try:
        return bool(eval(code, {"__builtins__": {}}, namespace))
    except TypeError:
        return False


def evaluate_rank(expr: str | None, target: ClassAd, my: ClassAd | None = None) -> float:
    """Evaluate a rank expression; undefined/invalid ranks score 0."""
    if expr is None:
        return 0.0
    tree = _check_expression(expr)
    namespace: dict[str, Any] = dict(target.attributes)
    if my is not None:
        namespace.update({f"my_{k}": v for k, v in my.attributes.items()})
    names = {n.id for n in ast.walk(tree) if isinstance(n, ast.Name)}
    for name in names:
        namespace.setdefault(name, 0)
    try:
        value = eval(compile(tree, "<classad>", "eval"), {"__builtins__": {}}, namespace)
        return float(value)
    except (TypeError, ValueError):
        return 0.0


def match(
    job: ClassAd, machines: Sequence[ClassAd]
) -> ClassAd | None:
    """Find the best machine for a job.

    A machine is acceptable when the job's requirements hold against the
    machine **and** the machine's requirements hold against the job
    (two-sided matching, as in Condor). Among acceptable machines the
    job's rank expression decides; ties keep the earliest machine.
    """
    best: tuple[float, int] | None = None
    best_machine: ClassAd | None = None
    for idx, machine in enumerate(machines):
        if not evaluate_requirements(job.requirements, machine, my=job):
            continue
        if not evaluate_requirements(machine.requirements, job, my=machine):
            continue
        score = evaluate_rank(job.rank, machine, my=job)
        key = (score, -idx)
        if best is None or key > best:
            best = key
            best_machine = machine
    return best_machine
