"""Per-attempt job records — the trace schema of the whole system.

Both execution backends (the real local executor and the discrete-event
platform simulators) emit one :class:`JobAttempt` per try of each job.
``pegasus-statistics`` style reports (:mod:`repro.wms.statistics`) are
pure functions over a :class:`WorkflowTrace`, so the same reporting code
analyses real and simulated runs.

Timestamp semantics (all in the backend's clock):

* ``submit_time`` — DAGMan handed the job to the platform;
* ``setup_start`` — a slot was acquired and the job began staging /
  download-install work (``setup_start - submit_time`` is the paper's
  **Waiting Time**);
* ``exec_start`` — the payload started (``exec_start - setup_start`` is
  the paper's **Download/Install Time**);
* ``exec_end`` — the payload finished, failed, or was evicted
  (``exec_end - exec_start`` is the paper's **Kickstart Time**).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, Mapping

__all__ = ["JobStatus", "ResourceProfile", "JobAttempt", "WorkflowTrace"]


class JobStatus(Enum):
    """Terminal state of one attempt."""

    SUCCEEDED = "succeeded"
    FAILED = "failed"
    EVICTED = "evicted"  # preempted by the resource owner (OSG)
    TIMEOUT = "timeout"  # killed after exceeding DagJob.timeout_s

    @property
    def is_success(self) -> bool:
        return self is JobStatus.SUCCEEDED


@dataclass(frozen=True)
class ResourceProfile:
    """Per-invocation resource accounting — the kickstart record's
    ``<usage>`` block.

    Real runs measure these with :func:`resource.getrusage` deltas
    around the payload (see :mod:`repro.observe.profile`); simulated
    runs attach deterministic model-derived equivalents so the same
    reports work over both. ``source`` says which it was.

    Units follow ``getrusage``: CPU seconds, kilobytes for the RSS
    high-water mark, block-I/O operation counts.
    """

    cpu_user_s: float = 0.0
    cpu_sys_s: float = 0.0
    max_rss_kb: int = 0
    read_ops: int = 0
    write_ops: int = 0
    source: str = "measured"  # "measured" | "modelled"

    def __post_init__(self) -> None:
        if self.cpu_user_s < 0 or self.cpu_sys_s < 0:
            raise ValueError("CPU times must be >= 0")
        if self.max_rss_kb < 0 or self.read_ops < 0 or self.write_ops < 0:
            raise ValueError("rss/io counters must be >= 0")

    @property
    def cpu_s(self) -> float:
        """Total CPU time (user + system)."""
        return self.cpu_user_s + self.cpu_sys_s

    def cpu_utilization(self, wall_s: float) -> float:
        """CPU seconds per wall second (0 when ``wall_s`` is 0)."""
        return self.cpu_s / wall_s if wall_s > 0 else 0.0

    def to_json(self) -> dict[str, object]:
        """Flatten to JSON-able primitives (one log-line sub-object)."""
        return {
            "cpu_user_s": self.cpu_user_s,
            "cpu_sys_s": self.cpu_sys_s,
            "max_rss_kb": self.max_rss_kb,
            "read_ops": self.read_ops,
            "write_ops": self.write_ops,
            "source": self.source,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "ResourceProfile":
        return cls(
            cpu_user_s=float(data.get("cpu_user_s", 0.0)),  # type: ignore[arg-type]
            cpu_sys_s=float(data.get("cpu_sys_s", 0.0)),  # type: ignore[arg-type]
            max_rss_kb=int(data.get("max_rss_kb", 0)),  # type: ignore[arg-type]
            read_ops=int(data.get("read_ops", 0)),  # type: ignore[arg-type]
            write_ops=int(data.get("write_ops", 0)),  # type: ignore[arg-type]
            source=str(data.get("source", "measured")),
        )


@dataclass(frozen=True)
class JobAttempt:
    """One try of one job on one machine."""

    job_name: str
    transformation: str
    site: str
    machine: str
    attempt: int
    submit_time: float
    setup_start: float
    exec_start: float
    exec_end: float
    status: JobStatus
    error: str | None = None
    #: Resource accounting for the payload window (None when the
    #: attempt never reached execution, e.g. dead-on-arrival).
    profile: ResourceProfile | None = None

    def __post_init__(self) -> None:
        if self.attempt < 1:
            raise ValueError("attempt numbers start at 1")
        if not (
            self.submit_time
            <= self.setup_start
            <= self.exec_start
            <= self.exec_end
        ):
            raise ValueError(
                "timestamps must be ordered submit <= setup <= start <= end "
                f"for {self.job_name!r}: {self.submit_time}, "
                f"{self.setup_start}, {self.exec_start}, {self.exec_end}"
            )

    @property
    def waiting_time(self) -> float:
        """Paper's "Waiting Time": submit-host + remote-queue waiting."""
        return self.setup_start - self.submit_time

    @property
    def download_install_time(self) -> float:
        """Paper's "Download/Install Time" (zero on the campus cluster)."""
        return self.exec_start - self.setup_start

    @property
    def kickstart_time(self) -> float:
        """Paper's "Kickstart Time": actual payload duration."""
        return self.exec_end - self.exec_start

    @property
    def total_time(self) -> float:
        return self.exec_end - self.submit_time


@dataclass
class WorkflowTrace:
    """All attempts of one workflow run."""

    attempts: list[JobAttempt] = field(default_factory=list)

    def add(self, attempt: JobAttempt) -> None:
        self.attempts.append(attempt)

    def __len__(self) -> int:
        return len(self.attempts)

    def __iter__(self) -> Iterator[JobAttempt]:
        return iter(self.attempts)

    def for_job(self, job_name: str) -> list[JobAttempt]:
        """All attempts of one job, in attempt order."""
        return sorted(
            (a for a in self.attempts if a.job_name == job_name),
            key=lambda a: a.attempt,
        )

    def successful(self) -> list[JobAttempt]:
        """The final successful attempt of every job that succeeded."""
        return [a for a in self.attempts if a.status.is_success]

    def failures(self) -> list[JobAttempt]:
        """Every non-successful attempt (failures and evictions)."""
        return [a for a in self.attempts if not a.status.is_success]

    @property
    def retry_count(self) -> int:
        """Total number of re-submissions that happened."""
        return sum(1 for a in self.attempts if a.attempt > 1)

    def wall_time(self) -> float:
        """Workflow makespan: first submit to last completion."""
        if not self.attempts:
            return 0.0
        start = min(a.submit_time for a in self.attempts)
        end = max(a.exec_end for a in self.attempts)
        return end - start

    def cumulative_kickstart(self) -> float:
        """Sum of successful payload durations (pegasus-statistics'
        "cumulative job wall time")."""
        return sum(a.kickstart_time for a in self.successful())

    def profiled(self) -> list[JobAttempt]:
        """Attempts that carry a :class:`ResourceProfile`."""
        return [a for a in self.attempts if a.profile is not None]

    def cumulative_cpu(self) -> float:
        """Total CPU seconds across profiled attempts (user + system)."""
        return sum(a.profile.cpu_s for a in self.profiled())  # type: ignore[union-attr]

    def peak_rss_kb(self) -> int:
        """Largest per-attempt RSS high-water mark (0 if unprofiled)."""
        profiles = self.profiled()
        if not profiles:
            return 0
        return max(a.profile.max_rss_kb for a in profiles)  # type: ignore[union-attr]
