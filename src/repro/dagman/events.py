"""Per-attempt job records — the trace schema of the whole system.

Both execution backends (the real local executor and the discrete-event
platform simulators) emit one :class:`JobAttempt` per try of each job.
``pegasus-statistics`` style reports (:mod:`repro.wms.statistics`) are
pure functions over a :class:`WorkflowTrace`, so the same reporting code
analyses real and simulated runs.

Timestamp semantics (all in the backend's clock):

* ``submit_time`` — DAGMan handed the job to the platform;
* ``setup_start`` — a slot was acquired and the job began staging /
  download-install work (``setup_start - submit_time`` is the paper's
  **Waiting Time**);
* ``exec_start`` — the payload started (``exec_start - setup_start`` is
  the paper's **Download/Install Time**);
* ``exec_end`` — the payload finished, failed, or was evicted
  (``exec_end - exec_start`` is the paper's **Kickstart Time**).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator

__all__ = ["JobStatus", "JobAttempt", "WorkflowTrace"]


class JobStatus(Enum):
    """Terminal state of one attempt."""

    SUCCEEDED = "succeeded"
    FAILED = "failed"
    EVICTED = "evicted"  # preempted by the resource owner (OSG)
    TIMEOUT = "timeout"  # killed after exceeding DagJob.timeout_s

    @property
    def is_success(self) -> bool:
        return self is JobStatus.SUCCEEDED


@dataclass(frozen=True)
class JobAttempt:
    """One try of one job on one machine."""

    job_name: str
    transformation: str
    site: str
    machine: str
    attempt: int
    submit_time: float
    setup_start: float
    exec_start: float
    exec_end: float
    status: JobStatus
    error: str | None = None

    def __post_init__(self) -> None:
        if self.attempt < 1:
            raise ValueError("attempt numbers start at 1")
        if not (
            self.submit_time
            <= self.setup_start
            <= self.exec_start
            <= self.exec_end
        ):
            raise ValueError(
                "timestamps must be ordered submit <= setup <= start <= end "
                f"for {self.job_name!r}: {self.submit_time}, "
                f"{self.setup_start}, {self.exec_start}, {self.exec_end}"
            )

    @property
    def waiting_time(self) -> float:
        """Paper's "Waiting Time": submit-host + remote-queue waiting."""
        return self.setup_start - self.submit_time

    @property
    def download_install_time(self) -> float:
        """Paper's "Download/Install Time" (zero on the campus cluster)."""
        return self.exec_start - self.setup_start

    @property
    def kickstart_time(self) -> float:
        """Paper's "Kickstart Time": actual payload duration."""
        return self.exec_end - self.exec_start

    @property
    def total_time(self) -> float:
        return self.exec_end - self.submit_time


@dataclass
class WorkflowTrace:
    """All attempts of one workflow run."""

    attempts: list[JobAttempt] = field(default_factory=list)

    def add(self, attempt: JobAttempt) -> None:
        self.attempts.append(attempt)

    def __len__(self) -> int:
        return len(self.attempts)

    def __iter__(self) -> Iterator[JobAttempt]:
        return iter(self.attempts)

    def for_job(self, job_name: str) -> list[JobAttempt]:
        """All attempts of one job, in attempt order."""
        return sorted(
            (a for a in self.attempts if a.job_name == job_name),
            key=lambda a: a.attempt,
        )

    def successful(self) -> list[JobAttempt]:
        """The final successful attempt of every job that succeeded."""
        return [a for a in self.attempts if a.status.is_success]

    def failures(self) -> list[JobAttempt]:
        """Every non-successful attempt (failures and evictions)."""
        return [a for a in self.attempts if not a.status.is_success]

    @property
    def retry_count(self) -> int:
        """Total number of re-submissions that happened."""
        return sum(1 for a in self.attempts if a.attempt > 1)

    def wall_time(self) -> float:
        """Workflow makespan: first submit to last completion."""
        if not self.attempts:
            return 0.0
        start = min(a.submit_time for a in self.attempts)
        end = max(a.exec_end for a in self.attempts)
        return end - start

    def cumulative_kickstart(self) -> float:
        """Sum of successful payload durations (pegasus-statistics'
        "cumulative job wall time")."""
        return sum(a.kickstart_time for a in self.successful())
