"""The DAGMan scheduling loop.

DAGMan semantics implemented here, driven by callbacks from an
execution environment (real or simulated):

* a job is **ready** when every parent has succeeded;
* ready jobs are submitted highest-priority first, subject to the
  ``max_jobs`` throttle (Condor's ``DAGMAN_MAX_JOBS_SUBMITTED``); ties
  break FIFO by *readiness* time, so a retried job re-enters the queue
  behind equal-priority nodes that have been waiting on the throttle;
* a failed or evicted attempt is retried while the job has retries
  left (``RETRY`` lines), otherwise the job is failed and all of its
  descendants become unrunnable. A
  :class:`~repro.resilience.retry.RetryPolicy` refines *when*: delayed
  retries park the node in the ``HELD`` state and release through the
  environment's ``call_later``, and evictions can requeue without
  consuming a retry (the platform's fault, not the job's);
* when nothing more can run, the run ends; if anything failed, a
  **rescue DAG** (original DAG with ``DONE`` marks) can be written and
  re-submitted later, exactly like ``*.rescue001`` files —
  :func:`repro.resilience.run_with_recovery` automates that loop.

The scheduler is clock-agnostic: it reads time only through the
environment, so the same code runs under the virtual clock and the real
one.

Scale: all per-completion work is incremental. Readiness is tracked
with per-node *pending-parent counters* (decremented as each parent
finishes) instead of rescanning parents, and the submit order comes
from a persistent *ready heap* keyed ``(-priority, ready_seq)`` that a
node is pushed onto exactly once per readiness transition — entries
whose node has since left READY are lazily invalidated at pop time, and
the heap is compacted when stale entries dominate. A completion
therefore costs O(children + log n), not O(n log n), which is what lets
million-job DAGs run in minutes (see ``bench_engine_throughput``). The
pre-rewrite full-rescan implementation survives as
:class:`repro.dagman.legacy.LegacyRescanScheduler`, the equivalence
oracle the property tests pin this rewrite against.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Protocol

from repro.dagman.dag import Dag, DagJob
from repro.dagman.events import JobAttempt, JobStatus, WorkflowTrace
from repro.observe.bus import EventBus
from repro.observe.events import EventKind, RunEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.retry import RetryPolicy

__all__ = [
    "ExecutionEnvironment",
    "DagmanScheduler",
    "DagmanResult",
    "NodeState",
    "SchedulerRestore",
]


class ExecutionEnvironment(Protocol):
    """What DAGMan needs from a platform (real or simulated)."""

    @property
    def now(self) -> float:
        """Current time on the platform's clock."""
        ...

    def submit(
        self,
        job: DagJob,
        on_complete: Callable[[JobAttempt], None],
        *,
        attempt: int = 1,
    ) -> None:
        """Queue one attempt of a job; invoke ``on_complete`` when it
        finishes (successfully or not). ``attempt`` is 1-based and must
        be echoed into the :class:`JobAttempt`."""
        ...

    def run_until_complete(self) -> None:
        """Drive the platform until no submitted work remains.

        Environments may additionally provide ``call_later(delay_s,
        fn)`` — used for delayed retries; without it, retry delays
        degrade to immediate requeue.
        """
        ...


class NodeState(Enum):
    """DAGMan's view of one node."""

    UNREADY = "unready"
    READY = "ready"
    SUBMITTED = "submitted"
    HELD = "held"  # waiting out a retry-policy delay
    DONE = "done"
    FAILED = "failed"
    UNRUNNABLE = "unrunnable"  # an ancestor failed


#: States a node never leaves; a workflow is finished when every node
#: has reached one (see :attr:`DagmanScheduler.unfinished`).
_TERMINAL_STATES = frozenset(
    {NodeState.DONE, NodeState.FAILED, NodeState.UNRUNNABLE}
)


@dataclass
class DagmanResult:
    """Final outcome of one DAGMan run."""

    success: bool
    trace: WorkflowTrace
    states: dict[str, NodeState]
    wall_time: float

    @property
    def failed_jobs(self) -> list[str]:
        return sorted(
            n for n, s in self.states.items() if s is NodeState.FAILED
        )

    @property
    def unrunnable_jobs(self) -> list[str]:
        return sorted(
            n for n, s in self.states.items() if s is NodeState.UNRUNNABLE
        )


@dataclass
class SchedulerRestore:
    """Mid-workflow counters recovered from a write-ahead journal.

    ``dag.done`` carries the completed set (rescue-DAG semantics); this
    carries everything DAGMan knows *besides* completion — how many
    attempts each job has consumed, how much ``RETRY`` budget is left,
    which jobs already hard-failed, and which journaled terminal
    attempts never got their retry-or-fail decision journaled before
    the crash (``undecided`` — the scheduler re-decides those at
    ``start()`` with its own, restored policy, so the decision is
    charged exactly once).

    Built by :meth:`repro.resilience.journal.RecoveredState.scheduler_restore`;
    jobs not mentioned keep their fresh-start defaults.
    """

    attempts: dict[str, int] = field(default_factory=dict)
    retries_left: dict[str, int] = field(default_factory=dict)
    failed_attempts: dict[str, int] = field(default_factory=dict)
    failed: frozenset[str] = frozenset()
    undecided: dict[str, JobAttempt] = field(default_factory=dict)


class DagmanScheduler:
    """Execute a :class:`Dag` on an :class:`ExecutionEnvironment`."""

    def __init__(
        self,
        dag: Dag,
        environment: ExecutionEnvironment,
        *,
        max_jobs: int | None = None,
        default_retries: int | None = None,
        on_attempt: Callable[[JobAttempt], None] | None = None,
        bus: EventBus | None = None,
        retry_policy: "RetryPolicy | None" = None,
        restore: SchedulerRestore | None = None,
    ) -> None:
        """``bus`` receives the full lifecycle event stream (submits,
        retries, node state changes, workflow start/end — see
        :mod:`repro.observe.events`); pass the same bus to the execution
        environment so platform-side events (match, setup, exec, finish)
        interleave on one timeline.

        ``retry_policy`` (see :mod:`repro.resilience.retry`) controls
        the timing and accounting of retries; ``None`` keeps the
        historic behaviour — immediate requeue, every failure charged
        against the ``RETRY`` budget.

        ``on_attempt`` is the legacy monitord hook, invoked for every
        finished attempt as it lands (stream attempts to a JSONL log
        with :func:`repro.wms.monitor.append_attempt`). It predates the
        bus and is kept for backward compatibility; new code should
        subscribe to the bus's terminal events instead.

        ``restore`` resumes a crashed run: per-job counters and failure
        marks recovered from the write-ahead journal are applied during
        ``start()`` (see :class:`SchedulerRestore`), on top of
        ``dag.done``'s rescue-DAG completion marks."""
        if max_jobs is not None and max_jobs < 1:
            raise ValueError("max_jobs must be >= 1")
        self.dag = dag
        self.environment = environment
        self.max_jobs = max_jobs
        self.default_retries = default_retries
        self.on_attempt = on_attempt
        self.bus = bus
        self.retry_policy = retry_policy
        self.restore = restore
        self.trace = WorkflowTrace()
        self.states: dict[str, NodeState] = {}
        self._retries_left: dict[str, int] = {}
        self._attempt: dict[str, int] = {}
        self._failed_attempts: dict[str, int] = {}
        self._ready_seq: dict[str, int] = {}
        self._seq = 0
        self._in_flight = 0
        self._started = False
        self._start_time = 0.0
        # Nodes not yet in a terminal state (DONE/FAILED/UNRUNNABLE),
        # maintained incrementally so the service layer's "is this
        # workflow finished?" check is O(1), not an O(n) state scan.
        self._unfinished = 0
        # Incremental ready-set state: a node is pushed exactly once per
        # readiness transition; entries for nodes that left READY some
        # other way (unrunnable cascade) are skipped lazily at pop time.
        self._ready_heap: list[tuple[int, int, str]] = []
        self._ready_count = 0
        # Parents not yet DONE, per node; READY fires when this hits 0.
        self._pending_parents: dict[str, int] = {}
        # Children in sorted order, precomputed once at start() — the
        # readiness FIFO tie-break must not depend on set hash order,
        # and sorting per completion would be O(k log k) every time.
        self._children_sorted: dict[str, tuple[str, ...]] = {}

    # -- public API -----------------------------------------------------

    def run(self) -> DagmanResult:
        """Start the DAG and drive the environment to completion."""
        self.start()
        self.environment.run_until_complete()
        return self.finish()

    def finish(self) -> DagmanResult:
        """Snapshot the outcome and emit ``workflow.end``.

        :meth:`run` calls this; drive it yourself only when you split
        ``start()`` / ``run_until_complete()`` manually (e.g. to start
        samplers in between).
        """
        result = self.result()
        self._emit(
            EventKind.WORKFLOW_END,
            detail={
                "success": result.success,
                "wall_time": result.wall_time,
                "jobs": len(self.dag.jobs),
            },
        )
        return result

    def start(self) -> None:
        """Initialise node states and submit the initial ready set."""
        if self._started:
            raise RuntimeError("scheduler already started")
        self._started = True
        self._start_time = self.environment.now
        dag = self.dag
        pre_done = dag.done
        for name, job in dag.jobs.items():
            retries = (
                self.default_retries
                if self.default_retries is not None
                else job.retries
            )
            self._retries_left[name] = retries
            self._attempt[name] = 0
            self._failed_attempts[name] = 0
            if name in pre_done:
                self.states[name] = NodeState.DONE
            else:
                self.states[name] = NodeState.UNREADY
        restore = self.restore
        if restore is not None:
            for name, count in restore.attempts.items():
                if name in self._attempt:
                    self._attempt[name] = count
            for name, left in restore.retries_left.items():
                if name in self._retries_left:
                    self._retries_left[name] = left
            for name, count in restore.failed_attempts.items():
                if name in self._failed_attempts:
                    self._failed_attempts[name] = count
            for name in restore.failed:
                # Journaled hard failures re-enter FAILED silently: their
                # state_change was journaled (and logged) before the
                # crash, so re-emitting would double-count it.
                if self.states.get(name) is NodeState.UNREADY:
                    self.states[name] = NodeState.FAILED
        # Counted after the direct state writes above (pre-done marks,
        # journaled failures); every later transition into a terminal
        # state flows through _set_state and decrements it.
        self._unfinished = sum(
            1
            for s in self.states.values()
            if s not in _TERMINAL_STATES
        )
        states = self.states
        for name in dag.jobs:
            self._children_sorted[name] = tuple(sorted(dag.children(name)))
            self._pending_parents[name] = sum(
                1
                for p in dag.parents(name)
                if states[p] is not NodeState.DONE
            )
        self._emit(
            EventKind.WORKFLOW_START,
            detail={"jobs": len(dag.jobs), "name": dag.name},
        )
        for name in dag.jobs:
            if (
                states[name] is NodeState.UNREADY
                and self._pending_parents[name] == 0
            ):
                self._set_state(name, NodeState.READY)
        if restore is not None:
            for name in sorted(restore.failed):
                if states.get(name) is NodeState.FAILED:
                    self._mark_descendants_unrunnable(name)
            # Terminal attempts whose retry-or-fail decision did not
            # reach the journal before the crash: replay the tail of
            # _handle_completion now, against the restored budgets and
            # the caller's retry policy — the decision (and its RETRY
            # charge) lands exactly once, post-resume.
            for name in sorted(restore.undecided):
                if states.get(name) is not NodeState.READY:
                    continue
                record = restore.undecided[name]
                if self._may_retry(name, record):
                    self._requeue(name, record)
                else:
                    self._set_state(name, NodeState.FAILED)
                    self._mark_descendants_unrunnable(name)
        self._submit_ready()

    def result(self) -> DagmanResult:
        """Snapshot the outcome (valid after the environment drains)."""
        success = all(
            s is NodeState.DONE for s in self.states.values()
        )
        return DagmanResult(
            success=success,
            trace=self.trace,
            states=dict(self.states),
            wall_time=self.environment.now - self._start_time,
        )

    def status_counts(self) -> dict[str, int]:
        """State histogram, the ``pegasus-status`` style summary."""
        counts: dict[str, int] = {}
        for state in self.states.values():
            counts[state.value] = counts.get(state.value, 0) + 1
        return counts

    def write_rescue(self, path: str | Path) -> Path:
        """Write a rescue DAG marking completed nodes DONE."""
        rescue = Dag(name=f"{self.dag.name}.rescue")
        for job in self.dag.jobs.values():
            rescue.add_job(job)
        for parent, child in self.dag.edges():
            rescue.add_edge(parent, child)
        rescue.done = {
            n for n, s in self.states.items() if s is NodeState.DONE
        }
        return rescue.write_dagfile(path)

    # -- internals ------------------------------------------------------

    def _emit(self, kind: EventKind, *, job: DagJob | None = None,
              attempt: int | None = None,
              detail: dict | None = None) -> None:
        if self.bus is None or not self.bus.active:
            return  # deaf bus: skip event construction (PR 7 fast path)
        self.bus.emit(
            RunEvent(
                kind,
                self.environment.now,
                job_name=job.name if job is not None else None,
                transformation=job.transformation if job is not None else None,
                attempt=attempt,
                detail=detail or {},
            )
        )

    def _set_state(
        self, name: str, state: NodeState, *, cause: dict | None = None
    ) -> None:
        """``cause`` adds causal context to the ``state_change`` event
        (e.g. ``released_by``: which parent's completion made a child
        READY) — what the span tracer turns into explicit links."""
        previous = self.states[name]
        self.states[name] = state
        if state in _TERMINAL_STATES and previous not in _TERMINAL_STATES:
            self._unfinished -= 1
        if state is NodeState.READY:
            # Readiness order is the FIFO tie-break within a priority
            # class, so retried jobs queue behind equal-priority nodes
            # already waiting on the max_jobs throttle. Each readiness
            # transition pushes exactly one heap entry; the seq doubles
            # as the entry's validity token.
            seq = self._seq
            self._ready_seq[name] = seq
            self._seq = seq + 1
            self._ready_count += 1
            heapq.heappush(
                self._ready_heap,
                (-self.dag.jobs[name].priority, seq, name),
            )
        if previous is NodeState.READY and state is not NodeState.READY:
            self._ready_count -= 1
        if state is not previous:
            detail: dict = {"from": previous.value, "to": state.value}
            if cause:
                detail.update(cause)
            self._emit(
                EventKind.STATE_CHANGE,
                job=self.dag.jobs[name],
                attempt=self._attempt[name] or None,
                detail=detail,
            )

    def _submit_ready(self) -> None:
        """Submit ready nodes, highest priority first (FIFO in a class).

        Pops the persistent ready heap. Every pop re-checks that the
        node is *still* READY under the seq it was pushed with — a
        reentrant state change during submission (a synchronous
        ``on_complete``, a HELD release) must not double-submit a node
        whose state already moved on, and nodes swept into UNRUNNABLE
        leave stale entries behind by design.
        """
        heap = self._ready_heap
        states = self.states
        ready_seq = self._ready_seq
        max_jobs = self.max_jobs
        while heap:
            if max_jobs is not None and self._in_flight >= max_jobs:
                break
            entry = heap[0]
            name = entry[2]
            if (
                states[name] is not NodeState.READY
                or ready_seq[name] != entry[1]
            ):
                heapq.heappop(heap)  # stale: lazy invalidation
                continue
            heapq.heappop(heap)
            self._submit(name)
        self._compact_ready_heap()

    def _compact_ready_heap(self) -> None:
        """Rebuild the ready heap when stale entries dominate.

        Unrunnable cascades can orphan many entries at once; compaction
        keeps heap size O(ready nodes) amortised. In place, because
        reentrant ``_submit_ready`` frames hold a reference to the list.
        """
        heap = self._ready_heap
        if len(heap) < 64 or len(heap) <= 2 * self._ready_count:
            return
        states = self.states
        ready_seq = self._ready_seq
        heap[:] = [
            entry
            for entry in heap
            if states[entry[2]] is NodeState.READY
            and ready_seq[entry[2]] == entry[1]
        ]
        heapq.heapify(heap)

    def _submit(self, name: str) -> None:
        self._set_state(name, NodeState.SUBMITTED)
        self._attempt[name] += 1
        self._in_flight += 1
        job = self.dag.jobs[name]
        self._emit(
            EventKind.SUBMIT,
            job=job,
            attempt=self._attempt[name],
            # The planner's expected runtime seeds the straggler
            # detector's per-transformation baseline.
            detail={"expected_s": job.runtime},
        )
        self.environment.submit(
            job, self._make_listener(name), attempt=self._attempt[name]
        )

    def _make_listener(self, name: str) -> Callable[[JobAttempt], None]:
        def on_complete(attempt: JobAttempt) -> None:
            self._handle_completion(name, attempt)

        return on_complete

    def _handle_completion(self, name: str, attempt: JobAttempt) -> None:
        self.trace.add(attempt)
        if self.on_attempt is not None:
            self.on_attempt(attempt)
        self._in_flight -= 1
        if attempt.status.is_success:
            self._failed_attempts[name] = 0
            self._set_state(name, NodeState.DONE)
            # Children in sorted order: readiness order is the FIFO
            # tie-break — hash order would make run outcomes depend on
            # PYTHONHASHSEED. A parent finishes (goes DONE) exactly
            # once, so each child's pending counter is decremented
            # exactly once per parent.
            pending = self._pending_parents
            states = self.states
            for child in self._children_sorted[name]:
                remaining = pending[child] - 1
                pending[child] = remaining
                if remaining == 0 and states[child] is NodeState.UNREADY:
                    # This parent's completion is the release edge: it
                    # is by definition the child's latest-finishing
                    # parent, i.e. the critical-path predecessor.
                    self._set_state(
                        child,
                        NodeState.READY,
                        cause={
                            "released_by": name,
                            "released_attempt": attempt.attempt,
                        },
                    )
        else:
            # Accounting happens here, once per completed attempt —
            # never inside _may_retry, which callers must be able to
            # evaluate any number of times without burning retry budget.
            self._failed_attempts[name] += 1
            if self._may_retry(name, attempt):
                self._requeue(name, attempt)
            else:
                self._set_state(name, NodeState.FAILED)
                self._mark_descendants_unrunnable(name)
        self._submit_ready()

    def _may_retry(self, name: str, attempt: JobAttempt) -> bool:
        """Pure predicate: would DAGMan requeue this failed attempt?

        Reads the failure count :meth:`_handle_completion` maintains;
        calling it repeatedly for the same completion returns the same
        answer (regression-pinned — the old version incremented the
        counter as a side effect, so a second call silently burned
        retry-policy budget).
        """
        policy = self.retry_policy
        if (
            policy is not None
            and policy.budget is not None
            and self._failed_attempts[name] > policy.budget
        ):
            return False  # runaway guard: total requeues capped
        if self._is_free_requeue(attempt):
            return True
        return self._retries_left[name] > 0

    def _is_free_requeue(self, attempt: JobAttempt) -> bool:
        """Evictions are the platform's fault; a policy with
        ``charge_evictions=False`` requeues them without spending a
        ``RETRY``."""
        return (
            attempt.status is JobStatus.EVICTED
            and self.retry_policy is not None
            and not self.retry_policy.charge_evictions
        )

    def _requeue(self, name: str, attempt: JobAttempt) -> None:
        charged = not self._is_free_requeue(attempt)
        if charged:
            self._retries_left[name] -= 1
        policy = self.retry_policy
        delay = (
            policy.delay_s(self._attempt[name]) if policy is not None else 0.0
        )
        call_later = getattr(self.environment, "call_later", None)
        if call_later is None:
            delay = 0.0  # environment cannot park work; requeue now
        self._emit(
            EventKind.RETRY,
            job=self.dag.jobs[name],
            attempt=self._attempt[name],
            detail={
                "retries_left": self._retries_left[name],
                "status": attempt.status.value,
                "charged": charged,
                "delay_s": delay,
            },
        )
        if delay > 0:
            self._emit(
                EventKind.HELD,
                job=self.dag.jobs[name],
                attempt=self._attempt[name],
                detail={
                    "delay_s": delay,
                    "until": self.environment.now + delay,
                },
            )
            self._set_state(name, NodeState.HELD)

            def release() -> None:
                if self.states.get(name) is NodeState.HELD:
                    self._set_state(name, NodeState.READY)
                    self._submit_ready()

            call_later(delay, release)
        else:
            self._set_state(name, NodeState.READY)

    def _mark_descendants_unrunnable(self, name: str) -> None:
        stack = list(self._children_sorted[name])
        while stack:
            node = stack.pop()
            if self.states[node] in (NodeState.UNREADY, NodeState.READY):
                self._set_state(node, NodeState.UNRUNNABLE)
                stack.extend(self._children_sorted[node])

    @property
    def attempt_number(self) -> dict[str, int]:
        """Current attempt count per job (1-based once submitted)."""
        return dict(self._attempt)

    @property
    def unfinished(self) -> int:
        """Nodes not yet terminal (DONE/FAILED/UNRUNNABLE) — O(1).

        Zero means the workflow is over: nothing is running, held, or
        waiting, and :meth:`finish` can be called. Valid once
        :meth:`start` has run.
        """
        return self._unfinished
