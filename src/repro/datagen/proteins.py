"""Random protein database generation.

Proteins are drawn from the Robinson & Robinson background frequencies
(the same distribution BLAST's statistics assume), which makes the
synthetic database statistically "boring" in exactly the right way:
unrelated transcripts almost never hit it, while reverse-translated
fragments of its members hit strongly.
"""

from __future__ import annotations

import random

from repro.bio.fasta import FastaRecord
from repro.bio.stats import ROBINSON_FREQUENCIES

__all__ = ["random_protein", "random_protein_db"]

_RESIDUES = list(ROBINSON_FREQUENCIES)
_WEIGHTS = list(ROBINSON_FREQUENCIES.values())


def random_protein(rng: random.Random, length: int) -> str:
    """One random protein of ``length`` residues, background-distributed."""
    if length < 1:
        raise ValueError("length must be >= 1")
    return "".join(rng.choices(_RESIDUES, weights=_WEIGHTS, k=length))


def random_protein_db(
    n: int,
    *,
    seed: int = 0,
    min_length: int = 120,
    max_length: int = 400,
    id_prefix: str = "prot",
) -> list[FastaRecord]:
    """A reproducible database of ``n`` random proteins.

    Lengths are uniform in ``[min_length, max_length]`` — real protein
    length distributions are heavier-tailed, but length barely affects
    the code paths under test.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    if min_length > max_length:
        raise ValueError("min_length must be <= max_length")
    rng = random.Random(seed)
    records = []
    for i in range(n):
        length = rng.randint(min_length, max_length)
        records.append(
            FastaRecord(
                id=f"{id_prefix}{i:05d}",
                seq=random_protein(rng, length),
                description=f"{id_prefix}{i:05d} synthetic reference protein",
            )
        )
    return records
