"""Synthetic transcriptome generation.

Models what a de-novo assembler hands blast2cap3: for each gene (one
reference protein), several overlapping transcript *fragments* — the
redundancy CAP3 is asked to merge — plus sequencing errors, occasional
strand flips, UTR padding, and a pool of noise transcripts with no
protein of origin. Cluster sizes are drawn from a right-skewed
(lognormal-rounded) distribution, which is what makes the longest
``run_cap3`` partition, not the average, bound the workflow wall time
in the paper's Fig. 4.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.bio.fasta import FastaRecord
from repro.bio.seq import reverse_complement

__all__ = ["TranscriptomeSpec", "Transcriptome", "generate_transcriptome"]

#: Codons per amino acid for reverse translation (synonymous choices).
_CODONS: dict[str, tuple[str, ...]] = {
    "A": ("GCT", "GCC", "GCA", "GCG"),
    "R": ("CGT", "CGC", "AGA", "AGG"),
    "N": ("AAT", "AAC"),
    "D": ("GAT", "GAC"),
    "C": ("TGT", "TGC"),
    "Q": ("CAA", "CAG"),
    "E": ("GAA", "GAG"),
    "G": ("GGT", "GGC", "GGA", "GGG"),
    "H": ("CAT", "CAC"),
    "I": ("ATT", "ATC", "ATA"),
    "L": ("CTT", "CTC", "CTA", "CTG", "TTA", "TTG"),
    "K": ("AAA", "AAG"),
    "M": ("ATG",),
    "F": ("TTT", "TTC"),
    "P": ("CCT", "CCC", "CCA", "CCG"),
    "S": ("TCT", "TCC", "TCA", "TCG", "AGT", "AGC"),
    "T": ("ACT", "ACC", "ACA", "ACG"),
    "W": ("TGG",),
    "Y": ("TAT", "TAC"),
    "V": ("GTT", "GTC", "GTA", "GTG"),
}


@dataclass(frozen=True)
class TranscriptomeSpec:
    """Shape of the synthetic transcriptome.

    ``mean_fragments_per_gene`` parameterises the lognormal cluster-size
    skew; ``error_rate`` is per-base substitution noise;
    ``reverse_fraction`` flips that share of fragments to the minus
    strand; ``noise_transcripts`` have no protein of origin.
    """

    mean_fragments_per_gene: float = 3.0
    sigma_fragments: float = 0.6
    fragment_min_fraction: float = 0.45
    fragment_max_fraction: float = 0.85
    utr_length: int = 30
    error_rate: float = 0.003
    reverse_fraction: float = 0.2
    noise_transcripts: int = 0
    noise_length: tuple[int, int] = (300, 900)

    def __post_init__(self) -> None:
        if self.mean_fragments_per_gene < 1:
            raise ValueError("mean_fragments_per_gene must be >= 1")
        if not 0 < self.fragment_min_fraction <= self.fragment_max_fraction <= 1:
            raise ValueError("fragment fractions must satisfy 0 < min <= max <= 1")
        if not 0 <= self.error_rate < 0.5:
            raise ValueError("error_rate must be in [0, 0.5)")
        if not 0 <= self.reverse_fraction <= 1:
            raise ValueError("reverse_fraction must be in [0, 1]")


@dataclass
class Transcriptome:
    """Generated transcripts plus ground truth for validation."""

    transcripts: list[FastaRecord] = field(default_factory=list)
    #: transcript id -> originating protein id (absent for noise)
    origin: dict[str, str] = field(default_factory=dict)
    #: protein id -> full-length coding DNA used as the gene template
    gene_cdna: dict[str, str] = field(default_factory=dict)

    @property
    def cluster_sizes(self) -> dict[str, int]:
        sizes: dict[str, int] = {}
        for protein_id in self.origin.values():
            sizes[protein_id] = sizes.get(protein_id, 0) + 1
        return sizes


def _reverse_translate(rng: random.Random, protein: str) -> str:
    return "".join(rng.choice(_CODONS[aa]) for aa in protein)


def _random_dna(rng: random.Random, n: int) -> str:
    return "".join(rng.choice("ACGT") for _ in range(n))


def _mutate(rng: random.Random, seq: str, rate: float) -> str:
    if rate <= 0:
        return seq
    out = list(seq)
    for i, base in enumerate(out):
        if rng.random() < rate:
            out[i] = rng.choice([b for b in "ACGT" if b != base])
    return "".join(out)


def _skewed_count(rng: random.Random, mean: float, sigma: float) -> int:
    """Lognormal-rounded count with the requested mean, min 1."""
    mu = math.log(mean) - 0.5 * sigma * sigma
    return max(1, round(rng.lognormvariate(mu, sigma)))


def generate_transcriptome(
    proteins: list[FastaRecord],
    spec: TranscriptomeSpec = TranscriptomeSpec(),
    *,
    seed: int = 0,
) -> Transcriptome:
    """Generate fragments for each gene, plus noise transcripts.

    Fragments of one gene are overlapping windows of the same coding
    DNA (so CAP3 can actually merge them), each padded with private UTR
    sequence, lightly mutated, and possibly strand-flipped.
    """
    rng = random.Random(seed)
    result = Transcriptome()

    for protein in proteins:
        cdna = _reverse_translate(rng, protein.seq)
        result.gene_cdna[protein.id] = cdna
        n_fragments = _skewed_count(
            rng, spec.mean_fragments_per_gene, spec.sigma_fragments
        )
        for j in range(n_fragments):
            frac = rng.uniform(
                spec.fragment_min_fraction, spec.fragment_max_fraction
            )
            frag_len = max(60, int(len(cdna) * frac))
            frag_len = min(frag_len, len(cdna))
            start = rng.randint(0, len(cdna) - frag_len)
            fragment = cdna[start : start + frag_len]
            utr5 = _random_dna(rng, rng.randint(0, spec.utr_length))
            utr3 = _random_dna(rng, rng.randint(0, spec.utr_length))
            seq = _mutate(rng, utr5 + fragment + utr3, spec.error_rate)
            if rng.random() < spec.reverse_fraction:
                seq = reverse_complement(seq)
            tid = f"tr_{protein.id}_{j}"
            result.transcripts.append(
                FastaRecord(
                    id=tid, seq=seq, description=f"{tid} gene={protein.id}"
                )
            )
            result.origin[tid] = protein.id

    for k in range(spec.noise_transcripts):
        length = rng.randint(*spec.noise_length)
        tid = f"tr_noise_{k}"
        result.transcripts.append(
            FastaRecord(id=tid, seq=_random_dna(rng, length),
                        description=f"{tid} noise")
        )

    rng.shuffle(result.transcripts)
    return result
