"""Illumina-like paired-end read simulation.

Feeds the Fig. 1 pipeline example: the paper's dataset was "100 bp
paired-end … Illumina HiSeq2000" reads. We model the error profile that
matters for the preprocessing stage — per-base substitution errors and
a quality profile that degrades toward the 3' end — not the instrument
physics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.bio.fastq import FastqRecord, phred_to_quality
from repro.bio.seq import reverse_complement

__all__ = ["ReadSimSpec", "simulate_paired_reads"]


@dataclass(frozen=True)
class ReadSimSpec:
    """Read-simulation knobs (defaults mimic HiSeq 100 bp PE)."""

    read_length: int = 100
    fragment_mean: int = 300
    fragment_sd: int = 30
    coverage: float = 10.0
    quality_start: int = 38
    quality_end: int = 22
    quality_jitter: int = 4

    def __post_init__(self) -> None:
        if self.read_length < 10:
            raise ValueError("read_length must be >= 10")
        if self.fragment_mean < self.read_length:
            raise ValueError("fragment_mean must be >= read_length")
        if self.coverage <= 0:
            raise ValueError("coverage must be positive")


def _quality_profile(rng: random.Random, spec: ReadSimSpec) -> list[int]:
    """Phred scores declining linearly 5'→3' with jitter."""
    n = spec.read_length
    scores = []
    for i in range(n):
        base = spec.quality_start + (spec.quality_end - spec.quality_start) * (
            i / max(1, n - 1)
        )
        q = int(base + rng.uniform(-spec.quality_jitter, spec.quality_jitter))
        scores.append(max(2, min(41, q)))
    return scores


def _apply_errors(rng: random.Random, seq: str, scores: list[int]) -> str:
    out = list(seq)
    for i, q in enumerate(scores):
        if rng.random() < 10 ** (-q / 10.0):
            out[i] = rng.choice([b for b in "ACGT" if b != out[i]])
    return "".join(out)


def simulate_paired_reads(
    template: str,
    spec: ReadSimSpec = ReadSimSpec(),
    *,
    seed: int = 0,
    id_prefix: str = "read",
) -> Iterator[tuple[FastqRecord, FastqRecord]]:
    """Yield (R1, R2) pairs sampled from ``template`` at the requested
    coverage. R2 is the reverse complement end of the fragment, as on
    the instrument."""
    if len(template) < spec.fragment_mean:
        raise ValueError("template shorter than mean fragment size")
    rng = random.Random(seed)
    n_pairs = int(
        spec.coverage * len(template) / (2 * spec.read_length)
    )
    for i in range(max(1, n_pairs)):
        frag_len = max(
            spec.read_length,
            int(rng.gauss(spec.fragment_mean, spec.fragment_sd)),
        )
        frag_len = min(frag_len, len(template))
        start = rng.randint(0, len(template) - frag_len)
        fragment = template[start : start + frag_len]

        r1_seq = fragment[: spec.read_length]
        r2_seq = reverse_complement(fragment[-spec.read_length :])

        q1 = _quality_profile(rng, spec)
        q2 = _quality_profile(rng, spec)
        yield (
            FastqRecord(
                id=f"{id_prefix}{i}/1",
                seq=_apply_errors(rng, r1_seq, q1),
                quality=phred_to_quality(q1),
            ),
            FastqRecord(
                id=f"{id_prefix}{i}/2",
                seq=_apply_errors(rng, r2_seq, q2),
                quality=phred_to_quality(q2),
            ),
        )
