"""Bundled blast2cap3 workloads and the paper-scale descriptor.

``generate_blast2cap3_workload`` produces the two inputs the paper's
workflow consumes — a transcript set and a BLASTX tabular alignment
file — at laptop scale. Alignments can come from actually running the
:mod:`repro.blast` search ("blastx" mode, exercises the whole stack) or
be synthesised from the generator's ground truth ("oracle" mode, fast;
used where the test subject is downstream of BLAST).

``paper_scale`` records the sizes of the original inputs so the
performance models and benchmarks can reason about the real workload
without recomputing 100 CPU-hours.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Literal

from repro.bio.fasta import FastaRecord
from repro.blast.blastx import BlastXParams, blastx_many
from repro.blast.database import ProteinDatabase
from repro.blast.tabular import TabularHit
from repro.datagen.proteins import random_protein_db
from repro.datagen.transcripts import (
    Transcriptome,
    TranscriptomeSpec,
    generate_transcriptome,
)

__all__ = [
    "Blast2Cap3Workload",
    "generate_blast2cap3_workload",
    "PaperScale",
    "paper_scale",
]


@dataclass
class Blast2Cap3Workload:
    """Everything a blast2cap3 run needs, plus ground truth."""

    proteins: list[FastaRecord]
    transcriptome: Transcriptome
    hits: list[TabularHit]

    @property
    def transcripts(self) -> list[FastaRecord]:
        return self.transcriptome.transcripts


def _oracle_hits(
    transcriptome: Transcriptome,
    proteins: list[FastaRecord],
    *,
    seed: int,
) -> list[TabularHit]:
    """Synthesise plausible tabular hits from the generator ground truth."""
    rng = random.Random(seed ^ 0x5EED)
    by_id = {p.id: p for p in proteins}
    hits = []
    for record in transcriptome.transcripts:
        protein_id = transcriptome.origin.get(record.id)
        if protein_id is None:
            continue  # noise transcript: no hit
        protein = by_id[protein_id]
        aln_len = max(30, len(record.seq) // 3 - rng.randint(0, 10))
        aln_len = min(aln_len, len(protein.seq))
        sstart = rng.randint(1, max(1, len(protein.seq) - aln_len + 1))
        pident = 100.0 - rng.uniform(0.0, 3.0)
        mismatch = int(aln_len * (100.0 - pident) / 100.0)
        bitscore = 2.0 * aln_len - mismatch
        hits.append(
            TabularHit(
                qseqid=record.id,
                sseqid=protein_id,
                pident=pident,
                length=aln_len,
                mismatch=mismatch,
                gapopen=0,
                qstart=1,
                qend=3 * aln_len,
                sstart=sstart,
                send=sstart + aln_len - 1,
                evalue=10.0 ** -rng.uniform(20, 120),
                bitscore=bitscore,
            )
        )
    return hits


def generate_blast2cap3_workload(
    *,
    n_proteins: int = 20,
    spec: TranscriptomeSpec = TranscriptomeSpec(),
    seed: int = 0,
    alignments: Literal["oracle", "blastx"] = "oracle",
    blast_params: BlastXParams | None = None,
) -> Blast2Cap3Workload:
    """Generate a complete laptop-scale blast2cap3 workload."""
    proteins = random_protein_db(n_proteins, seed=seed)
    transcriptome = generate_transcriptome(proteins, spec, seed=seed + 1)

    if alignments == "oracle":
        hits = _oracle_hits(transcriptome, proteins, seed=seed)
    elif alignments == "blastx":
        database = ProteinDatabase(records=proteins)
        params = blast_params or BlastXParams()
        hits = list(blastx_many(transcriptome.transcripts, database, params))
    else:
        raise ValueError(f"unknown alignments mode: {alignments!r}")
    return Blast2Cap3Workload(
        proteins=proteins, transcriptome=transcriptome, hits=hits
    )


@dataclass(frozen=True)
class PaperScale:
    """The original experiment's input scale (paper §V-A/§V-B)."""

    transcripts: int = 236_529
    transcripts_bytes: int = 404_000_000
    alignment_hits: int = 1_717_454
    alignments_bytes: int = 155_000_000
    serial_walltime_s: float = 360_000.0  # "the running time was 100 hours"
    cluster_counts: tuple[int, ...] = (10, 100, 300, 500)

    @property
    def mean_transcript_length(self) -> float:
        """Approximate mean transcript length implied by the file size."""
        # FASTA overhead (headers, newlines) is roughly 10 %.
        return 0.9 * self.transcripts_bytes / self.transcripts


def paper_scale() -> PaperScale:
    """The paper's workload descriptor (a singleton value object)."""
    return PaperScale()
