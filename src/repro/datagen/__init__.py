"""Synthetic data generation.

Replaces the paper's Triticum urartu dataset (NCBI PRJNA191053) with
laptop-scale synthetic equivalents that preserve the statistical
structure blast2cap3 depends on: transcripts arrive as redundant,
fragmented, error-bearing pieces of genes whose proteins are in the
reference database, and cluster sizes are right-skewed.

* :mod:`repro.datagen.proteins` — random protein databases,
* :mod:`repro.datagen.transcripts` — transcript fragments per gene,
* :mod:`repro.datagen.reads` — Illumina-like paired FASTQ reads,
* :mod:`repro.datagen.workload` — bundled workloads (generate both
  inputs of blast2cap3, plus the paper-scale descriptor used by the
  performance models).
"""

from repro.datagen.proteins import random_protein, random_protein_db
from repro.datagen.transcripts import TranscriptomeSpec, generate_transcriptome
from repro.datagen.workload import (
    Blast2Cap3Workload,
    PaperScale,
    generate_blast2cap3_workload,
    paper_scale,
)

__all__ = [
    "random_protein",
    "random_protein_db",
    "TranscriptomeSpec",
    "generate_transcriptome",
    "Blast2Cap3Workload",
    "PaperScale",
    "paper_scale",
    "generate_blast2cap3_workload",
]
