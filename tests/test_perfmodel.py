"""Tests that the performance model reproduces the paper's anchors."""

import numpy as np
import pytest

from repro.perfmodel.calibration import anchors
from repro.perfmodel.task_models import PaperTaskModel


@pytest.fixture(scope="module")
def model():
    return PaperTaskModel()


class TestClusterCosts:
    def test_costs_sum_to_total(self, model):
        assert model.cluster_costs().sum() == pytest.approx(model.cap3_total_s)

    def test_costs_positive(self, model):
        assert (model.cluster_costs() > 0).all()

    def test_deterministic(self, model):
        a = model.cluster_costs()
        b = PaperTaskModel().cluster_costs()
        assert np.array_equal(a, b)

    def test_heavy_tail_present(self, model):
        costs = model.cluster_costs()
        # The biggest cluster costs thousands of seconds — the source of
        # the paper's wall-time plateau.
        assert costs.max() > 100 * np.median(costs)
        assert 4_000 < model.max_cluster_cost() < 15_000

    def test_readonly(self, model):
        with pytest.raises(ValueError):
            model.cluster_costs()[0] = 0.0


class TestPartitionRuntimes:
    def test_partitions_conserve_work(self, model):
        for n in (10, 100, 300, 500):
            parts = model.partition_runtimes(n)
            assert len(parts) == n
            assert sum(parts) == pytest.approx(model.cap3_total_s)

    def test_max_partition_decreases_with_n(self, model):
        maxima = [max(model.partition_runtimes(n)) for n in (10, 100, 300, 500)]
        assert maxima[0] > maxima[1] > maxima[2]

    def test_n10_matches_sandhills_anchor(self, model):
        # Wall time at n=10 ~ the largest partition; the paper measured
        # 41,593 s. Accept +-20% (single-run measurement, modelled fit).
        target = anchors().sandhills_n10_s
        assert abs(max(model.partition_runtimes(10)) - target) / target < 0.20

    def test_plateau_matches_anchor(self, model):
        # For n >= 100 the largest unsplittable cluster floors the wall
        # time near 10,000 s.
        target = anchors().sandhills_plateau_s
        for n in (100, 300, 500):
            assert 0.6 * target < max(model.partition_runtimes(n)) < 1.4 * target

    def test_invalid_n(self, model):
        with pytest.raises(ValueError):
            model.partition_runtimes(0)


class TestSerialAnchor:
    def test_serial_walltime_near_100_hours(self, model):
        target = anchors().serial_walltime_s
        assert abs(model.serial_walltime() - target) / target < 0.05

    def test_fixed_tasks_are_few_minutes(self, model):
        for name, runtime in model.fixed_runtimes().items():
            assert 60 <= runtime <= 600, name

    def test_split_grows_with_n(self, model):
        assert model.split_runtime(500) > model.split_runtime(10)

    def test_partition_bytes(self, model):
        assert model.partition_bytes(100) == pytest.approx(1_550_000, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            PaperTaskModel(n_clusters=0)
        with pytest.raises(ValueError):
            PaperTaskModel(cap3_total_s=-5)


class TestAnchors:
    def test_reduction_helper(self):
        a = anchors()
        assert a.reduction(10_800) == pytest.approx(0.97)
        assert a.reduction(10_800) > a.min_reduction_vs_serial

    def test_paper_constants(self):
        a = anchors()
        assert a.sandhills_n10_s == 41_593.0
        assert a.optimal_n == 300
        assert a.cluster_counts == (10, 100, 300, 500)
