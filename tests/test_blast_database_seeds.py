"""Tests for the protein database index and seeding stage."""

import numpy as np
import pytest

from repro.bio.fasta import FastaRecord
from repro.bio.matrices import blosum62
from repro.blast.database import ProteinDatabase
from repro.blast.seeds import SeedHit, find_seed_hits, two_hit_filter


def db_of(*seqs: str, **kwargs) -> ProteinDatabase:
    records = [FastaRecord(id=f"p{i}", seq=s) for i, s in enumerate(seqs)]
    return ProteinDatabase(records=records, **kwargs)


class TestProteinDatabase:
    def test_basic_properties(self):
        db = db_of("MEDLKV", "ACDEFGH")
        assert len(db) == 2
        assert db.total_residues == 13
        assert "p0" in db
        assert db["p1"].seq == "ACDEFGH"

    def test_duplicate_ids_rejected(self):
        records = [FastaRecord(id="p", seq="MEDL"), FastaRecord(id="p", seq="KVW")]
        with pytest.raises(ValueError, match="duplicate"):
            ProteinDatabase(records=records)

    def test_non_protein_rejected(self):
        with pytest.raises(ValueError, match="not a protein"):
            db_of("MEDL1")

    def test_word_size_validation(self):
        with pytest.raises(ValueError):
            db_of("MEDL", word_size=1)

    def test_word_index_counts(self):
        db = db_of("MEDLK")  # words MED, EDL, DLK
        assert db.distinct_words == 3

    def test_repeated_word_has_two_occurrences(self):
        db = db_of("MEDMED")  # MED at 0 and 3
        med = blosum62().encode("MED").tobytes()
        idx = [w.tobytes() for w in db.word_codes].index(med)
        assert db.word_occurrences[idx] == [(0, 0), (0, 3)]

    def test_from_fasta(self, tmp_path):
        path = tmp_path / "db.fasta"
        path.write_text(">a\nMEDLKV\n>b\nACDEF\n")
        db = ProteinDatabase.from_fasta(path)
        assert len(db) == 2

    def test_empty_database(self):
        db = ProteinDatabase(records=[])
        assert db.distinct_words == 0
        assert db.total_residues == 0


class TestSeeding:
    def test_exact_word_found(self):
        db = db_of("AAAMEDLKVAAA")
        q = blosum62().encode("MEDLKV")
        hits = list(find_seed_hits(q, db, threshold=11))
        # The exact word MED scores 5+5+6=16 >= 11 against itself.
        assert SeedHit(0, 0, 3) in hits

    def test_neighborhood_word_found(self):
        # Query word MEE vs subject MED: 5+5+2=12 >= 11 -> still seeds.
        db = db_of("AAAMEDAAA")
        q = blosum62().encode("MEE")
        hits = list(find_seed_hits(q, db, threshold=11))
        assert SeedHit(0, 0, 3) in hits

    def test_threshold_excludes_weak_words(self):
        db = db_of("AAAMEDAAA")
        q = blosum62().encode("MEE")
        hits = list(find_seed_hits(q, db, threshold=13))
        assert SeedHit(0, 0, 3) not in hits

    def test_short_query_yields_nothing(self):
        db = db_of("MEDLKV")
        q = blosum62().encode("ME")
        assert list(find_seed_hits(q, db)) == []

    def test_diagonal_property(self):
        assert SeedHit(4, 0, 10).diagonal == 6


class TestTwoHitFilter:
    def test_pair_on_same_diagonal_confirms_second(self):
        hits = [SeedHit(0, 0, 0), SeedHit(10, 0, 10)]
        out = two_hit_filter(hits, word_size=3, window=40)
        assert out == [SeedHit(10, 0, 10)]

    def test_overlapping_hits_do_not_confirm(self):
        hits = [SeedHit(0, 0, 0), SeedHit(1, 0, 1)]
        assert two_hit_filter(hits, word_size=3, window=40) == []

    def test_far_hits_do_not_confirm(self):
        hits = [SeedHit(0, 0, 0), SeedHit(100, 0, 100)]
        assert two_hit_filter(hits, word_size=3, window=40) == []

    def test_different_diagonals_independent(self):
        hits = [SeedHit(0, 0, 0), SeedHit(10, 0, 15)]
        assert two_hit_filter(hits, word_size=3, window=40) == []

    def test_different_subjects_independent(self):
        hits = [SeedHit(0, 0, 0), SeedHit(10, 1, 10)]
        assert two_hit_filter(hits, word_size=3, window=40) == []

    def test_chain_confirms_each_following_hit(self):
        # Three evenly spaced hits: each non-first hit is within the
        # window of its predecessor and is confirmed.
        hits = [SeedHit(0, 0, 0), SeedHit(10, 0, 10), SeedHit(20, 0, 20)]
        out = two_hit_filter(hits, word_size=3, window=40)
        assert out == [SeedHit(10, 0, 10), SeedHit(20, 0, 20)]

    def test_overlap_then_confirming_hit(self):
        # Dense overlapping hits (exact-match diagonals look like this):
        # the first non-overlapping hit confirms.
        hits = [SeedHit(i, 0, i) for i in range(6)]
        out = two_hit_filter(hits, word_size=3, window=40)
        assert out == [SeedHit(3, 0, 3)]
