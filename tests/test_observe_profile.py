"""Kickstart resource profiles: capture, modelling, serialization, and
their Chrome-trace / histogram surfaces."""

import json

import pytest

from repro.dagman.events import (
    JobAttempt,
    JobStatus,
    ResourceProfile,
    WorkflowTrace,
)
from repro.execution.kickstart import kickstart
from repro.observe.chrome_trace import chrome_trace
from repro.observe.events import EventKind, RunEvent
from repro.observe.metrics import Histogram, merge_summaries
from repro.observe.profile import RusageProbe, modelled_profile


def _attempt(profile=None, **kw):
    base = dict(
        job_name="j1",
        transformation="run_cap3",
        site="osg",
        machine="m0",
        attempt=1,
        submit_time=0.0,
        setup_start=10.0,
        exec_start=15.0,
        exec_end=100.0,
        status=JobStatus.SUCCEEDED,
        profile=profile,
    )
    base.update(kw)
    return JobAttempt(**base)


# -- ResourceProfile schema ------------------------------------------------


def test_profile_validation_and_helpers():
    p = ResourceProfile(cpu_user_s=8.0, cpu_sys_s=2.0, max_rss_kb=1024)
    assert p.cpu_s == 10.0
    assert p.cpu_utilization(20.0) == pytest.approx(0.5)
    assert p.cpu_utilization(0.0) == 0.0
    with pytest.raises(ValueError):
        ResourceProfile(cpu_user_s=-1.0)
    with pytest.raises(ValueError):
        ResourceProfile(max_rss_kb=-5)


def test_profile_json_roundtrip():
    p = ResourceProfile(
        cpu_user_s=1.5, cpu_sys_s=0.25, max_rss_kb=2048,
        read_ops=10, write_ops=4, source="modelled",
    )
    assert ResourceProfile.from_json(p.to_json()) == p
    # from_json tolerates sparse dicts (old logs without profiles).
    assert ResourceProfile.from_json({}) == ResourceProfile()


def test_trace_profile_rollups():
    trace = WorkflowTrace([
        _attempt(ResourceProfile(cpu_user_s=5.0, max_rss_kb=100)),
        _attempt(ResourceProfile(cpu_user_s=3.0, max_rss_kb=700),
                 job_name="j2"),
        _attempt(None, job_name="j3"),
    ])
    assert len(trace.profiled()) == 2
    assert trace.peak_rss_kb() == 700
    assert trace.cumulative_cpu() == pytest.approx(8.0)


# -- measurement and modelling ---------------------------------------------


def test_rusage_probe_measures_real_work():
    probe = RusageProbe()
    acc = 0
    for i in range(200_000):
        acc += i * i
    profile = probe.stop()
    assert profile.source == "measured"
    assert profile.cpu_s > 0
    assert profile.max_rss_kb > 0


def test_kickstart_attaches_profile():
    record = kickstart(lambda: sum(range(100_000)))
    assert record.success
    assert record.profile is not None
    assert record.profile.source == "measured"
    # Failures still carry the profile of the partial run.
    failing = kickstart(lambda: 1 / 0)
    assert not failing.success
    assert failing.profile is not None
    # And profiling can be disabled.
    assert kickstart(lambda: None, profile=False).profile is None


def test_modelled_profile_coefficients():
    p = modelled_profile("run_cap3", 100.0)
    assert p is not None and p.source == "modelled"
    assert 0 < p.cpu_s <= 100.0
    assert p.max_rss_kb > 0 and p.read_ops > 0
    # Decorated transformation names stem-match their base coefficients.
    assert (
        modelled_profile("run_cap3_17", 100.0).max_rss_kb == p.max_rss_kb
    )
    # Unknown transformations fall back to the generic CPU-bound shape.
    assert modelled_profile("mystery_task", 50.0) is not None
    # No exec window, no profile (dead-on-arrival attempts).
    assert modelled_profile("run_cap3", 0.0) is None


def test_simulators_attach_modelled_profiles():
    from repro.core.workflow_factory import simulate_paper_run

    for platform in ("sandhills", "osg"):
        result, _ = simulate_paper_run(10, platform, seed=0)
        executed = [a for a in result.trace if a.kickstart_time > 0]
        assert executed
        for a in executed:
            assert a.profile is not None, (platform, a.job_name)
            assert a.profile.source == "modelled"
            assert a.profile.cpu_s <= a.kickstart_time + 1e-6


def test_log_and_monitor_roundtrip_profiles(tmp_path):
    from repro.observe.events import attempt_events
    from repro.observe.log import read_events, write_events
    from repro.wms.monitor import read_trace, write_trace

    attempt = _attempt(ResourceProfile(cpu_user_s=4.0, max_rss_kb=512,
                                       source="modelled"))
    trace_path = tmp_path / "trace.jsonl"
    write_trace(trace_path, WorkflowTrace([attempt]))
    (loaded,) = read_trace(trace_path)
    assert loaded.profile == attempt.profile

    events_path = tmp_path / "events.jsonl"
    write_events(events_path, attempt_events(attempt))
    terminal = [e for e in read_events(events_path) if e.is_terminal]
    assert terminal[0].record.profile == attempt.profile


# -- chrome trace surfaces -------------------------------------------------


def test_chrome_trace_exec_args_carry_profile():
    profile = ResourceProfile(cpu_user_s=42.0, max_rss_kb=9000)
    doc = chrome_trace(WorkflowTrace([_attempt(profile)]))
    exec_events = [
        e for e in doc["traceEvents"]
        if e["ph"] == "X" and e["cat"] == "exec"
    ]
    assert exec_events[0]["args"]["profile"] == profile.to_json()


def test_chrome_trace_renders_resilience_instants_and_flows():
    attempts = [
        _attempt(None, attempt=1, status=JobStatus.FAILED,
                 submit_time=0.0, setup_start=1.0, exec_start=2.0,
                 exec_end=50.0, machine="m0"),
        _attempt(None, attempt=2, submit_time=60.0, setup_start=61.0,
                 exec_start=62.0, exec_end=90.0, machine="m1"),
    ]
    events = [
        RunEvent(EventKind.TIMEOUT, 50.0, job_name="j1", attempt=1,
                 site="osg", machine="m0", detail={"limit_s": 45.0}),
        RunEvent(EventKind.HELD, 52.0, job_name="j1", attempt=1,
                 detail={"delay_s": 8.0}),
        RunEvent(EventKind.FAULT, 49.0, job_name="j1", site="osg",
                 machine="m0", detail={"fault": "start-failure"}),
        RunEvent(EventKind.BLACKLIST, 55.0, detail={"machine": "m0"}),
        RunEvent(EventKind.RESCUE, 58.0, detail={"round": 2}),
        # Kinds with no instant mapping are skipped, not crashed on.
        RunEvent(EventKind.SUBMIT, 0.0, job_name="j1", attempt=1),
    ]
    doc = chrome_trace(WorkflowTrace(attempts), events=events)
    instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    by_name = {e["name"]: e for e in instants}
    assert set(by_name) == {
        "job.timeout", "job.held", "fault.injected",
        "blacklist.add", "rescue.round",
    }
    # Machine-scoped instants land on the machine's thread…
    assert by_name["job.timeout"]["s"] == "t"
    assert by_name["job.timeout"]["tid"] != 0
    # …global ones cut across the whole trace on the meta track.
    assert by_name["blacklist.add"]["s"] == "g"
    assert by_name["blacklist.add"]["pid"] == 0
    assert by_name["job.held"]["s"] == "p"

    # The retry hop is a flow arrow from attempt 1's end to 2's submit.
    starts = [e for e in doc["traceEvents"] if e["ph"] == "s"]
    finishes = [e for e in doc["traceEvents"] if e["ph"] == "f"]
    assert len(starts) == len(finishes) == 1
    assert starts[0]["id"] == finishes[0]["id"]
    assert starts[0]["ts"] == pytest.approx(50.0 * 1e6)
    assert finishes[0]["ts"] == pytest.approx(60.0 * 1e6)
    json.dumps(doc)  # the whole document stays JSON-able


# -- histogram summary extensions ------------------------------------------


def test_histogram_summary_p99_and_mean():
    h = Histogram()
    for v in range(1, 101):
        h.observe(float(v))
    s = h.summary()
    assert s["mean"] == pytest.approx(50.5)
    assert s["p99"] == pytest.approx(99.0)
    assert s["p50"] <= s["p95"] <= s["p99"] <= s["max"]
    empty = Histogram().summary()
    assert empty["count"] == 0 and empty["p99"] == 0.0


def test_merge_summaries_weights_by_count():
    a = Histogram()
    for _ in range(99):
        a.observe(1.0)
    b = Histogram()
    b.observe(101.0)
    merged = merge_summaries([a.summary(), b.summary()])
    assert merged["count"] == 100
    # Count-weighted: one outlier observation cannot drag the mean to
    # the plain average of means (51.0).
    assert merged["mean"] == pytest.approx(2.0)
    assert merged["max"] == 101.0
