"""Tests for the abstract workflow model (DAX) and the catalogs."""

import pytest

from repro.wms.catalogs import (
    ReplicaCatalog,
    SiteCatalog,
    TransformationCatalog,
    TransformationEntry,
    local_site,
    osg_site,
    sandhills_site,
)
from repro.wms.dax import ADag, AbstractJob, File, LinkType


def small_adag():
    adag = ADag(name="wf")
    raw = File("raw.txt", size=100)
    mid = File("mid.txt", size=50)
    out = File("out.txt", size=10)
    adag.add_job(
        AbstractJob(id="j1", transformation="first", runtime=5.0)
        .add_input(raw)
        .add_output(mid)
    )
    adag.add_job(
        AbstractJob(id="j2", transformation="second", args={"k": "v"},
                    runtime=7.0)
        .add_input(mid)
        .add_output(out)
    )
    return adag


class TestDaxModel:
    def test_file_validation(self):
        with pytest.raises(ValueError):
            File("")
        with pytest.raises(ValueError):
            File("a b")
        with pytest.raises(ValueError):
            File("x", size=-1)

    def test_job_validation(self):
        with pytest.raises(ValueError):
            AbstractJob(id="", transformation="t")
        with pytest.raises(ValueError):
            AbstractJob(id="x", transformation="t", runtime=-1)

    def test_duplicate_job_rejected(self):
        adag = ADag(name="wf")
        adag.add_job(AbstractJob(id="a", transformation="t"))
        with pytest.raises(ValueError, match="duplicate"):
            adag.add_job(AbstractJob(id="a", transformation="t"))

    def test_data_dependencies_inferred(self):
        assert small_adag().edges() == {("j1", "j2")}

    def test_explicit_dependency(self):
        adag = small_adag()
        adag.add_job(AbstractJob(id="j3", transformation="third"))
        adag.add_dependency("j2", "j3")
        assert ("j2", "j3") in adag.edges()

    def test_dependency_unknown_job(self):
        with pytest.raises(KeyError):
            small_adag().add_dependency("j1", "nope")

    def test_external_inputs_and_final_outputs(self):
        adag = small_adag()
        assert [f.name for f in adag.external_inputs()] == ["raw.txt"]
        assert [f.name for f in adag.final_outputs()] == ["out.txt"]

    def test_two_producers_rejected(self):
        adag = small_adag()
        adag.add_job(
            AbstractJob(id="j3", transformation="dup").add_output(
                File("mid.txt")
            )
        )
        with pytest.raises(ValueError, match="produced by both"):
            adag.producers()

    def test_xml_roundtrip(self):
        adag = small_adag()
        back = ADag.from_xml(adag.to_xml())
        assert set(back.jobs) == {"j1", "j2"}
        assert back.jobs["j2"].args == {"k": "v"}
        assert back.jobs["j2"].runtime == 7.0
        assert back.edges() == adag.edges()
        assert back.jobs["j1"].inputs()[0].size == 100

    def test_xml_file_roundtrip(self, tmp_path):
        adag = small_adag()
        path = tmp_path / "wf.dax"
        adag.write(path)
        assert ADag.read(path).name == "wf"
        assert "<adag" in path.read_text()

    def test_bad_xml_rejected(self):
        with pytest.raises(ValueError, match="not a DAX"):
            ADag.from_xml("<html></html>")

    def test_linktype_values(self):
        assert LinkType("input") is LinkType.INPUT
        assert LinkType("output") is LinkType.OUTPUT


class TestCatalogs:
    def test_replica_catalog(self):
        rc = ReplicaCatalog()
        rc.add("f.txt", "file:///data/f.txt")
        rc.add("f.txt", "gridftp://osg/f.txt", site="osg")
        assert rc.has("f.txt")
        assert len(rc.lookup("f.txt")) == 2
        assert rc.lookup("f.txt", site="osg") == ["gridftp://osg/f.txt"]
        assert rc.lookup("missing.txt") == []
        assert len(rc) == 1

    def test_replica_validation(self):
        with pytest.raises(ValueError):
            ReplicaCatalog().add("", "pfn")

    def test_transformation_catalog(self):
        tc = TransformationCatalog()
        entry = TransformationEntry(
            name="cap3", pfn="/usr/bin/cap3",
            installed_sites=frozenset({"sandhills"}),
        )
        tc.add(entry)
        assert "cap3" in tc
        assert tc.lookup("cap3").installed_at("sandhills")
        assert not tc.lookup("cap3").installed_at("osg")
        with pytest.raises(KeyError, match="not in catalog"):
            tc.lookup("blat")
        with pytest.raises(ValueError, match="duplicate"):
            tc.add(entry)

    def test_site_catalog(self):
        sc = SiteCatalog()
        sc.add(sandhills_site())
        sc.add(osg_site())
        assert "sandhills" in sc
        assert sc.lookup("sandhills").software_preinstalled
        assert not sc.lookup("osg").software_preinstalled
        assert sc.lookup("sandhills").shared_filesystem
        assert not sc.lookup("osg").shared_filesystem
        with pytest.raises(KeyError):
            sc.lookup("xsede")

    def test_site_network_speeds_differ(self):
        campus, grid = sandhills_site(), osg_site()
        size = 155_000_000  # alignments.out
        assert campus.network.transfer_time(size) < grid.network.transfer_time(size)

    def test_local_site(self):
        assert local_site().software_preinstalled
