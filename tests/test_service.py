"""The multi-tenant Workflow-as-a-Service layer.

Admission control, quotas, accounting, SLO reporting, and the stride
fair-share pump — including the hypothesis invariants ISSUE 9 names:
no tenant with ready work starves, long-run slot shares converge to
the configured weights, and the tenant-tagged ``service.*`` event
stream is identical in shape across the cluster and grid backends.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dagman.dag import Dag, DagJob
from repro.observe.bus import EventBus, EventRecorder
from repro.observe.events import EventKind
from repro.service.fairshare import StrideScheduler
from repro.service.loadgen import LoadSpec, generate_workflow, run_load
from repro.service.service import (
    ServiceConfig,
    WorkflowService,
    WorkflowState,
)
from repro.service.tenants import TenantConfig, TenantQuota
from repro.sim.cluster import CampusCluster, CampusClusterConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams

SERVICE_KINDS = (
    EventKind.SERVICE_SUBMIT,
    EventKind.SERVICE_ADMIT,
    EventKind.SERVICE_REJECT,
    EventKind.SERVICE_WORKFLOW_DONE,
)


def _parallel_dag(name, jobs, runtime=30.0):
    dag = Dag(name=name)
    for i in range(jobs):
        dag.add_job(DagJob(
            name=f"{name}-j{i}", transformation="blast2cap3",
            runtime=runtime,
        ))
    return dag


def _small_service(*tenants, slots=4, max_in_flight=None, **svc_kwargs):
    simulator = Simulator()
    env = CampusCluster(
        simulator,
        CampusClusterConfig(group_slots=slots),
        streams=RngStreams(seed=5),
    )
    service = WorkflowService(
        env,
        config=ServiceConfig(max_in_flight=max_in_flight),
        **svc_kwargs,
    )
    for tenant in tenants:
        if isinstance(tenant, str):
            tenant = TenantConfig(name=tenant)
        service.add_tenant(tenant)
    return service


class TestStrideScheduler:
    def test_shares_converge_to_weights(self):
        sched = StrideScheduler()
        sched.register("heavy", 2.0)
        sched.register("light", 1.0)
        for _ in range(300):
            name = sched.select(["heavy", "light"])
            sched.charge(name)
        served = sched.served
        assert served["heavy"] == pytest.approx(200, abs=2)
        assert served["light"] == pytest.approx(100, abs=2)

    @given(
        st.dictionaries(
            st.sampled_from([f"t{i}" for i in range(6)]),
            st.floats(min_value=0.25, max_value=8.0),
            min_size=2, max_size=6,
        ),
        st.integers(min_value=50, max_value=400),
    )
    @settings(max_examples=60, deadline=None)
    def test_no_starvation_and_weight_convergence(self, weights, rounds):
        sched = StrideScheduler()
        for name, weight in weights.items():
            sched.register(name, weight)
        names = sorted(weights)
        for _ in range(rounds):
            chosen = sched.select(names)
            assert chosen is not None
            sched.charge(chosen)
        served = sched.served
        total_weight = sum(weights.values())
        for name in names:
            expected = rounds * weights[name] / total_weight
            # Stride scheduling lag is bounded: nobody starves, nobody
            # banks more than ~one serve per competitor of drift.
            assert abs(served[name] - expected) <= len(names) + 1

    def test_priority_tier_preempts_fair_share(self):
        sched = StrideScheduler()
        sched.register("urgent", 1.0, priority=10)
        sched.register("bulk", 100.0, priority=0)
        for _ in range(20):
            assert sched.select(["urgent", "bulk"]) == "urgent"
            sched.charge("urgent")
        # Tier empties: bulk is served now.
        assert sched.select(["bulk"]) == "bulk"

    def test_no_banked_credit_for_returning_idle_tenant(self):
        sched = StrideScheduler()
        sched.register("busy", 1.0)
        sched.register("idle", 1.0)
        for _ in range(100):
            sched.charge("busy")
        # "idle" rejoins with pass 0: it gets at most one catch-up
        # serve, then must alternate — not 100 banked serves.
        streak = []
        for _ in range(10):
            name = sched.select(["busy", "idle"])
            sched.charge(name)
            streak.append(name)
        assert streak.count("idle") <= 6
        assert "busy" in streak[:3]

    def test_select_ignores_unknown_and_handles_empty(self):
        sched = StrideScheduler()
        sched.register("a", 1.0)
        assert sched.select([]) is None
        assert sched.select(["ghost"]) is None
        assert sched.select(["ghost", "a"]) == "a"
        sched.unregister("a")
        assert sched.select(["a"]) is None

    def test_register_rejects_nonpositive_weight(self):
        sched = StrideScheduler()
        with pytest.raises(ValueError):
            sched.register("a", 0.0)


class TestAdmissionControl:
    def test_unknown_tenant_rejected(self):
        service = _small_service("alice")
        handle = service.submit("mallory", _parallel_dag("wf", 2))
        assert handle.state is WorkflowState.REJECTED
        assert "unknown tenant" in handle.reject_reason

    def test_infeasible_requirements_rejected_with_hint(self):
        service = _small_service("alice")
        dag = Dag(name="wf")
        dag.add_job(DagJob(
            name="j0", transformation="blast2cap3", runtime=10.0,
            requirements="has_python and has_gpu",
        ))
        handle = service.submit("alice", dag)
        assert handle.state is WorkflowState.REJECTED
        assert "has_gpu" in handle.reject_reason
        assert service.account("alice").workflows_rejected == 1
        assert service.account("alice").active_workflows == 0

    def test_admission_control_can_be_disabled(self):
        service = _small_service("alice")
        disabled = WorkflowService(
            service.environment,
            config=ServiceConfig(admission_control=False),
        )
        disabled.add_tenant(TenantConfig(name="alice"))
        dag = Dag(name="wf")
        dag.add_job(DagJob(
            name="j0", transformation="blast2cap3", runtime=10.0,
            requirements="has_gpu",
        ))
        handle = disabled.submit("alice", dag)
        assert handle.state is WorkflowState.RUNNING

    def test_max_active_workflows_quota(self):
        service = _small_service(TenantConfig(
            name="alice",
            quota=TenantQuota(max_active_workflows=1),
        ))
        first = service.submit("alice", _parallel_dag("wf-a", 2))
        assert first.state is WorkflowState.RUNNING
        second = service.submit("alice", _parallel_dag("wf-b", 2))
        assert second.state is WorkflowState.REJECTED
        assert "max_active_workflows" in second.reject_reason
        service.run()
        assert first.state is WorkflowState.DONE
        # The quota slot freed up: a resubmission is admitted.
        third = service.submit("alice", _parallel_dag("wf-c", 2))
        assert third.state is WorkflowState.RUNNING
        service.run()
        assert third.state is WorkflowState.DONE


class TestQuotasAndPump:
    def test_max_running_jobs_is_a_hard_ceiling(self):
        service = _small_service(
            TenantConfig(
                name="alice", quota=TenantQuota(max_running_jobs=2)
            ),
            slots=16,
        )
        env = service.environment
        peaks = []
        original = env.submit

        def spy(job, on_complete, *, attempt=1):
            peaks.append(service.account("alice").running_jobs)
            original(job, on_complete, attempt=attempt)

        env.submit = spy
        handle = service.submit("alice", _parallel_dag("wide", 12))
        service.run()
        assert handle.result.success
        assert max(peaks) <= 2
        assert service.account("alice").jobs_completed == 12

    def test_max_in_flight_bounds_platform_queue(self):
        service = _small_service("alice", slots=8, max_in_flight=3)
        env = service.environment
        in_flight_at_release = []
        original = env.submit

        def spy(job, on_complete, *, attempt=1):
            in_flight_at_release.append(service.in_flight)
            original(job, on_complete, attempt=attempt)

        env.submit = spy
        service.submit("alice", _parallel_dag("wide", 10))
        service.run()
        assert max(in_flight_at_release) <= 3
        assert service.in_flight == 0
        assert service.parked_jobs == 0

    def test_weighted_tenants_interleave_by_stride(self):
        service = _small_service(
            TenantConfig(name="heavy", weight=3.0),
            TenantConfig(name="light", weight=1.0),
            slots=1, max_in_flight=1,
        )
        env = service.environment
        order = []
        original = env.submit

        def spy(job, on_complete, *, attempt=1):
            order.append("heavy" if job.name.startswith("heavy") else "light")
            original(job, on_complete, attempt=attempt)

        env.submit = spy
        service.submit("heavy", _parallel_dag("heavy", 40))
        service.submit("light", _parallel_dag("light", 40))
        service.run()
        # While both tenants had parked work (the first 40 + releases),
        # serves split ~3:1 by stride.
        window = order[:40]
        assert window.count("heavy") == pytest.approx(30, abs=2)
        assert window.count("light") == pytest.approx(10, abs=2)

    def test_accounting_balances_after_run(self):
        service = _small_service("alice", "bob", slots=6)
        service.submit("alice", _parallel_dag("a1", 5))
        service.submit("bob", _parallel_dag("b1", 3))
        handles = service.run()
        assert all(h.state is WorkflowState.DONE for h in handles)
        for name, jobs in (("alice", 5), ("bob", 3)):
            account = service.account(name)
            assert account.workflows_submitted == 1
            assert account.workflows_admitted == 1
            assert account.workflows_completed == 1
            assert account.workflows_succeeded == 1
            assert account.jobs_dispatched == jobs
            assert account.jobs_completed == jobs
            assert account.running_jobs == 0
            assert account.active_workflows == 0
            assert account.busy_seconds > 0

    def test_turnaround_and_queue_wait_marks(self):
        service = _small_service("alice")
        handle = service.submit("alice", _parallel_dag("wf", 3))
        service.run()
        assert handle.turnaround_s is not None and handle.turnaround_s > 0
        assert handle.queue_wait_s is not None
        assert 0 <= handle.queue_wait_s <= handle.turnaround_s

    def test_scheduler_unfinished_counts_down_to_zero(self):
        service = _small_service("alice")
        dag = _parallel_dag("wf", 4)
        handle = service.submit("alice", dag)
        assert handle.scheduler.unfinished == 4
        service.run()
        assert handle.scheduler.unfinished == 0
        assert handle.state is WorkflowState.DONE


class TestSloReport:
    def test_report_shape_and_percentiles(self):
        service = _small_service(
            TenantConfig(name="alice", weight=2.0, priority=1), "bob"
        )
        service.submit("alice", _parallel_dag("a1", 3))
        service.submit("alice", _parallel_dag("a2", 3))
        service.run()
        report = service.slo_report()
        assert sorted(report) == ["alice", "bob"]
        alice = report["alice"]
        assert alice["weight"] == 2.0
        assert alice["priority"] == 1
        assert alice["account"]["workflows_completed"] == 2
        for metric in ("turnaround_s", "queue_wait_s"):
            summary = alice[metric]
            assert {"count", "mean", "p50", "p95", "p99", "max"} <= set(
                summary
            )
        assert alice["turnaround_s"]["count"] == 2
        # bob never ran: empty histograms, zero accounting.
        assert report["bob"]["turnaround_s"]["count"] == 0
        assert report["bob"]["account"]["jobs_dispatched"] == 0


def _tagged_service_events(backend):
    bus = EventBus()
    recorder = EventRecorder(bus)
    spec = LoadSpec(
        tenants=3, workflows_per_tenant=2, jobs_per_workflow=6,
        workflows_per_minute=4.0, tenant_weights=(2.0, 1.0),
    )
    result = run_load(spec, backend=backend, seed=21, bus=bus)
    assert result["workflows_completed"] == 6
    tagged = [
        (e.kind.value, e.detail["tenant"], e.detail["workflow"])
        for e in recorder.of_kind(*SERVICE_KINDS)
    ]
    return tagged, recorder


class TestCrossBackendParity:
    def test_service_event_stream_identical_across_backends(self):
        cluster_events, cluster_rec = _tagged_service_events("cluster")
        grid_events, grid_rec = _tagged_service_events("grid")
        assert cluster_events  # non-empty stream
        # Same tenants, same workflows, same lifecycle kinds — the
        # service timeline does not depend on which platform backs it.
        assert sorted(cluster_events) == sorted(grid_events)
        for events in (cluster_events, grid_events):
            submits = [e for e in events if e[0] == "service.submit"]
            dones = [e for e in events if e[0] == "service.workflow_done"]
            assert len(submits) == len(dones) == 6

    def test_scheduler_stream_carries_tenant_tags(self):
        bus = EventBus()
        recorder = EventRecorder(bus)
        spec = LoadSpec(
            tenants=2, workflows_per_tenant=1, jobs_per_workflow=4,
            workflows_per_minute=10.0,
        )
        run_load(spec, backend="cluster", seed=3, bus=bus)
        ends = recorder.of_kind(EventKind.WORKFLOW_END)
        assert len(ends) == 2
        assert {e.detail["tenant"] for e in ends} == {
            "tenant-00", "tenant-01"
        }
        # Platform events belong to the shared environment: untagged.
        for event in recorder.of_kind(EventKind.EXEC_START):
            assert "tenant" not in event.detail


class TestLoadGenerator:
    def test_workflow_shape_is_split_partitions_merge(self):
        dag = generate_workflow("wf", 10, RngStreams(seed=1))
        assert len(dag.jobs) == 10
        assert "wf-split" in dag.jobs and "wf-merge" in dag.jobs
        partitions = [j for j in dag.jobs if "-p" in j]
        assert len(partitions) == 8

    def test_same_seed_reproduces_bit_identically(self):
        spec = LoadSpec(
            tenants=2, workflows_per_tenant=2, jobs_per_workflow=5,
            workflows_per_minute=6.0,
        )
        a = run_load(spec, backend="cluster", seed=9)
        b = run_load(spec, backend="cluster", seed=9)
        assert a == b

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            LoadSpec(tenants=0)
        with pytest.raises(ValueError):
            LoadSpec(workflows_per_minute=0.0)
        with pytest.raises(ValueError):
            LoadSpec(tenant_weights=())


class TestRestoreCompletions:
    """Per-tenant SLO accounting across a journal resume: every
    pre-crash completion counts exactly once, however the journaled
    records and the live run overlap."""

    def test_resume_counts_pre_crash_completions_once(self, tmp_path):
        from repro.resilience.journal import Journal, recover

        # Phase 1 — alice's workflow completes; the WAL captures the
        # service.workflow_done record alongside the job decisions.
        bus = EventBus()
        service = _small_service("alice", bus=bus)
        journal = Journal(tmp_path / "j", bus=bus)
        service.submit("alice", _parallel_dag("a1", 3), name="a1")
        service.run()
        journal.close()
        before = service.slo_report()["alice"]
        assert before["account"]["workflows_completed"] == 1

        recovered = recover(tmp_path / "j")
        completions = recovered.service_completions
        assert len(completions) == 1
        (record,) = completions
        assert record["tenant"] == "alice"
        assert record["workflow"] == "a1"
        assert record["succeeded"] is True
        assert isinstance(record["turnaround_s"], float)

        # Phase 2 — a fresh service (post-crash process) restores the
        # journaled completions, then runs workflow B.
        resumed = _small_service("alice")
        assert resumed.restore_completions(completions) == 1
        resumed.submit("alice", _parallel_dag("b1", 3), name="b1")
        resumed.run()
        after = resumed.slo_report()["alice"]
        assert after["account"]["workflows_completed"] == 2
        assert after["account"]["workflows_succeeded"] == 2
        assert after["turnaround_s"]["count"] == 2
        assert after["queue_wait_s"]["count"] == 2

        # Replaying the same records again is a no-op.
        assert resumed.restore_completions(completions) == 0
        again = resumed.slo_report()["alice"]
        assert again["account"]["workflows_completed"] == 2
        assert again["turnaround_s"]["count"] == 2

    def test_restore_skips_unknown_or_blank_tenants(self):
        service = _small_service("alice")
        applied = service.restore_completions([
            {"tenant": "mallory", "workflow": "w", "succeeded": True},
            {"tenant": "", "workflow": "w", "succeeded": True},
            {"tenant": "alice", "workflow": "", "succeeded": True},
        ])
        assert applied == 0
        report = service.slo_report()["alice"]
        assert report["account"]["workflows_completed"] == 0

    def test_live_completion_claims_the_dedup_key(self):
        # The reverse overlap: the live service already finished the
        # workflow the WAL replay then hands back.
        service = _small_service("alice")
        service.submit("alice", _parallel_dag("a1", 3), name="a1")
        service.run()
        assert service.restore_completions([
            {"tenant": "alice", "workflow": "a1", "succeeded": True,
             "turnaround_s": 5.0, "queue_wait_s": 1.0},
        ]) == 0
        report = service.slo_report()["alice"]
        assert report["account"]["workflows_completed"] == 1
        assert report["turnaround_s"]["count"] == 1
